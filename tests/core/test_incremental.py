"""Tests for repro.core.incremental — warm-started re-solving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incremental import IncrementalSolver
from repro.core.solver import solve_core_problem
from repro.errors import InfeasibleProblemError, ValidationError
from repro.workloads.presets import ExperimentSetup, build_catalog

from tests.conftest import random_catalog

SETUP = ExperimentSetup(n_objects=300, updates_per_period=600.0,
                        syncs_per_period=150.0, theta=1.0,
                        update_std_dev=1.0)


def perturb(catalog, rng, *, profile_noise=0.02, rate_noise=0.02):
    """A small drift of the catalog, like one adaptive period."""
    p = catalog.access_probabilities * rng.lognormal(
        0.0, profile_noise, size=catalog.n_elements)
    rates = catalog.change_rates * rng.lognormal(
        0.0, rate_noise, size=catalog.n_elements)
    return catalog.with_profile(p / p.sum()).with_change_rates(rates)


class TestIncrementalSolver:
    def test_first_solve_is_cold_and_exact(self):
        catalog = build_catalog(SETUP, seed=0)
        solver = IncrementalSolver()
        warm = solver.solve(catalog, SETUP.syncs_per_period)
        cold = solve_core_problem(catalog, SETUP.syncs_per_period)
        assert solver.cold_solves == 1
        assert solver.warm_hits == 0
        assert np.allclose(warm.frequencies, cold.frequencies)

    def test_repeat_solve_hits_warm_path(self):
        catalog = build_catalog(SETUP, seed=0)
        solver = IncrementalSolver()
        solver.solve(catalog, SETUP.syncs_per_period)
        solver.solve(catalog, SETUP.syncs_per_period)
        assert solver.warm_hits == 1

    def test_warm_solution_matches_cold_under_drift(self):
        catalog = build_catalog(SETUP, seed=0)
        rng = np.random.default_rng(1)
        solver = IncrementalSolver()
        solver.solve(catalog, SETUP.syncs_per_period)
        for _ in range(5):
            catalog = perturb(catalog, rng)
            warm = solver.solve(catalog, SETUP.syncs_per_period)
            cold = solve_core_problem(catalog, SETUP.syncs_per_period)
            assert warm.objective == pytest.approx(cold.objective,
                                                   abs=1e-8)
            assert np.allclose(warm.frequencies, cold.frequencies,
                               atol=1e-5)
        assert solver.warm_hits == 5

    def test_large_jump_falls_back_to_cold(self):
        catalog = build_catalog(SETUP, seed=0)
        solver = IncrementalSolver(warm_window=0.01)
        solver.solve(catalog, SETUP.syncs_per_period)
        # A 10x bandwidth change moves μ far outside the warm window.
        solution = solver.solve(catalog, 10.0 * SETUP.syncs_per_period)
        assert solver.cold_solves == 2
        cold = solve_core_problem(catalog,
                                  10.0 * SETUP.syncs_per_period)
        assert np.allclose(solution.frequencies, cold.frequencies,
                           atol=1e-6)

    def test_validates_configuration(self):
        with pytest.raises(ValidationError):
            IncrementalSolver(warm_window=0.0)

    def test_rejects_bad_bandwidth(self, small_catalog):
        solver = IncrementalSolver()
        with pytest.raises(InfeasibleProblemError):
            solver.solve(small_catalog, 0.0)

    def test_all_static_catalog_cold_path(self):
        from repro.workloads.catalog import Catalog
        catalog = Catalog(access_probabilities=np.array([0.5, 0.5]),
                          change_rates=np.zeros(2))
        solver = IncrementalSolver()
        solution = solver.solve(catalog, 1.0)
        assert (solution.frequencies == 0.0).all()
        # μ is 0, so the next solve cannot warm-start; must still work.
        again = solver.solve(catalog, 1.0)
        assert (again.frequencies == 0.0).all()

    @pytest.mark.parametrize("seed", [0, 7, 19])
    def test_warm_matches_cold_on_random_catalogs(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 50)
        solver = IncrementalSolver()
        solver.solve(catalog, 20.0)
        drifted = perturb(catalog, rng, profile_noise=0.05,
                          rate_noise=0.05)
        warm = solver.solve(drifted, 20.0)
        cold = solve_core_problem(drifted, 20.0)
        assert warm.objective == pytest.approx(cold.objective, abs=1e-8)
