"""Figure 2 — alignment options (aligned vs reverse workload shapes).

The figure is illustrative: under *aligned* the change-frequency
curve falls with page rank like the access curve; under *reverse* it
rises.  The benchmark regenerates both Table-2 workloads and reports
head/tail summary rows.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import figure2
from repro.analysis.tables import format_table


def test_figure2(benchmark, report):
    results = benchmark(figure2, seed=0)

    aligned = results["aligned"].get("change frequency").y
    reverse = results["reverse"].get("change frequency").y
    assert (np.diff(aligned) <= 0.0).all()
    assert (np.diff(reverse) >= 0.0).all()
    # Same multiset of rates, opposite arrangement.
    assert np.allclose(np.sort(aligned), np.sort(reverse))

    rows = []
    for name, sweep in results.items():
        access = sweep.get("access frequency").y
        change = sweep.get("change frequency").y
        rows.append([name, access[0], access[-1], change[0], change[-1]])
    report("figure02", "Figure 2 — alignment options (head/tail values)\n"
           + format_table(["alignment", "access[hot]", "access[cold]",
                           "change[hot]", "change[cold]"], rows))
