"""FL002-clean comparisons: tolerances, and exact-zero sentinels."""

import math


def is_converged(objective, residual, frequencies):
    if math.isclose(objective, 0.97, rel_tol=1e-9):
        return True
    never_allocated = frequencies == 0.0   # exact-zero sentinel: allowed
    return residual <= 1e-10 and never_allocated.any()
