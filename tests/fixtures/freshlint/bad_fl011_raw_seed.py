"""FL011 fixture: RNGs created from non-SeedSequence seed material."""

import numpy as np

GLOBAL_RNG = np.random.default_rng(1234)  # module-level raw creation


def make_rng(seed):
    return np.random.default_rng(seed)  # raw int seed, no SeedSequence


def make_legacy():
    return np.random.RandomState(7)  # legacy API is never CRN-safe


def derived(seed):
    base = seed * 2 + 1
    return np.random.default_rng(base)  # provenance flows from raw int
