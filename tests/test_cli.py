"""Tests for the CLI entry point."""

from __future__ import annotations

import copy
import json
import socket
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_SIM = REPO_ROOT / "benchmarks" / "results" / "BENCH_sim.json"


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_rejects_unknown_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure4"])

    def test_parses_flags(self):
        args = build_parser().parse_args(
            ["figure3", "--seed", "7", "--quick", "--plot"])
        assert args.command == "figure3"
        assert args.seed == 7
        assert args.quick
        assert args.plot

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "figure1", "figure2", "figure3",
                        "figure5", "figure6", "figure7", "figure8",
                        "figure9", "figure10", "figure11",
                        "imperfect-knowledge", "mirror-selection",
                        "policy-ablation", "bandwidth-sensitivity",
                        "dispersion-sensitivity", "scale-sensitivity",
                        "representative-ablation", "adaptive",
                        "baseline-comparison", "freshness-age",
                        "burstiness", "report",
                        "crawler-comparison"):
            args = parser.parse_args([command])
            assert args.command == command


class TestExecution:
    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "1.15" in output
        assert "1.67" in output

    def test_figure1_output(self, capsys):
        assert main(["figure1"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "p=0.0333" in output

    def test_figure1_with_plot(self, capsys):
        assert main(["figure1", "--plot"]) == 0
        output = capsys.readouterr().out
        assert "legend:" in output

    def test_figure10_output(self, capsys):
        assert main(["figure10"]) == 0
        output = capsys.readouterr().out
        assert "figure10a" in output
        assert "perceived freshness" in output

    def test_freshness_age_output(self, capsys):
        assert main(["freshness-age"]) == 0
        output = capsys.readouterr().out
        assert "perceived age" in output
        assert "inf" in output

    def test_adaptive_quick_output(self, capsys):
        assert main(["adaptive", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "adaptive manager" in output
        assert "oracle" in output

    def test_adapt_quick_output(self, capsys):
        assert main(["adapt", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "adaptive loop (fault-free)" in output
        assert "replanned" in output

    def test_adapt_all_fans_out_scenarios(self, capsys):
        from repro.faults.scenarios import CHAOS_SCENARIOS

        assert main(["adapt", "--quick", "--scenario", "all",
                     "--periods", "4"]) == 0
        output = capsys.readouterr().out
        assert "adaptive loop (fault-free)" in output
        for name in CHAOS_SCENARIOS:
            assert f"chaos scenario {name!r}" in output

    def test_adapt_parses_jobs_and_all(self):
        args = build_parser().parse_args(
            ["adapt", "--scenario", "all", "--jobs", "2"])
        assert args.scenario == "all"
        assert args.jobs == 2


class TestChaosCommand:
    def test_help_table_is_generated_from_the_registry(self, capsys):
        """The --help scenario table must list every registered
        scenario with its description, so it can never drift from
        the ChaosScenario entries."""
        from repro.faults.scenarios import CHAOS_SCENARIOS

        with pytest.raises(SystemExit):
            main(["chaos", "--help"])
        output = capsys.readouterr().out
        assert "scenarios:" in output
        for name, scenario in CHAOS_SCENARIOS.items():
            assert name in output
            assert scenario.description in output

    def test_parses_topology_scenarios_and_report_json(self):
        args = build_parser().parse_args(
            ["chaos", "--scenario", "relay-cascade", "--jobs", "4",
             "--report-json", "out.json"])
        assert args.scenario == "relay-cascade"
        assert args.jobs == 4
        assert args.report_json == "out.json"
        for name in ("herding", "partition"):
            assert build_parser().parse_args(
                ["chaos", "--scenario", name]).scenario == name

    def test_report_json_writes_the_report_list(self, capsys,
                                                tmp_path):
        path = tmp_path / "chaos.json"
        assert main(["chaos", "--quick", "--scenario",
                     "relay-cascade",
                     "--report-json", str(path)]) == 0
        output = capsys.readouterr().out
        assert "relay-cascade" in output
        assert f"(wrote {path})" in output
        payload = json.loads(path.read_text())
        assert isinstance(payload, list) and len(payload) == 1
        assert payload[0]["scenario"] == "relay-cascade"
        assert len(payload[0]["aware_pf"]) == payload[0]["n_periods"]
        assert payload[0]["recovery"] > 0.0


class TestTelemetry:
    def test_telemetry_flag_parses_with_and_without_directory(self):
        parser = build_parser()
        assert parser.parse_args(["table1"]).telemetry is None
        assert parser.parse_args(["table1", "--telemetry"]).telemetry == "."
        args = parser.parse_args(["table1", "--telemetry", "out"])
        assert args.telemetry == "out"

    def test_obs_subcommand_parses(self):
        args = build_parser().parse_args(
            ["obs", "prom", "--tape", "t.jsonl"])
        assert args.command == "obs"
        assert args.action == "prom"
        assert args.tape == "t.jsonl"

    def test_telemetry_run_writes_tape_and_prom(self, capsys, tmp_path):
        assert main(["table1", "--quick",
                     "--telemetry", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "telemetry summary" in output or "counters" in output
        tape = tmp_path / "telemetry.jsonl"
        prom = tmp_path / "telemetry.prom"
        assert tape.exists() and prom.exists()
        lines = [json.loads(line)
                 for line in tape.read_text().splitlines()]
        spans = [line for line in lines if line.get("kind") == "span"]
        assert any(line["path"].endswith("solver.solve_weighted")
                   for line in spans)
        assert "repro_solver_calls_total" in prom.read_text()

    def test_telemetry_sim_run_records_period_series(self, capsys,
                                                     tmp_path):
        assert main(["burstiness", "--quick",
                     "--telemetry", str(tmp_path)]) == 0
        lines = [json.loads(line) for line in
                 (tmp_path / "telemetry.jsonl").read_text().splitlines()]
        periods = [line for line in lines
                   if line.get("kind") == "sim.period"]
        assert periods
        assert all("budget_utilization" in line for line in periods)

    def test_obs_missing_tape_fails_cleanly(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["obs", "summary", "--tape", missing]) == 1
        captured = capsys.readouterr()
        assert "no tape at" in captured.err
        assert "--telemetry" in captured.err

    def test_obs_summary_round_trips_a_tape(self, capsys, tmp_path):
        assert main(["table1", "--quick",
                     "--telemetry", str(tmp_path)]) == 0
        capsys.readouterr()
        tape = str(tmp_path / "telemetry.jsonl")
        assert main(["obs", "summary", "--tape", tape]) == 0
        summary = capsys.readouterr().out
        assert "solver.calls" in summary
        assert main(["obs", "prom", "--tape", tape]) == 0
        prom = capsys.readouterr().out
        assert prom == (tmp_path / "telemetry.prom").read_text()


class TestObsFreshness:
    def test_freshness_table_from_a_sim_tape(self, capsys, tmp_path):
        assert main(["burstiness", "--quick",
                     "--telemetry", str(tmp_path)]) == 0
        capsys.readouterr()
        tape = str(tmp_path / "telemetry.jsonl")
        assert main(["obs", "freshness", "--tape", tape]) == 0
        output = capsys.readouterr().out
        assert "freshness overview" in output
        assert "staleness percentiles" in output
        assert "stalest elements" in output

    def test_freshness_accepts_explicit_now(self, capsys, tmp_path):
        assert main(["burstiness", "--quick",
                     "--telemetry", str(tmp_path)]) == 0
        capsys.readouterr()
        tape = str(tmp_path / "telemetry.jsonl")
        assert main(["obs", "freshness", "--tape", tape,
                     "--now", "1e9"]) == 0
        assert "1e+09" in capsys.readouterr().out

    def test_freshness_on_ledgerless_tape(self, capsys, tmp_path):
        assert main(["table1", "--quick",
                     "--telemetry", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["obs", "freshness", "--tape",
                     str(tmp_path / "telemetry.jsonl")]) == 0
        assert "ledger is empty" in capsys.readouterr().out


class TestObsDiff:
    """``repro obs diff`` gates perf artifacts (acceptance criterion:
    a ≥20% injected kernel-speedup regression must exit non-zero)."""

    @staticmethod
    def _bench_pair(tmp_path, scale: float):
        baseline = json.loads(BENCH_SIM.read_text())
        candidate = copy.deepcopy(baseline)
        for row in candidate["kernel"]["rows"]:
            row["kernel_speedup"] *= scale
        base_path = tmp_path / "base.json"
        cand_path = tmp_path / "cand.json"
        base_path.write_text(json.dumps(baseline))
        cand_path.write_text(json.dumps(candidate))
        return str(base_path), str(cand_path)

    def test_identical_files_pass(self, capsys, tmp_path):
        base, _ = self._bench_pair(tmp_path, 1.0)
        assert main(["obs", "diff", base, base]) == 0
        output = capsys.readouterr().out
        assert "no changes" in output or "no regressions" in output

    def test_injected_regression_fails(self, capsys, tmp_path):
        base, cand = self._bench_pair(tmp_path, 0.7)
        assert main(["obs", "diff", base, cand]) == 1
        output = capsys.readouterr().out
        assert "REGRESSION" in output
        assert "kernel_speedup" in output

    def test_warn_only_reports_but_passes(self, capsys, tmp_path):
        base, cand = self._bench_pair(tmp_path, 0.7)
        assert main(["obs", "diff", base, cand, "--warn-only"]) == 0
        output = capsys.readouterr().out
        assert "REGRESSION" in output
        assert "warn-only" in output

    def test_threshold_is_respected(self, tmp_path, capsys):
        # A 10% dip passes at --threshold 0.2 but fails at 0.05.
        base, cand = self._bench_pair(tmp_path, 0.9)
        assert main(["obs", "diff", base, cand,
                     "--threshold", "0.2"]) == 0
        capsys.readouterr()
        assert main(["obs", "diff", base, cand,
                     "--threshold", "0.05"]) == 1

    def test_tape_self_diff_passes(self, capsys, tmp_path):
        assert main(["burstiness", "--quick",
                     "--telemetry", str(tmp_path)]) == 0
        capsys.readouterr()
        tape = str(tmp_path / "telemetry.jsonl")
        assert main(["obs", "diff", tape, tape]) == 0

    def test_missing_file_exits_2(self, capsys, tmp_path):
        base, _ = self._bench_pair(tmp_path, 1.0)
        missing = str(tmp_path / "nope.json")
        assert main(["obs", "diff", base, missing]) == 2
        assert "nope.json" in capsys.readouterr().err


class TestSinkFlag:
    def test_sink_flag_parses(self):
        args = build_parser().parse_args(
            ["table1", "--sink", "statsd://127.0.0.1:8125"])
        assert args.sink == "statsd://127.0.0.1:8125"
        assert build_parser().parse_args(["table1"]).sink is None

    def test_sink_streams_to_udp_listener(self, capsys):
        listener = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        listener.bind(("127.0.0.1", 0))
        listener.settimeout(2.0)
        port = listener.getsockname()[1]
        try:
            assert main(["table1", "--quick", "--sink",
                         f"statsd://127.0.0.1:{port}"]) == 0
            lines = []
            while not any(
                    line.startswith("repro.solver.calls:")
                    for line in lines):
                data, _ = listener.recvfrom(65536)
                lines.extend(data.decode("utf-8").splitlines())
        finally:
            listener.close()
        assert all("|c" in line or "|g" in line for line in lines)

    def test_dead_sink_never_fails_the_run(self, capsys):
        # Connection-refused OTLP collector: the run must still pass.
        assert main(["table1", "--quick", "--sink",
                     "otlp://127.0.0.1:1"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "transport error" in captured.err

    def test_bad_sink_url_fails_cleanly(self, capsys):
        assert main(["table1", "--quick", "--sink",
                     "gopher://x"]) == 2
        assert "sink" in capsys.readouterr().err
