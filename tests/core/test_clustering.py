"""Tests for repro.core.clustering — k-means partition refinement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clustering import clustering_features, refine_partitions
from repro.core.metrics import perceived_freshness
from repro.core.partitioning import PartitioningStrategy, partition_catalog
from repro.core.solver import solve_core_problem
from repro.errors import ValidationError
from repro.workloads.presets import ExperimentSetup, build_catalog

from tests.conftest import random_catalog


@pytest.fixture
def medium_catalog():
    setup = ExperimentSetup(n_objects=120, updates_per_period=240.0,
                            syncs_per_period=60.0, theta=1.0,
                            update_std_dev=1.5)
    return build_catalog(setup, alignment="shuffled", seed=3)


class TestClusteringFeatures:
    def test_two_columns_by_default(self, small_catalog):
        features = clustering_features(small_catalog)
        assert features.shape == (5, 2)

    def test_rates_normalized_to_unit_sum(self, small_catalog):
        features = clustering_features(small_catalog)
        assert features[:, 1].sum() == pytest.approx(1.0)

    def test_first_column_is_profile(self, small_catalog):
        features = clustering_features(small_catalog)
        assert np.array_equal(features[:, 0],
                              small_catalog.access_probabilities)

    def test_sizes_column_when_requested(self, sized_catalog):
        features = clustering_features(sized_catalog, include_sizes=True)
        assert features.shape == (5, 3)
        assert features[:, 2].sum() == pytest.approx(1.0)

    def test_all_static_catalog_rates_column_zero(self):
        from repro.workloads.catalog import Catalog
        catalog = Catalog(access_probabilities=np.array([0.5, 0.5]),
                          change_rates=np.zeros(2))
        features = clustering_features(catalog)
        assert (features[:, 1] == 0.0).all()


class TestRefinePartitions:
    def test_step_zero_matches_unrefined_heuristic(self, medium_catalog):
        initial = partition_catalog(medium_catalog, 8,
                                    PartitioningStrategy.PF)
        steps = refine_partitions(medium_catalog, 60.0, initial,
                                  iterations=0)
        assert len(steps) == 1
        assert steps[0].iterations == 0
        assert np.array_equal(steps[0].assignment.labels, initial.labels)
        recomputed = perceived_freshness(medium_catalog,
                                         steps[0].frequencies)
        assert steps[0].perceived_freshness == pytest.approx(recomputed)

    def test_refinement_improves_coarse_partitions(self, medium_catalog):
        initial = partition_catalog(medium_catalog, 6,
                                    PartitioningStrategy.PF)
        steps = refine_partitions(medium_catalog, 60.0, initial,
                                  iterations=10)
        assert steps[-1].perceived_freshness >= \
            steps[0].perceived_freshness - 1e-6

    def test_never_beats_exact_optimum(self, medium_catalog):
        exact = solve_core_problem(medium_catalog, 60.0)
        initial = partition_catalog(medium_catalog, 10,
                                    PartitioningStrategy.PF)
        steps = refine_partitions(medium_catalog, 60.0, initial,
                                  iterations=8)
        for step in steps:
            assert step.perceived_freshness <= exact.objective + 1e-8

    def test_stops_on_convergence(self, rng):
        catalog = random_catalog(rng, 20)
        initial = partition_catalog(catalog, 4, PartitioningStrategy.PF)
        steps = refine_partitions(catalog, 10.0, initial, iterations=100)
        # Far fewer than 100 iterations are needed at this size.
        assert steps[-1].iterations < 50
        assert steps[-1].converged

    def test_iteration_numbers_sequential(self, rng):
        catalog = random_catalog(rng, 30)
        initial = partition_catalog(catalog, 5, PartitioningStrategy.PF)
        steps = refine_partitions(catalog, 12.0, initial, iterations=4)
        assert [step.iterations for step in steps] == list(
            range(len(steps)))

    def test_rejects_negative_iterations(self, small_catalog):
        initial = partition_catalog(small_catalog, 2,
                                    PartitioningStrategy.PF)
        with pytest.raises(ValidationError):
            refine_partitions(small_catalog, 2.0, initial, iterations=-1)

    def test_sized_catalog_defaults_to_size_features(self, rng):
        catalog = random_catalog(rng, 25, sized=True)
        initial = partition_catalog(catalog, 5,
                                    PartitioningStrategy.PF_OVER_SIZE)
        steps = refine_partitions(catalog, 12.0, initial, iterations=3)
        assert steps  # runs without error and produces steps
        for step in steps:
            spent = float(catalog.sizes @ step.frequencies)
            assert spent == pytest.approx(12.0, rel=1e-6)

    def test_bandwidth_conserved_every_step(self, medium_catalog):
        initial = partition_catalog(medium_catalog, 7,
                                    PartitioningStrategy.PF)
        steps = refine_partitions(medium_catalog, 60.0, initial,
                                  iterations=5)
        for step in steps:
            spent = float(medium_catalog.sizes @ step.frequencies)
            assert spent == pytest.approx(60.0, rel=1e-6)
