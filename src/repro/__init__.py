"""repro — Scalable Application-Aware Data Freshening.

A full reproduction of Carney, Lee & Zdonik, *Scalable
Application-Aware Data Freshening* (ICDE 2003): perceived-freshness
refresh scheduling for mirrors under limited poll bandwidth, the
scalable partitioning/clustering heuristics, the variable-object-size
extension, and the discrete-event simulator the paper evaluated on.

Quickstart::

    import numpy as np
    from repro import Catalog, PerceivedFreshener

    catalog = Catalog(
        access_probabilities=np.array([0.6, 0.3, 0.1]),
        change_rates=np.array([5.0, 1.0, 0.2]),
    )
    plan = PerceivedFreshener().plan(catalog, bandwidth=3.0)
    plan.frequencies            # syncs per period, per element
    plan.perceived_freshness    # what users will observe

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

from repro.core import (
    AllocationPolicy,
    ProportionalFreshener,
    UniformFreshener,
    perceived_age,
    solve_min_age_problem,
    FixedOrderPolicy,
    Freshener,
    FresheningPlan,
    FreshnessModel,
    GeneralFreshener,
    PartitionedFreshener,
    PartitioningStrategy,
    PerceivedFreshener,
    PhasePolicy,
    PoissonSyncPolicy,
    ScheduleSolution,
    SyncSchedule,
    general_freshness,
    perceived_freshness,
    solve_core_problem,
)
from repro.errors import (
    ConvergenceError,
    InfeasibleProblemError,
    ReproError,
    ScheduleError,
    SimulationError,
    ValidationError,
)
from repro.core.selection import (
    MirrorSelection,
    SelectionStrategy,
    plan_selected_mirror,
    select_mirror,
)
from repro.faults import (
    CHAOS_SCENARIOS,
    ChaosScenario,
    CircuitBreaker,
    FaultPlan,
    PollOutcome,
    RetryPolicy,
    SyncChannel,
)
from repro.profiles import ProfileLearner, UserProfile, aggregate_profiles
from repro.runtime import AdaptiveMirrorManager, BeliefState, PeriodReport
from repro.core.incremental import IncrementalSolver
from repro.sim import Simulation, SimulationResult, SyncLink
from repro.workloads import (
    BIG_SETUP,
    IDEAL_SETUP,
    Alignment,
    Catalog,
    ExperimentSetup,
    build_catalog,
    toy_example_catalog,
    WorkloadBuilder,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "aggregate_profiles",
    "Alignment",
    "AllocationPolicy",
    "BIG_SETUP",
    "build_catalog",
    "Catalog",
    "CHAOS_SCENARIOS",
    "ChaosScenario",
    "CircuitBreaker",
    "ConvergenceError",
    "ExperimentSetup",
    "FaultPlan",
    "FixedOrderPolicy",
    "Freshener",
    "FresheningPlan",
    "FreshnessModel",
    "GeneralFreshener",
    "general_freshness",
    "IDEAL_SETUP",
    "IncrementalSolver",
    "SyncLink",
    "InfeasibleProblemError",
    "AdaptiveMirrorManager",
    "BeliefState",
    "MirrorSelection",
    "PeriodReport",
    "plan_selected_mirror",
    "SelectionStrategy",
    "select_mirror",
    "PartitionedFreshener",
    "PartitioningStrategy",
    "PerceivedFreshener",
    "perceived_freshness",
    "PhasePolicy",
    "PoissonSyncPolicy",
    "PollOutcome",
    "RetryPolicy",
    "SyncChannel",
    "perceived_age",
    "ProfileLearner",
    "ProportionalFreshener",
    "solve_min_age_problem",
    "UniformFreshener",
    "ReproError",
    "ScheduleError",
    "ScheduleSolution",
    "Simulation",
    "SimulationError",
    "SimulationResult",
    "solve_core_problem",
    "SyncSchedule",
    "toy_example_catalog",
    "UserProfile",
    "ValidationError",
    "WorkloadBuilder",
]
