"""Adaptive mirror operation with drifting user interest.

A deployed mirror knows neither the master profile nor the change
rates — and user interest *drifts*.  The
:class:`~repro.runtime.AdaptiveMirrorManager` runs the paper's §3
operational loop (observe the request log and poll outcomes,
re-estimate, periodically re-solve the Core Problem) while this
script swaps the hidden true profile halfway through, simulating a
news cycle moving attention to previously cold objects.

Watch the manager's achieved perceived freshness climb toward the
oracle, crater at the drift, and recover as the decayed profile
estimate tracks the new interest.

Run:  python examples/adaptive_mirror.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdaptiveMirrorManager,
    PerceivedFreshener,
    build_catalog,
)
from repro.workloads import ExperimentSetup

SETUP = ExperimentSetup(n_objects=250, updates_per_period=500.0,
                        syncs_per_period=125.0, theta=1.2,
                        update_std_dev=1.0)
PERIODS_BEFORE_DRIFT = 10
PERIODS_AFTER_DRIFT = 14
REQUEST_RATE = 2500.0


def main() -> None:
    catalog = build_catalog(SETUP, alignment="shuffled", seed=9)
    # The post-drift world: interest reverses — yesterday's cold
    # objects are today's front page.
    drifted = catalog.with_profile(
        catalog.access_probabilities[::-1].copy())

    planner = PerceivedFreshener()
    oracle_before = planner.plan(
        catalog, SETUP.syncs_per_period).perceived_freshness
    oracle_after = planner.plan(
        drifted, SETUP.syncs_per_period).perceived_freshness

    manager = AdaptiveMirrorManager(
        catalog, SETUP.syncs_per_period, request_rate=REQUEST_RATE,
        rng=np.random.default_rng(17), replan_divergence=0.05)

    print(f"oracle PF before drift: {oracle_before:.4f}, "
          f"after drift: {oracle_after:.4f}")
    print()
    print("period  achieved-PF  oracle  replanned  drift-from-plan")

    def show(report, oracle):
        flag = "yes" if report.replanned else ""
        print(f"{report.period:6d}  {report.achieved_pf:11.4f}  "
              f"{oracle:6.4f}  {flag:>9}  "
              f"{report.profile_divergence:15.4f}")

    for period in range(1, PERIODS_BEFORE_DRIFT + 1):
        show(manager.run_period(period), oracle_before)

    print("          --- user interest flips (hidden from manager) ---")
    manager.replace_world(drifted)  # the world changes under us

    for period in range(PERIODS_BEFORE_DRIFT + 1,
                        PERIODS_BEFORE_DRIFT + PERIODS_AFTER_DRIFT + 1):
        show(manager.run_period(period), oracle_after)

    final = manager.run_period(PERIODS_BEFORE_DRIFT
                               + PERIODS_AFTER_DRIFT + 1)
    recovered = final.achieved_pf / oracle_after
    print()
    print(f"final achieved PF = {final.achieved_pf:.4f} — "
          f"{recovered:.0%} of the post-drift oracle, reached with no "
          "knowledge of profiles or change rates")


if __name__ == "__main__":
    main()
