"""Tests for repro.sim.bursty and the misspecification experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sensitivity import burstiness_robustness
from repro.errors import ValidationError
from repro.sim.bursty import BurstyUpdateGenerator
from repro.sim.events import EventKind
from repro.workloads.catalog import Catalog
from repro.workloads.presets import ExperimentSetup


@pytest.fixture
def catalog():
    return Catalog(access_probabilities=np.array([0.5, 0.3, 0.2]),
                   change_rates=np.array([4.0, 1.0, 0.5]))


class TestBurstyUpdateGenerator:
    def test_zero_burstiness_is_poisson_like(self, catalog, rng):
        generator = BurstyUpdateGenerator(catalog, burstiness=0.0,
                                          rng=rng)
        stream = generator.generate(200.0)
        counts = np.bincount(stream.elements, minlength=3)
        expected = catalog.change_rates * 200.0
        assert np.allclose(counts, expected, rtol=0.15)

    def test_long_run_rate_preserved_under_bursts(self, catalog, rng):
        generator = BurstyUpdateGenerator(catalog, burstiness=0.8,
                                          rng=rng)
        stream = generator.generate(500.0)
        counts = np.bincount(stream.elements, minlength=3)
        expected = catalog.change_rates * 500.0
        # MMPP has higher variance than Poisson; allow a wider band.
        assert np.allclose(counts, expected, rtol=0.3)

    def test_stream_sorted_and_typed(self, catalog, rng):
        generator = BurstyUpdateGenerator(catalog, burstiness=0.5,
                                          rng=rng)
        stream = generator.generate(20.0)
        assert stream.kind is EventKind.UPDATE
        assert (np.diff(stream.times) >= 0.0).all()
        assert stream.times.max() < 20.0

    def test_bursts_raise_interarrival_dispersion(self, catalog):
        """The coefficient of variation of gaps must exceed 1 (the
        Poisson value) when burstiness is high."""
        hot = Catalog(access_probabilities=np.array([1.0]),
                      change_rates=np.array([5.0]))
        bursty = BurstyUpdateGenerator(
            hot, burstiness=0.9, rng=np.random.default_rng(0))
        stream = bursty.generate(2000.0)
        gaps = np.diff(stream.times)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.3

    def test_static_elements_never_update(self, rng):
        catalog = Catalog(access_probabilities=np.array([0.5, 0.5]),
                          change_rates=np.array([0.0, 2.0]))
        generator = BurstyUpdateGenerator(catalog, burstiness=0.5,
                                          rng=rng)
        stream = generator.generate(50.0)
        assert (stream.elements != 0).all()

    def test_validation(self, catalog, rng):
        with pytest.raises(ValidationError):
            BurstyUpdateGenerator(catalog, burstiness=1.0, rng=rng)
        with pytest.raises(ValidationError):
            BurstyUpdateGenerator(catalog, burstiness=-0.1, rng=rng)
        with pytest.raises(ValidationError):
            BurstyUpdateGenerator(catalog, burstiness=0.5,
                                  cycle_length=0.0, rng=rng)
        generator = BurstyUpdateGenerator(catalog, burstiness=0.5,
                                          rng=rng)
        with pytest.raises(ValidationError):
            generator.generate(0.0)


class TestBurstinessRobustness:
    def test_poisson_prediction_is_conservative(self):
        setup = ExperimentSetup(n_objects=80,
                                updates_per_period=160.0,
                                syncs_per_period=40.0, theta=1.0,
                                update_std_dev=1.0)
        sweep = burstiness_robustness(
            setup=setup, burstiness_levels=np.array([0.0, 0.5, 0.9]),
            n_periods=40, request_rate=800.0)
        measured = sweep.get("measured (bursty world)").y
        prediction = sweep.get("poisson prediction").y[0]
        # At zero burstiness the world IS Poisson: measurement matches.
        assert measured[0] == pytest.approx(prediction, abs=0.05)
        # Burstiness never drags measured PF below the plan's promise
        # (beyond sampling noise) and clearly helps at the high end.
        assert (measured >= prediction - 0.05).all()
        assert measured[-1] > prediction + 0.02
