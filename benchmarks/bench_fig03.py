"""Figure 3 — the ideal case: Perceived vs General Freshening.

Table 2 setup (N = 500, 1000 updates, 250 syncs, σ = 1), θ swept
0.0–1.6, three alignments.  Paper claims reproduced as assertions:

* PF = GF exactly at θ = 0 (uniform interest);
* PF ≥ GF everywhere and the gap widens with skew;
* in the *aligned* case GF's perceived freshness collapses toward 0
  at high skew.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import figure3
from repro.analysis.tables import format_sweep


def test_figure3(benchmark, report):
    results = benchmark.pedantic(
        lambda: figure3(n_seeds=2), rounds=1, iterations=1)

    blocks = []
    for alignment, sweep in results.items():
        pf = sweep.get("PF_TECHNIQUE").y
        gf = sweep.get("GF_TECHNIQUE").y
        assert pf[0] == gf[0]
        assert (pf >= gf - 1e-9).all()
        assert pf[-1] - gf[-1] > pf[0] - gf[0]
        blocks.append(format_sweep(sweep))

    aligned_gf = results["aligned"].get("GF_TECHNIQUE").y
    assert aligned_gf[-1] < 0.05  # the collapse (paper: ~0)
    shuffled_pf = results["shuffled"].get("PF_TECHNIQUE").y
    assert shuffled_pf[-1] > 0.8

    report("figure03", "\n\n".join(blocks))
