"""Tests for relay-tree topologies and per-hop bandwidth ledgers.

Covers the pure structure layer: validation of hand-built trees,
the seeded two-level builder, path/subtree/shard queries, the
reachable-bandwidth derate input, and the all-or-nothing hop ledger.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.faults.topology import HopLedger, Topology


def two_level(n_elements: int = 8, **kwargs) -> Topology:
    defaults = dict(n_relays=2, edges_per_relay=2, seed=3)
    defaults.update(kwargs)
    return Topology.build(n_elements, **defaults)


class TestTopologyValidation:
    def test_source_parent_must_be_minus_one(self):
        with pytest.raises(ValidationError):
            Topology(parents=np.array([0, 0]),
                     element_edge=np.array([1]),
                     link_bandwidth=np.ones(2),
                     link_latency=np.zeros(2))

    def test_parents_must_be_topologically_ordered(self):
        with pytest.raises(ValidationError):
            Topology(parents=np.array([-1, 2, 0]),
                     element_edge=np.array([2]),
                     link_bandwidth=np.ones(3),
                     link_latency=np.zeros(3))

    def test_elements_must_live_on_leaves(self):
        # Node 1 is interior (node 2 hangs below it).
        with pytest.raises(ValidationError):
            Topology(parents=np.array([-1, 0, 1]),
                     element_edge=np.array([1]),
                     link_bandwidth=np.ones(3),
                     link_latency=np.zeros(3))

    def test_element_edge_bounds(self):
        with pytest.raises(ValidationError):
            Topology(parents=np.array([-1, 0]),
                     element_edge=np.array([2]),
                     link_bandwidth=np.ones(2),
                     link_latency=np.zeros(2))
        with pytest.raises(ValidationError):
            Topology(parents=np.array([-1, 0]),
                     element_edge=np.array([0]),
                     link_bandwidth=np.ones(2),
                     link_latency=np.zeros(2))

    def test_bandwidth_and_latency_vectors_are_checked(self):
        with pytest.raises(ValidationError):
            Topology(parents=np.array([-1, 0]),
                     element_edge=np.array([1]),
                     link_bandwidth=np.ones(3),
                     link_latency=np.zeros(2))
        with pytest.raises(ValidationError):
            Topology(parents=np.array([-1, 0]),
                     element_edge=np.array([1]),
                     link_bandwidth=np.array([1.0, 0.0]),
                     link_latency=np.zeros(2))
        with pytest.raises(ValidationError):
            Topology(parents=np.array([-1, 0]),
                     element_edge=np.array([1]),
                     link_bandwidth=np.ones(2),
                     link_latency=np.array([0.0, -0.1]))

    def test_build_argument_validation(self):
        with pytest.raises(ValidationError):
            Topology.build(0)
        with pytest.raises(ValidationError):
            Topology.build(4, n_relays=0)
        with pytest.raises(ValidationError):
            Topology.build(4, edges_per_relay=0)


class TestBuild:
    def test_two_level_structure(self):
        topology = two_level(8, n_relays=3, edges_per_relay=2)
        assert topology.n_nodes == 1 + 3 + 6
        assert topology.n_elements == 8
        assert topology.root_children == (1, 2, 3)
        assert topology.n_subtrees == 3
        # Every element lives on a leaf two hops down.
        for element in range(8):
            path = topology.path_of_element(element)
            assert len(path) == 2
            assert path[0] in topology.root_children

    def test_same_seed_same_tree(self):
        a, b = two_level(12, seed=9), two_level(12, seed=9)
        assert np.array_equal(a.element_edge, b.element_edge)
        c = two_level(12, seed=10)
        assert not np.array_equal(a.element_edge, c.element_edge)

    def test_every_edge_hosts_a_balanced_chunk(self):
        topology = two_level(8, n_relays=2, edges_per_relay=2)
        counts = np.bincount(topology.element_edge,
                             minlength=topology.n_nodes)
        assert counts[3:].tolist() == [2, 2, 2, 2]

    def test_link_parameters_are_placed_per_level(self):
        topology = two_level(6, relay_bandwidth=25.0,
                             edge_bandwidth=40.0, relay_latency=0.02,
                             edge_latency=0.01)
        for relay in topology.root_children:
            assert topology.link_bandwidth[relay] == 25.0
            assert topology.link_latency[relay] == 0.02
        for edge in np.unique(topology.element_edge).tolist():
            assert topology.link_bandwidth[edge] == 40.0
            assert topology.link_latency[edge] == 0.01

    def test_path_latency_sums_the_hops(self):
        topology = two_level(6, relay_latency=0.02, edge_latency=0.01)
        for element in range(6):
            assert topology.path_latency(element) == pytest.approx(0.03)

    def test_depth_of(self):
        topology = two_level(6)
        assert topology.depth_of(0) == 0
        assert topology.depth_of(topology.root_children[0]) == 1
        edge = int(topology.element_edge[0])
        assert topology.depth_of(edge) == 2

    def test_node_and_element_bounds_raise(self):
        topology = two_level(6)
        with pytest.raises(ValidationError):
            topology.path_of_node(topology.n_nodes)
        with pytest.raises(ValidationError):
            topology.path_of_element(6)
        with pytest.raises(ValidationError):
            topology.descendant_elements(-1)


class TestSubtreesAndShards:
    def test_shard_of_is_edge_membership(self):
        topology = two_level(8, n_relays=2, edges_per_relay=2)
        shards = topology.shard_of
        assert shards.shape == (8,)
        assert topology.n_shards == 4
        # Two elements share a shard exactly when they share an edge.
        for a in range(8):
            for b in range(8):
                same_edge = (topology.element_edge[a]
                             == topology.element_edge[b])
                assert (shards[a] == shards[b]) == same_edge

    def test_subtree_of_matches_first_hop(self):
        topology = two_level(8, n_relays=2, edges_per_relay=2)
        subtree = topology.subtree_of
        for element in range(8):
            top = topology.path_of_element(element)[0]
            assert topology.root_children[subtree[element]] == top

    def test_descendant_elements_is_subtree_membership(self):
        topology = two_level(8, n_relays=2, edges_per_relay=2)
        relay = topology.root_children[0]
        mask = topology.descendant_elements(relay)
        assert np.array_equal(mask, topology.subtree_of == 0)
        assert topology.descendant_elements(0).all()
        edge = int(topology.element_edge[3])
        edge_mask = topology.descendant_elements(edge)
        assert np.array_equal(edge_mask, topology.element_edge == edge)


class TestReachableBandwidth:
    def test_full_reachability_sums_all_uplinks(self):
        topology = two_level(8, n_relays=2, edges_per_relay=2,
                             relay_bandwidth=25.0)
        none_down = np.zeros(8, dtype=bool)
        assert topology.reachable_bandwidth(none_down) == 50.0

    def test_dead_subtree_capacity_is_lost(self):
        topology = two_level(8, n_relays=2, edges_per_relay=2,
                             relay_bandwidth=25.0)
        mask = topology.subtree_of == 0
        assert topology.reachable_bandwidth(mask) == 25.0
        assert topology.reachable_bandwidth(np.ones(8, dtype=bool)) \
            == 0.0

    def test_partial_subtree_outage_keeps_the_uplink(self):
        topology = two_level(8, n_relays=2, edges_per_relay=2,
                             relay_bandwidth=25.0)
        mask = topology.subtree_of == 0
        first = int(np.flatnonzero(mask)[0])
        mask[first] = False          # one survivor in the subtree
        assert topology.reachable_bandwidth(mask) == 50.0

    def test_uncapped_uplinks_report_inf(self):
        topology = two_level(8, n_relays=2, edges_per_relay=2)
        assert np.isinf(topology.reachable_bandwidth(
            np.zeros(8, dtype=bool)))

    def test_mask_shape_is_checked(self):
        topology = two_level(8)
        with pytest.raises(ValidationError):
            topology.reachable_bandwidth(np.zeros(3, dtype=bool))


class TestHopLedger:
    def make(self, relay_bandwidth=10.0, edge_bandwidth=6.0):
        topology = two_level(4, n_relays=2, edges_per_relay=1,
                             relay_bandwidth=relay_bandwidth,
                             edge_bandwidth=edge_bandwidth)
        return topology, HopLedger(topology)

    def test_period_length_validation(self):
        topology, _ = self.make()
        with pytest.raises(ValidationError):
            HopLedger(topology, period_length=0.0)

    def test_admits_until_a_hop_saturates(self):
        topology, ledger = self.make(edge_bandwidth=6.0)
        element = 0
        assert ledger.admits(element, 3.0, 0.1) is None
        ledger.charge(element, 3.0)
        assert ledger.admits(element, 3.0, 0.2) is None
        ledger.charge(element, 3.0)
        # The edge uplink (6.0) is now full; its node id comes back.
        denied_at = ledger.admits(element, 3.0, 0.3)
        assert denied_at == int(topology.element_edge[element])

    def test_relay_saturation_denies_every_sibling(self):
        topology, ledger = self.make(relay_bandwidth=4.0,
                                     edge_bandwidth=100.0)
        element = 0
        relay = topology.path_of_element(element)[0]
        sibling = int(np.flatnonzero(
            topology.subtree_of == topology.subtree_of[element])[1])
        ledger.charge(element, 4.0)
        assert ledger.admits(sibling, 1.0, 0.5) == relay

    def test_budgets_reset_at_period_boundaries(self):
        topology, ledger = self.make(edge_bandwidth=6.0)
        ledger.charge(0, 6.0)
        assert ledger.admits(0, 1.0, 0.9) is not None
        assert ledger.admits(0, 1.0, 1.1) is None

    def test_charges_accumulate_along_the_path(self):
        topology, ledger = self.make()
        ledger.charge(0, 2.0)
        ledger.charge(0, 2.0)
        spent = ledger.hop_spent()
        transits = ledger.hop_transit_counts()
        for node in topology.path_of_element(0):
            assert spent[node] == 4.0
            assert transits[node] == 2
        assert spent[0] == 0.0       # the source owns no uplink
