"""Tests for repro.runtime.beliefs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.runtime.beliefs import BeliefState


def observe_uniform_polls(state: BeliefState, *, frequency: float,
                          change_probability: np.ndarray,
                          periods: int,
                          rng: np.random.Generator) -> None:
    """Feed synthetic poll outcomes for several periods."""
    n = state.n_elements
    freqs = np.full(n, frequency)
    polls_per_period = np.full(n, int(frequency))
    for _ in range(periods):
        changed = rng.binomial(polls_per_period, change_probability)
        state.observe_period(np.zeros(n, dtype=int), polls_per_period,
                             changed, freqs)


class TestConstruction:
    def test_defaults(self):
        state = BeliefState(4)
        assert state.n_elements == 4
        assert np.allclose(state.believed_profile(), 0.25)
        assert np.allclose(state.believed_rates(), 1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            BeliefState(0)
        with pytest.raises(ValidationError):
            BeliefState(2, prior_rate=0.0)
        with pytest.raises(ValidationError):
            BeliefState(2, rate_blend_polls=0.0)
        with pytest.raises(ValidationError):
            BeliefState(2, sizes=np.ones(3))


class TestProfileLearning:
    def test_profile_tracks_observed_accesses(self):
        state = BeliefState(3, profile_smoothing=0.0)
        freqs = np.ones(3)
        state.observe_period(np.array([8, 2, 0]), np.zeros(3),
                             np.zeros(3), freqs)
        profile = state.believed_profile()
        assert profile[0] > profile[1] > profile[2]
        assert profile.sum() == pytest.approx(1.0)

    def test_divergence_measured_against_reference(self):
        state = BeliefState(2, profile_smoothing=0.0)
        state.observe_period(np.array([10, 0]), np.zeros(2),
                             np.zeros(2), np.ones(2))
        assert state.profile_divergence_from(
            np.array([1.0, 0.0])) == pytest.approx(0.0)
        assert state.profile_divergence_from(
            np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_divergence_validates_shape(self):
        state = BeliefState(2)
        with pytest.raises(ValidationError):
            state.profile_divergence_from(np.ones(3))


class TestRateEstimation:
    def test_recovers_rates_from_polls(self, rng):
        true_rates = np.array([0.5, 2.0, 4.0])
        state = BeliefState(3, prior_rate=2.0)
        # Polling at frequency 4/period: interval 0.25.
        change_probability = 1.0 - np.exp(-true_rates * 0.25)
        observe_uniform_polls(state, frequency=4.0,
                              change_probability=change_probability,
                              periods=2000, rng=rng)
        estimates = state.believed_rates()
        assert np.allclose(estimates, true_rates, rtol=0.1)

    def test_unpolled_elements_keep_prior(self):
        state = BeliefState(2, prior_rate=0.5)
        freqs = np.array([1.0, 0.0])
        state.observe_period(np.zeros(2, dtype=int),
                             np.array([5.0, 0.0]),
                             np.array([5.0, 0.0]), freqs)
        rates = state.believed_rates()
        assert rates[1] == pytest.approx(0.5)  # never polled: prior
        assert rates[0] > 0.5  # every poll saw a change: rate is up

    def test_shrinkage_toward_prior_with_few_polls(self):
        state = BeliefState(1, prior_rate=1.0, rate_blend_polls=10.0)
        # One poll that saw a change: the raw estimate is large, but
        # one observation should barely move the belief.
        state.observe_period(np.zeros(1, dtype=int), np.ones(1),
                             np.ones(1), np.ones(1))
        assert state.believed_rates()[0] < 2.0

    def test_observe_validates(self):
        state = BeliefState(2)
        with pytest.raises(ValidationError):
            state.observe_period(np.zeros(3, dtype=int), np.zeros(2),
                                 np.zeros(2), np.ones(2))
        with pytest.raises(ValidationError):
            state.observe_period(np.zeros(2, dtype=int), np.ones(2),
                                 np.full(2, 2.0), np.ones(2))


class TestBelievedCatalog:
    def test_catalog_is_valid_and_sized(self):
        sizes = np.array([1.0, 2.5])
        state = BeliefState(2, sizes=sizes)
        catalog = state.believed_catalog()
        assert catalog.n_elements == 2
        assert np.array_equal(catalog.sizes, sizes)
        assert catalog.access_probabilities.sum() == pytest.approx(1.0)
