"""Tests for repro.core.partitioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioning import (
    PartitionAssignment,
    PartitioningStrategy,
    contiguous_labels,
    partition_catalog,
    sort_key,
)
from repro.errors import ValidationError
from repro.workloads.catalog import Catalog

from tests.conftest import random_catalog


class TestStrategyCoerce:
    def test_accepts_members_and_strings(self):
        assert PartitioningStrategy.coerce("pf") is PartitioningStrategy.PF
        assert PartitioningStrategy.coerce(
            PartitioningStrategy.LAMBDA) is PartitioningStrategy.LAMBDA
        assert PartitioningStrategy.coerce(
            "p-over-lambda") is PartitioningStrategy.P_OVER_LAMBDA

    def test_rejects_unknown(self):
        with pytest.raises(ValidationError, match="unknown partitioning"):
            PartitioningStrategy.coerce("zipf")


class TestSortKeys:
    def test_p_key_is_access_probability(self, small_catalog):
        key = sort_key(small_catalog, PartitioningStrategy.P)
        assert np.array_equal(key, small_catalog.access_probabilities)

    def test_lambda_key_is_change_rate(self, small_catalog):
        key = sort_key(small_catalog, PartitioningStrategy.LAMBDA)
        assert np.array_equal(key, small_catalog.change_rates)

    def test_p_over_lambda_key(self, small_catalog):
        key = sort_key(small_catalog, PartitioningStrategy.P_OVER_LAMBDA)
        expected = (small_catalog.access_probabilities
                    / small_catalog.change_rates)
        assert np.allclose(key, expected)

    def test_pf_key_rises_with_interest_falls_with_rate(self):
        catalog = Catalog(
            access_probabilities=np.array([0.4, 0.4, 0.2]),
            change_rates=np.array([1.0, 5.0, 1.0]))
        key = sort_key(catalog, PartitioningStrategy.PF)
        assert key[0] > key[1]  # same p, slower change => fresher
        assert key[0] > key[2]  # same rate, more interest

    def test_pf_over_size_penalizes_big_objects(self):
        catalog = Catalog(
            access_probabilities=np.array([0.5, 0.5]),
            change_rates=np.array([2.0, 2.0]),
            sizes=np.array([1.0, 10.0]))
        key = sort_key(catalog, PartitioningStrategy.PF_OVER_SIZE)
        assert key[0] > key[1]

    def test_size_key(self, sized_catalog):
        key = sort_key(sized_catalog, PartitioningStrategy.SIZE)
        assert np.array_equal(key, sized_catalog.sizes)

    def test_static_element_in_p_over_lambda(self):
        catalog = Catalog(access_probabilities=np.array([0.5, 0.5]),
                          change_rates=np.array([0.0, 1.0]))
        key = sort_key(catalog, PartitioningStrategy.P_OVER_LAMBDA)
        assert np.isinf(key[0])


class TestContiguousLabels:
    def test_even_split(self):
        labels = contiguous_labels(np.arange(6), 3)
        assert np.array_equal(labels, [0, 0, 1, 1, 2, 2])

    def test_uneven_split_front_loads(self):
        labels = contiguous_labels(np.arange(7), 3)
        counts = np.bincount(labels)
        assert counts.tolist() == [3, 2, 2]

    def test_respects_order_argument(self):
        # Order reversed: last elements land in partition 0.
        labels = contiguous_labels(np.array([3, 2, 1, 0]), 2)
        assert np.array_equal(labels, [1, 1, 0, 0])

    def test_k_equals_n(self):
        labels = contiguous_labels(np.arange(4), 4)
        assert sorted(labels.tolist()) == [0, 1, 2, 3]

    def test_rejects_bad_k(self):
        with pytest.raises(ValidationError):
            contiguous_labels(np.arange(4), 0)


class TestPartitionCatalog:
    def test_partition_counts_nearly_equal(self, rng):
        catalog = random_catalog(rng, 103)
        assignment = partition_catalog(catalog, 10,
                                       PartitioningStrategy.PF)
        counts = assignment.counts
        assert counts.sum() == 103
        assert counts.max() - counts.min() <= 1

    def test_partitions_are_contiguous_in_key(self, rng):
        catalog = random_catalog(rng, 60)
        for strategy in PartitioningStrategy:
            assignment = partition_catalog(catalog, 6, strategy)
            key = sort_key(catalog, strategy)
            # Max key of partition i must not exceed min key of
            # partition i+1.
            for left in range(5):
                left_max = key[assignment.labels == left].max()
                right_min = key[assignment.labels == left + 1].min()
                assert left_max <= right_min + 1e-12

    def test_k_clipped_to_n(self, small_catalog):
        assignment = partition_catalog(small_catalog, 50,
                                       PartitioningStrategy.P)
        assert assignment.n_partitions == 5

    def test_single_partition(self, small_catalog):
        assignment = partition_catalog(small_catalog, 1,
                                       PartitioningStrategy.P)
        assert (assignment.labels == 0).all()

    def test_strategy_recorded(self, small_catalog):
        assignment = partition_catalog(small_catalog, 2, "pf")
        assert assignment.strategy is PartitioningStrategy.PF


class TestPartitionAssignment:
    def test_validation(self):
        with pytest.raises(ValidationError):
            PartitionAssignment(labels=np.array([0, 3]), n_partitions=2)
        with pytest.raises(ValidationError):
            PartitionAssignment(labels=np.array([-1]), n_partitions=1)
        with pytest.raises(ValidationError):
            PartitionAssignment(labels=np.array([0]), n_partitions=0)

    def test_with_labels_drops_strategy(self, small_catalog):
        assignment = partition_catalog(small_catalog, 2, "p")
        relabeled = assignment.with_labels(np.array([1, 0, 1, 0, 1]))
        assert relabeled.strategy is None
        assert relabeled.n_partitions == 2

    def test_labels_immutable(self, small_catalog):
        assignment = partition_catalog(small_catalog, 2, "p")
        with pytest.raises(ValueError):
            assignment.labels[0] = 1

    @given(st.integers(min_value=1, max_value=25),
           st.integers(min_value=1, max_value=30),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=40)
    def test_every_element_assigned_exactly_once(self, k, n, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, n)
        assignment = partition_catalog(catalog, k,
                                       PartitioningStrategy.PF)
        assert assignment.labels.shape == (n,)
        assert assignment.counts.sum() == n
        assert (assignment.counts[:assignment.n_partitions] > 0).all()
