"""freshtrace — zero-overhead observability for the freshening stack.

Process-local metrics (counters, gauges, fixed-bucket histograms),
nested wall-time spans, and a structured event tape, gated behind the
``REPRO_TELEMETRY`` environment variable exactly like the runtime
contracts: when disabled every instrumentation point costs one
attribute load and one branch.

* :mod:`repro.obs.registry` — the :class:`MetricsRegistry`, the
  process gate, the cross-worker :meth:`MetricsRegistry.merge`, and
  the facade the hot paths call.
* :mod:`repro.obs.ledger` — the bounded per-element
  :class:`FreshnessLedger` (``refreshed_at``/``stale_since``).
* :mod:`repro.obs.export` — the JSONL event tape, the Prometheus text
  format, the human summary table, and the freshness table.
* :mod:`repro.obs.sink` — streaming sinks (statsd UDP, OTLP/HTTP)
  with bounded buffers and jittered retry; boundary code that never
  raises into the instrumented paths.

See docs/OBSERVABILITY.md for the metric name catalogue and span
hierarchy.
"""

from repro.obs.export import (
    freshness_text,
    prometheus_text,
    read_jsonl,
    summary_text,
    write_jsonl,
)
from repro.obs.ledger import FreshnessLedger, LedgerEntry
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DEFAULT_MAX_ELEMENTS,
    Histogram,
    MetricsRegistry,
    SpanHandle,
    counter_add,
    disable_telemetry,
    element_label,
    enable_telemetry,
    event,
    gauge_set,
    get_registry,
    ledger_refresh,
    ledger_stale,
    max_element_labels,
    observe,
    refresh_from_env,
    reset_telemetry,
    span,
    telemetry,
    telemetry_enabled,
)
from repro.obs.sink import (
    OtlpHttpSink,
    Sink,
    StatsdSink,
    parse_sink_url,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_ELEMENTS",
    "FreshnessLedger",
    "Histogram",
    "LedgerEntry",
    "MetricsRegistry",
    "OtlpHttpSink",
    "Sink",
    "SpanHandle",
    "StatsdSink",
    "counter_add",
    "disable_telemetry",
    "element_label",
    "enable_telemetry",
    "event",
    "freshness_text",
    "gauge_set",
    "get_registry",
    "ledger_refresh",
    "ledger_stale",
    "max_element_labels",
    "observe",
    "parse_sink_url",
    "prometheus_text",
    "read_jsonl",
    "refresh_from_env",
    "reset_telemetry",
    "span",
    "summary_text",
    "telemetry",
    "telemetry_enabled",
    "write_jsonl",
]
