"""Adaptive mirror operation: the observe → estimate → replan loop.

The paper's schedulers consume a known profile and known change
rates; this subpackage closes the loop for deployments where neither
is given: :class:`~repro.runtime.beliefs.BeliefState` estimates both
from the request log and poll outcomes, and :class:`~repro.runtime.
manager.AdaptiveMirrorManager` periodically re-solves the Core
Problem as the beliefs drift — the operational mode §3 of the paper
argues the heuristics exist for.
"""

from repro.runtime.beliefs import BeliefState
from repro.runtime.manager import AdaptiveMirrorManager, PeriodReport

__all__ = ["AdaptiveMirrorManager", "BeliefState", "PeriodReport"]
