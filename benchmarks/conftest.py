"""Shared infrastructure for the reproduction benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
asserts the *shape* claims that make the reproduction meaningful
(who wins, where curves touch), and writes the paper-style rows to
``benchmarks/results/<name>.txt`` (stdout is captured by pytest, the
files are the durable record).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Persist a named result table and echo it to stdout."""

    def _write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _write
