"""Incremental re-solving with warm-started multipliers.

The paper's operational concern: "for large real-world problems for
which the contents of the mirror or the user interests might change,
we would need to periodically solve the Core Problem" — repeatedly.
Successive problems are *nearly identical*: the profile drifts a few
percent, a handful of rates are re-estimated, an element or two is
added.  The KKT multiplier μ moves correspondingly little.

:class:`IncrementalSolver` exploits that: it remembers the last μ and
hands the exact solver a narrow bracket around it, skipping the cold
geometric bracketing phase; when the warm bracket misses (the problem
jumped), it falls back to a cold solve.  Warm and cold paths share
the identical allocation code (including threshold-degeneracy
handling), so the solutions agree to solver tolerance — asserted by
the tests.  The micro-benchmarks quantify the saving at catalog
scale.
"""

from __future__ import annotations

from repro.contracts import check_multiplier_in_bracket, contracts_enabled
from repro.core.freshness import FixedOrderPolicy, FreshnessModel
from repro.core.solver import ScheduleSolution, solve_weighted_problem
from repro.errors import InfeasibleProblemError, ValidationError
from repro.obs import registry as obs
from repro.workloads.catalog import Catalog

__all__ = ["IncrementalSolver"]


class IncrementalSolver:
    """Warm-started Core-Problem solver for slowly changing inputs.

    Args:
        model: Freshness model (Fixed-Order by default).
        warm_window: Half-width of the warm μ bracket as a relative
            factor: the first attempt brackets
            ``[μ_prev/(1+w), μ_prev·(1+w)]``.
        budget_rtol: Relative budget tolerance.
    """

    def __init__(self, *, model: FreshnessModel | None = None,
                 warm_window: float = 0.5,
                 budget_rtol: float = 1e-10) -> None:
        if warm_window <= 0.0:
            raise ValidationError(
                f"warm_window must be > 0, got {warm_window}")
        self._model = model if model is not None else FixedOrderPolicy()
        self._warm_window = warm_window
        self._budget_rtol = budget_rtol
        self._last_multiplier: float | None = None
        self._warm_hits = 0
        self._cold_solves = 0

    @property
    def warm_hits(self) -> int:
        """Solves completed inside the warm window."""
        return self._warm_hits

    @property
    def cold_solves(self) -> int:
        """Solves that fell back to the cold bracket."""
        return self._cold_solves

    def solve(self, catalog: Catalog,
              bandwidth: float) -> ScheduleSolution:
        """Solve the Core Problem, warm-starting from the last μ.

        Args:
            catalog: Workload description.
            bandwidth: Budget ``B > 0``, in size units per period.

        Returns:
            The optimal :class:`ScheduleSolution` — identical (to
            solver tolerance) to a cold
            :func:`~repro.core.solver.solve_core_problem`.
        """
        if bandwidth <= 0.0:
            raise InfeasibleProblemError(
                f"bandwidth must be positive, got {bandwidth!r}")
        if self._last_multiplier is not None and self._last_multiplier > 0.0:
            window = 1.0 + self._warm_window
            bracket = (self._last_multiplier / window,
                       self._last_multiplier * window)
            try:
                solution = solve_weighted_problem(
                    catalog.access_probabilities, catalog.change_rates,
                    catalog.sizes, bandwidth, model=self._model,
                    budget_rtol=self._budget_rtol, bracket=bracket)
            except ValidationError:
                solution = None  # bracket missed: problem jumped
                obs.counter_add("incremental.warm_misses")
            if solution is not None:
                if contracts_enabled():
                    # ROADMAP contract: a reused bracket must have
                    # straddled the budget, which (waterfill's cost
                    # curve being monotone) pins the resolved μ inside
                    # it.
                    check_multiplier_in_bracket(
                        solution.multiplier, bracket,
                        where="IncrementalSolver.solve")
                self._warm_hits += 1
                self._last_multiplier = solution.multiplier
                obs.counter_add("incremental.warm_hits")
                obs.gauge_set("incremental.last_multiplier",
                              solution.multiplier)
                return solution
        self._cold_solves += 1
        solution = solve_weighted_problem(
            catalog.access_probabilities, catalog.change_rates,
            catalog.sizes, bandwidth, model=self._model,
            budget_rtol=self._budget_rtol)
        self._last_multiplier = solution.multiplier
        obs.counter_add("incremental.cold_solves")
        obs.gauge_set("incremental.last_multiplier", solution.multiplier)
        return solution
