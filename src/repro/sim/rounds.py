"""Round-based simulation for poll-set policies.

The Fixed-Order simulator executes *frequencies*.  Some baselines —
notably the sampling-based change-detection crawler of ref [6] —
instead decide, each round, *which concrete elements to poll* based
on what previous polls revealed.  This module simulates that regime:

* time advances in rounds (one sync period each);
* updates arrive by Poisson processes within the round;
* at the start of each round the policy picks a poll set (within the
  budget), observing only the changed/unchanged bit of every poll it
  performs;
* user accesses are sampled through the round and scored fresh/stale
  (Definition 3).

Policies implement :class:`RoundPolicy`; adapters are provided for a
frequency schedule (credit-based round-robin — the PF/GF plans), the
sampling crawler, and uniform random polling.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError, ValidationError
from repro.estimation.sampling import SamplingRefreshPolicy
from repro.workloads.catalog import Catalog

__all__ = [
    "RoundPolicy",
    "SchedulePolicy",
    "RandomPollPolicy",
    "SamplingCrawlerPolicy",
    "RoundSimulationResult",
    "simulate_rounds",
]


class RoundPolicy(ABC):
    """Chooses, each round, which elements to poll."""

    @abstractmethod
    def choose(self, round_index: int,
               rng: np.random.Generator) -> np.ndarray:
        """Return the element indices to poll this round."""

    def observe(self, polled: np.ndarray,
                changed: np.ndarray) -> None:
        """Receive each poll's changed/unchanged outcome.

        Default: ignore (stateless policies).

        Args:
            polled: The element indices that were polled.
            changed: Whether each poll found a new version.
        """


class SchedulePolicy(RoundPolicy):
    """Executes a frequency schedule by accumulating poll credits.

    Element i earns ``fᵢ`` credits per round and is polled once per
    whole credit — the round-based rendering of a Fixed-Order
    schedule (fractional frequencies poll on the rounds where the
    accumulator crosses an integer).

    Args:
        frequencies: Syncs per period per element.
    """

    def __init__(self, frequencies: np.ndarray) -> None:
        frequencies = np.asarray(frequencies, dtype=float)
        if frequencies.ndim != 1:
            raise ValidationError("frequencies must be 1-D")
        if (frequencies < 0.0).any():
            raise ValidationError("frequencies must be nonnegative")
        self._frequencies = frequencies
        self._credits = np.zeros_like(frequencies)

    def choose(self, round_index: int,
               rng: np.random.Generator) -> np.ndarray:
        self._credits += self._frequencies
        polls = np.floor(self._credits).astype(np.int64)
        self._credits -= polls
        return np.repeat(np.arange(self._frequencies.shape[0],
                                   dtype=np.int64), polls)


class RandomPollPolicy(RoundPolicy):
    """Polls a uniformly random subset of the budgeted size.

    Args:
        n_elements: Catalog size.
        budget: Polls per round, >= 1.
    """

    def __init__(self, n_elements: int, budget: int) -> None:
        if n_elements < 1:
            raise ValidationError(
                f"n_elements must be >= 1, got {n_elements}")
        if budget < 1:
            raise ValidationError(f"budget must be >= 1, got {budget}")
        self._n = n_elements
        self._budget = min(budget, n_elements)

    def choose(self, round_index: int,
               rng: np.random.Generator) -> np.ndarray:
        return rng.choice(self._n, size=self._budget, replace=False)


class SamplingCrawlerPolicy(RoundPolicy):
    """Ref [6]'s sample-rank-refresh crawler as a round policy.

    Tracks which of its copies are *known stale* (it saw a change but
    has not... in fact a poll refreshes, so staleness knowledge comes
    from the per-round sample of the current staleness state, which
    the simulator provides through the hidden-state callback).

    Args:
        server_of: Server group per element.
        sample_size: Sample polls per server per round.
        budget: Total polls per round.
        rng: Generator for sample selection.
    """

    def __init__(self, server_of: np.ndarray, *, sample_size: int,
                 budget: int, rng: np.random.Generator) -> None:
        if budget < 1:
            raise ValidationError(f"budget must be >= 1, got {budget}")
        self._policy = SamplingRefreshPolicy(server_of,
                                             sample_size=sample_size,
                                             rng=rng)
        self._budget = budget
        self._believed_stale = np.zeros(server_of.shape[0], dtype=bool)

    def choose(self, round_index: int,
               rng: np.random.Generator) -> np.ndarray:
        result = self._policy.plan_round(self._believed_stale,
                                         self._budget)
        return result.refreshed

    def observe(self, polled: np.ndarray, changed: np.ndarray) -> None:
        # A poll refreshes the copy, so polled elements are believed
        # fresh; the changed bits age the *rest* of the belief via the
        # crude rule "anything not polled keeps its last belief".
        self._believed_stale[polled] = False
        # Elements whose polls found changes hint their server is hot;
        # the underlying SamplingRefreshPolicy re-ranks from the next
        # round's fresh sample anyway.


@dataclass(frozen=True)
class RoundSimulationResult:
    """Outcome of a round-based policy simulation.

    Attributes:
        n_rounds: Rounds simulated.
        n_polls: Total polls performed.
        n_accesses: User accesses served.
        perceived_freshness: Fraction of accesses that saw fresh data.
        mean_polls_per_round: Budget actually used per round.
    """

    n_rounds: int
    n_polls: int
    n_accesses: int
    perceived_freshness: float
    mean_polls_per_round: float


def simulate_rounds(catalog: Catalog, policy: RoundPolicy, *,
                    n_rounds: int, requests_per_round: float,
                    rng: np.random.Generator,
                    poll_budget: int | None = None
                    ) -> RoundSimulationResult:
    """Run a poll-set policy for ``n_rounds`` periods.

    Within each round: the policy polls its chosen set at the round
    start (observing change bits), Poisson updates land during the
    round, and accesses sample the catalog's profile, scored against
    the staleness state at their instant (approximated at round
    granularity: an access is stale if its element has an unseen
    update earlier in the same round or from any previous round).

    Args:
        catalog: Workload description.
        policy: The polling policy.
        n_rounds: Rounds to simulate, >= 1.
        requests_per_round: Mean accesses per round, > 0.
        rng: Seeded generator.
        poll_budget: Optional hard cap on polls per round (a
            :class:`SimulationError` if the policy exceeds it).

    Returns:
        The :class:`RoundSimulationResult`.
    """
    if n_rounds < 1:
        raise ValidationError(f"n_rounds must be >= 1, got {n_rounds}")
    if requests_per_round <= 0.0:
        raise ValidationError(
            f"requests_per_round must be > 0, got {requests_per_round}")
    n = catalog.n_elements
    stale = np.zeros(n, dtype=bool)
    total_polls = 0
    total_accesses = 0
    fresh_accesses = 0

    for round_index in range(n_rounds):
        polled = np.asarray(policy.choose(round_index, rng),
                            dtype=np.int64)
        if polled.size and (polled.min() < 0 or polled.max() >= n):
            raise SimulationError("policy polled an unknown element")
        if poll_budget is not None and polled.size > poll_budget:
            raise SimulationError(
                f"policy polled {polled.size} elements, budget is "
                f"{poll_budget}")
        changed = stale[polled].copy()
        stale[polled] = False
        policy.observe(polled, changed)
        total_polls += int(polled.size)

        # Updates and accesses interleave through the round; at round
        # granularity an access to element i is stale if the element
        # entered the round stale or received an update before the
        # access.  Sample per-access update precedence exactly: the
        # element's first update time is uniform conditional on
        # Poisson count k >= 1 (min of k uniforms ~ Beta(1, k)).
        update_counts = rng.poisson(catalog.change_rates)
        access_count = int(rng.poisson(requests_per_round))
        accessed = rng.choice(n, size=access_count,
                              p=catalog.access_probabilities)
        access_times = rng.uniform(0.0, 1.0, size=access_count)
        first_update = np.full(n, np.inf)
        has_updates = update_counts > 0
        if has_updates.any():
            first_update[has_updates] = rng.beta(
                1.0, update_counts[has_updates])
        for element, at in zip(accessed.tolist(),
                               access_times.tolist()):
            is_stale = stale[element] or at >= first_update[element]
            total_accesses += 1
            if not is_stale:
                fresh_accesses += 1
        stale |= has_updates

    return RoundSimulationResult(
        n_rounds=n_rounds,
        n_polls=total_polls,
        n_accesses=total_accesses,
        perceived_freshness=(fresh_accesses / total_accesses
                             if total_accesses else 1.0),
        mean_polls_per_round=total_polls / n_rounds,
    )
