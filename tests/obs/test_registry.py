"""Unit tests for the telemetry registry: metrics, spans, event tape."""

from __future__ import annotations

import math

import pytest

from repro.obs import registry as obs
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MAX_EVENTS,
    Histogram,
    MetricsRegistry,
)


class TestHistogram:
    def test_buckets_are_sorted_and_counts_have_overflow_slot(self):
        hist = Histogram((5.0, 1.0, 2.0))
        assert hist.buckets == (1.0, 2.0, 5.0)
        assert len(hist.counts) == 4

    def test_observations_land_in_first_bucket_with_bound_ge_value(self):
        hist = Histogram((1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 4.0, 100.0):
            hist.observe(value)
        assert hist.counts == [2, 1, 1, 1]

    def test_cumulative_ends_with_inf_and_total_count(self):
        hist = Histogram((1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            hist.observe(value)
        cumulative = hist.cumulative()
        assert cumulative[-1] == (math.inf, 3)
        assert cumulative[0] == (1.0, 1)
        assert cumulative[1] == (2.0, 2)

    def test_mean_tracks_sum_over_count(self):
        hist = Histogram(DEFAULT_BUCKETS)
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == pytest.approx(3.0)

    def test_mean_of_empty_histogram_is_zero(self):
        assert Histogram(DEFAULT_BUCKETS).mean == 0.0


class TestMetricsRegistry:
    def test_counter_add_accumulates(self):
        registry = MetricsRegistry()
        registry.counter_add("x")
        registry.counter_add("x", 2.5)
        assert registry.counters["x"] == pytest.approx(3.5)

    def test_gauge_set_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.gauge_set("g", 1.0)
        registry.gauge_set("g", -2.0)
        assert registry.gauges["g"] == -2.0

    def test_observe_creates_histogram_on_first_use(self):
        registry = MetricsRegistry()
        registry.observe("h", 3.0, buckets=(1.0, 10.0))
        registry.observe("h", 30.0)
        hist = registry.histograms["h"]
        assert hist.buckets == (1.0, 10.0)
        assert hist.counts == [0, 1, 1]

    def test_event_records_kind_sequence_and_fields(self):
        registry = MetricsRegistry()
        registry.event("sync", element=7, size=2.0)
        registry.event("sync", element=8, size=1.0)
        events = registry.events_of_kind("sync")
        assert len(events) == 2
        assert events[0]["element"] == 7
        assert events[1]["seq"] > events[0]["seq"]
        assert all(event["kind"] == "sync" for event in events)

    def test_event_tape_is_bounded_and_drops_are_counted(self):
        registry = MetricsRegistry()
        registry.events.extend(
            {"kind": "filler", "seq": i, "t": 0.0} for i in range(MAX_EVENTS)
        )
        registry.event("overflow")
        assert len(registry.events) == MAX_EVENTS
        assert registry.counters["obs.dropped_events"] == 1.0
        assert registry.events_of_kind("overflow") == []

    def test_spans_nest_into_slash_separated_paths(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        assert set(registry.span_totals) == {"outer", "outer/inner"}
        count, total = registry.span_totals["outer/inner"]
        assert count == 1
        assert total >= 0.0
        paths = [event["path"] for event in registry.events_of_kind("span")]
        assert paths == ["outer/inner", "outer"]

    def test_span_records_list_completions_in_order(self):
        registry = MetricsRegistry()
        for _ in range(3):
            with registry.span("b"):
                pass
        with registry.span("a"):
            pass
        records = registry.span_records()
        assert [record["path"] for record in records] == ["b", "b", "b", "a"]
        assert all(record["elapsed_s"] >= 0.0 for record in records)
        assert registry.span_totals["b"][0] == 3


class TestGlobalSwitch:
    def test_facades_are_inert_when_disabled(self):
        obs.disable_telemetry()
        registry = obs.reset_telemetry()
        obs.counter_add("c")
        obs.gauge_set("g", 1.0)
        obs.observe("h", 1.0)
        obs.event("e")
        with obs.span("s"):
            pass
        assert not registry.counters
        assert not registry.gauges
        assert not registry.histograms
        assert not registry.events
        assert not registry.span_totals

    def test_disabled_span_returns_the_shared_noop_singleton(self):
        obs.disable_telemetry()
        assert obs.span("a") is obs.span("b")

    def test_facades_record_when_enabled(self):
        registry = obs.reset_telemetry()
        obs.enable_telemetry()
        obs.counter_add("c", 2.0)
        with obs.span("s"):
            obs.event("e", x=1)
        assert registry.counters["c"] == 2.0
        assert registry.span_totals["s"][0] == 1
        assert registry.events_of_kind("e")[0]["x"] == 1

    def test_enable_telemetry_can_install_a_custom_registry(self):
        mine = MetricsRegistry()
        obs.enable_telemetry(mine)
        assert obs.telemetry_enabled()
        assert obs.get_registry() is mine

    def test_reset_telemetry_installs_a_fresh_registry(self):
        before = obs.get_registry()
        after = obs.reset_telemetry()
        assert after is not before
        assert obs.get_registry() is after

    def test_refresh_from_env_reads_repro_telemetry(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        obs.refresh_from_env()
        assert obs.telemetry_enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        obs.refresh_from_env()
        assert not obs.telemetry_enabled()
        monkeypatch.delenv("REPRO_TELEMETRY")
        obs.refresh_from_env()
        assert not obs.telemetry_enabled()


class TestTelemetryContextManager:
    def test_installs_fresh_registry_and_restores_switch(self):
        obs.disable_telemetry()
        outer = obs.get_registry()
        with obs.telemetry() as registry:
            assert obs.telemetry_enabled()
            assert registry is not outer
            obs.counter_add("inside")
        assert not obs.telemetry_enabled()
        assert registry.counters["inside"] == 1.0

    def test_enabled_false_turns_telemetry_off_inside(self):
        obs.enable_telemetry()
        with obs.telemetry(enabled=False) as registry:
            assert not obs.telemetry_enabled()
            obs.counter_add("ghost")
        assert obs.telemetry_enabled()
        assert "ghost" not in registry.counters

    def test_fresh_false_reuses_the_current_registry(self):
        current = obs.reset_telemetry()
        with obs.telemetry(fresh=False) as registry:
            assert registry is current


class TestElementLabelCap:
    def test_passes_through_under_the_cap(self):
        assert obs.element_label(0) == 0
        assert obs.element_label(obs.max_element_labels() - 1) == \
            obs.max_element_labels() - 1

    def test_collapses_at_and_beyond_the_cap(self):
        cap = obs.max_element_labels()
        assert obs.element_label(cap) == "overflow"
        assert obs.element_label(cap + 10_000) == "overflow"

    def test_env_override_and_unlimited(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_MAX_ELEMENTS", "4")
        obs.refresh_from_env()
        assert obs.max_element_labels() == 4
        assert obs.element_label(3) == 3
        assert obs.element_label(4) == "overflow"
        monkeypatch.setenv("REPRO_TELEMETRY_MAX_ELEMENTS", "0")
        obs.refresh_from_env()
        assert obs.element_label(10 ** 9) == 10 ** 9
        monkeypatch.setenv("REPRO_TELEMETRY_MAX_ELEMENTS", "bogus")
        obs.refresh_from_env()
        assert obs.max_element_labels() == obs.DEFAULT_MAX_ELEMENTS
        monkeypatch.delenv("REPRO_TELEMETRY_MAX_ELEMENTS")
        obs.refresh_from_env()
        assert obs.max_element_labels() == obs.DEFAULT_MAX_ELEMENTS

    def test_breaker_transition_labels_respect_the_cap(self,
                                                      monkeypatch):
        from repro.faults.breaker import CircuitBreaker

        monkeypatch.setenv("REPRO_TELEMETRY_MAX_ELEMENTS", "2")
        obs.refresh_from_env()
        try:
            breaker = CircuitBreaker(5, failure_threshold=1,
                                     cooldown=1.0)
            with obs.telemetry() as registry:
                for shard in range(5):
                    breaker.record_failure(shard, time=0.5)
            shards = {record["shard"] for record
                      in registry.events_of_kind("breaker.transition")}
            assert shards == {0, 1, "overflow"}
        finally:
            monkeypatch.delenv("REPRO_TELEMETRY_MAX_ELEMENTS")
            obs.refresh_from_env()
