"""FreshnessLedger semantics: order-independent folds, staleness,
serialization, and the facade's cardinality cap.

The load-bearing property is order independence — timestamps fold
with ``max`` and counts with ``+`` — because three different feeders
must land on the same ledger: the reference loop (per event, in time
order), the vectorized kernels (per element, in bulk), and the
cross-worker merge (per worker, in task order).
"""

from __future__ import annotations

import itertools

import pytest

from repro.obs import registry as obs
from repro.obs.ledger import FreshnessLedger, LedgerEntry


class TestLedgerEntry:
    def test_fresh_until_first_stale(self) -> None:
        entry = LedgerEntry()
        assert not entry.is_stale
        entry.fold_refresh(2.0)
        assert not entry.is_stale
        entry.fold_stale(3.0)
        assert entry.is_stale
        assert entry.staleness(5.0) == pytest.approx(2.0)

    def test_refresh_after_stale_clears_staleness(self) -> None:
        entry = LedgerEntry()
        entry.fold_stale(3.0)
        entry.fold_refresh(4.0)
        assert not entry.is_stale
        assert entry.staleness(10.0) == 0.0

    def test_folds_are_order_independent(self) -> None:
        events = [("refresh", 1.0), ("stale", 2.5), ("refresh", 4.0),
                  ("stale", 3.0), ("refresh", 0.5)]
        entries = []
        for ordering in itertools.permutations(events):
            entry = LedgerEntry()
            for kind, time in ordering:
                if kind == "refresh":
                    entry.fold_refresh(time)
                else:
                    entry.fold_stale(time)
            entries.append(entry)
        assert all(entry == entries[0] for entry in entries)
        assert entries[0].refreshed_at == 4.0
        assert entries[0].stale_since == 3.0
        assert entries[0].refreshes == 3
        assert entries[0].stales == 2

    def test_bulk_count_fold_equals_scalar_folds(self) -> None:
        scalar = LedgerEntry()
        for time in (1.0, 2.0, 7.0):
            scalar.fold_refresh(time)
        bulk = LedgerEntry()
        bulk.fold_refresh(7.0, count=3)
        assert scalar == bulk


class TestFreshnessLedger:
    def test_merge_is_order_independent(self) -> None:
        def worker(times):
            ledger = FreshnessLedger()
            for label, t in times:
                ledger.record_refresh(label, t)
                ledger.record_stale(label, t + 0.25)
            return ledger

        parts = [worker([(0, 1.0), (1, 2.0)]),
                 worker([(0, 5.0), ("overflow", 3.0)]),
                 worker([(1, 0.5), ("overflow", 9.0)])]
        merged = []
        for ordering in itertools.permutations(range(3)):
            total = FreshnessLedger()
            for index in ordering:
                total.merge(parts[index])
            merged.append(total)
        assert all(ledger == merged[0] for ledger in merged)
        assert merged[0].entries[0].refreshed_at == 5.0
        assert merged[0].entries["overflow"].stales == 2

    def test_snapshot_sorts_ints_first_overflow_last(self) -> None:
        ledger = FreshnessLedger()
        ledger.record_stale("overflow", 4.0)
        ledger.record_stale(7, 1.0)
        ledger.record_stale(2, 2.0)
        labels = [label for label, _ in ledger.staleness_snapshot()]
        assert labels == [2, 7, "overflow"]

    def test_snapshot_defaults_now_to_last_event(self) -> None:
        ledger = FreshnessLedger()
        ledger.record_refresh(0, 1.0)
        ledger.record_stale(1, 6.0)
        snapshot = dict(ledger.staleness_snapshot())
        assert snapshot[0] == 0.0
        assert snapshot[1] == 0.0  # stale since 6.0, evaluated at 6.0
        assert dict(ledger.staleness_snapshot(now=8.5))[1] == \
            pytest.approx(2.5)

    def test_records_round_trip(self) -> None:
        ledger = FreshnessLedger()
        ledger.record_refresh(3, 1.5, count=4)
        ledger.record_stale(3, 2.0)
        ledger.record_stale("overflow", 9.0, count=7)
        rebuilt = FreshnessLedger.from_records(ledger.as_records())
        assert rebuilt == ledger

    def test_empty_ledger_is_falsy(self) -> None:
        ledger = FreshnessLedger()
        assert not ledger
        assert ledger.staleness_snapshot() == []
        assert ledger.last_event_time() is None


class TestLedgerFacade:
    def test_facade_routes_through_element_label_cap(
            self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.setenv("REPRO_TELEMETRY_MAX_ELEMENTS", "4")
        obs.refresh_from_env()
        with obs.telemetry() as registry:
            obs.ledger_refresh(2, 1.0)
            obs.ledger_refresh(4, 2.0)   # at the cap -> overflow
            obs.ledger_refresh(999, 3.0)
            obs.ledger_stale(2, 4.0)
        assert set(registry.ledger.entries) == {2, "overflow"}
        assert registry.ledger.entries["overflow"].refreshes == 2
        assert registry.ledger.entries["overflow"].refreshed_at == 3.0
        monkeypatch.delenv("REPRO_TELEMETRY_MAX_ELEMENTS")
        obs.refresh_from_env()

    def test_facade_is_noop_when_disabled(self) -> None:
        obs.disable_telemetry()
        registry = obs.reset_telemetry()
        obs.ledger_refresh(0, 1.0)
        obs.ledger_stale(0, 2.0)
        assert not registry.ledger
