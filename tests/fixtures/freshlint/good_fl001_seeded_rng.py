"""FL001-clean randomness: seeded, caller-threaded generators."""

import numpy as np


def sample_change_stream(n, rng):
    """Draw ``n`` arrivals from a caller-owned Generator."""
    return rng.random(n)


def make_rng(seed):
    """Build a seeded generator (allowed anywhere)."""
    return np.random.default_rng(seed)
