"""Figure 11 — sync allocation: Fixed Bandwidth vs Fixed Frequency.

Change rate and size reverse-aligned (fast changers are small — the
stock-quote-vs-movie web scenario), access shuffled, PF/s
partitioning.  Paper claim reproduced as an assertion: FBA always
outperforms FFA and approaches the good solution with fewer
partitions.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import figure11
from repro.analysis.tables import format_sweep


def test_figure11(benchmark, report):
    counts = np.array([10, 25, 50, 100, 150, 250])
    sweep = benchmark.pedantic(
        lambda: figure11(partition_counts=counts), rounds=1,
        iterations=1)

    fba = sweep.get("FIXED BANDWIDTH (FBA)").y
    ffa = sweep.get("FIXED FREQUENCY (FFA)").y
    assert (fba >= ffa - 1e-9).all()
    # FBA converges sooner: at the coarsest k it already beats FFA by
    # a visible margin.
    assert fba[0] > ffa[0] + 0.01
    # FFA narrows the gap as partitions shrink toward singletons.
    assert (fba[0] - ffa[0]) > (fba[-1] - ffa[-1])

    report("figure11", format_sweep(sweep))
