"""FL006 — no bare or swallowed exceptions in solver paths.

The solvers communicate failure through a typed hierarchy
(:class:`repro.errors.ReproError` and friends): ``ConvergenceError``
carries the residual, ``InfeasibleProblemError`` marks bad budgets.  A
bare ``except:`` (which also catches ``KeyboardInterrupt`` and
``SystemExit``) or an ``except ...: pass`` in ``core/``/``numerics/``
turns a diagnosable numerical failure into a silently wrong schedule —
the worst possible outcome for an optimizer whose output *looks* like
any other allocation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from freshlint.engine import ModuleContext, Violation
from freshlint.rules.base import Rule

__all__ = ["ExceptionDiscipline"]

_BROAD = {"Exception", "BaseException"}


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """True if the handler body does nothing observable."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value,
                                                     ast.Constant):
            continue  # docstring / ellipsis
        if isinstance(stmt, ast.Continue):
            continue
        return False
    return True


def _names_caught(handler: ast.ExceptHandler) -> list[str]:
    node = handler.type
    if node is None:
        return []
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for elt in elts:
        while isinstance(elt, ast.Attribute):
            elt = elt.value  # type: ignore[assignment]
        if isinstance(elt, ast.Name):
            names.append(elt.id)
    return names


class ExceptionDiscipline(Rule):
    """Bare ``except`` anywhere; broad/swallowed ``except`` in solvers."""

    code = "FL006"
    name = "exception-discipline"
    summary = ("no bare `except:`; no swallowed or overly broad "
               "handlers in src/repro/core and src/repro/numerics")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    context, node,
                    "bare `except:` also catches KeyboardInterrupt and "
                    "SystemExit; catch a ReproError subclass (or at "
                    "most Exception) explicitly")
                continue
            if not context.is_solver_path:
                continue
            caught = _names_caught(node)
            broad = sorted(_BROAD.intersection(caught))
            if broad:
                yield self.violation(
                    context, node,
                    f"solver path catches {', '.join(broad)}; catch the "
                    "typed repro.errors hierarchy so numerical failures "
                    "stay diagnosable")
            if _handler_swallows(node):
                yield self.violation(
                    context, node,
                    "solver path swallows an exception (`pass` body); a "
                    "suppressed ConvergenceError yields a schedule that "
                    "looks valid but is not optimal - re-raise, handle, "
                    "or record it")
