"""Vectorized replay of the simulation event tape.

:func:`replay_fastpath` consumes the *same* merged event tape the
per-event reference loop in :meth:`repro.sim.simulation.Simulation.run`
walks, and produces a :class:`~repro.sim.evaluator.SimulationResult`
that is **bit-identical** — not merely statistically equivalent — to
the reference loop's.  The random draws all happen upstream (schedule
phases, update stream, request stream), so the fault-free kernel is
pure replay: it consumes no RNG and only has to reproduce the
reference loop's floating-point operation *order*, element by element.

:func:`replay_fastpath_faulted` extends the same machinery to
*stateless per-attempt loss* — a :class:`~repro.faults.model.FaultPlan`
whose :meth:`~repro.faults.model.FaultPlan.iid_profile` is not None
(one i.i.d. model, no outages; the dispatching `Simulation.run` also
requires no breaker).  Such plans consume exactly one uniform draw
per attempt plus one jitter draw per retry, so the whole fault stream
can be pre-drawn in one vectorized pass and resolved into per-sync
attempt counts and success flags (:func:`resolve_iid_faults`); the
successful syncs are then folded through the fault-free copy-state
machine unchanged.  Stateful plans — Gilbert–Elliott chains, latency
draws (variable bitstream consumption), outage windows, breakers —
stay on the reference loop; :meth:`Simulation.run` dispatches.

:func:`replay_fastpath_ge` does the same for *single Gilbert–Elliott*
plans (:meth:`~repro.faults.model.FaultPlan.ge_profile` not None).
The chain is stateful across attempts, but its per-attempt draw shape
is fixed — one transition draw, one loss draw, one jitter draw per
retry — so :func:`resolve_ge_faults` pre-draws the pool, classifies
each draw against the four thresholds (flip-from-good, flip-from-bad,
loss-in-good, loss-in-bad) in bulk, and evolves the per-element burst
state across each element's poll sequence: a true segmented scan
(Hillis–Steele over associative state-function composition) on the
retry-free path, a tight scalar cursor walk over the precomputed bit
tables when retries or budget denials make draw consumption
data-dependent.  The chain state is threaded through explicitly
(:meth:`~repro.faults.model.GilbertElliottFaultModel.chain_states`),
so consecutive runs sharing one plan object stay bit-identical to the
reference loop's hidden ``_bad`` dict.

How the loop is vectorized
--------------------------

The tape is regrouped per element with a stable sort, which preserves
each element's global event order (updates before syncs before
accesses at equal timestamps, courtesy of the merge's lexsort).  The
per-element monitor state machine is then reconstructed with segment
operations:

* the fresh/stale flag before each event comes from the last
  update/sync strictly before it (a segmented running maximum over
  state-change positions);
* stale-run start times (``stale_since``) carry forward from each
  run-opening update by the same trick;
* fresh-time and age-integral increments are computed for every event
  at once and folded per element with :func:`numpy.bincount`.

Bit-identity notes (all verified by the equivalence suite):

* ``np.bincount`` accumulates its weights as an exact sequential
  left-fold per bin in input order — unlike ``np.sum`` or
  ``np.add.reduceat``, which use pairwise summation and would break
  bit-identity with the loop's ``+=``.
* The reference loop squares *scalars* (``(time - since) ** 2`` on
  ``np.float64`` goes through libm ``pow``), while the monitor's
  ``close()`` squares *arrays* (``** 2`` lowers to ``x*x``).  These
  differ in the last bit for ~0.1% of inputs, so the kernel uses
  ``np.float_power`` (bit-equal to scalar ``pow``) for per-event
  trapezoids and array ``** 2`` for the horizon flush.
* Adding the ``0.0`` increments the loop never performs is safe here:
  no accumulator can hold ``-0.0``.
* ``Generator.random(n)`` produces the same values *and* the same
  post-call state as ``n`` successive scalar ``random()`` calls, and
  ``Generator.uniform(low, high)`` consumes exactly one draw and
  equals ``low + (high - low) * random()`` bit-for-bit — which is
  what lets :func:`resolve_iid_faults` pre-draw an oversized pool,
  rewind the bit generator, and re-advance it by the exact number of
  draws the reference channel would have consumed.

The one sequential piece of the faulted path is the per-period
bandwidth ledger: how many draws a sync consumes depends on where
earlier syncs left the pool cursor and the ledger, so the cursor walk
is a tight O(n_syncs) scalar scan over precomputed attempt tables —
everything per-event and per-attempt around it (outcome draws, retry
columns, trace assembly, accounting folds, the tape replay itself)
is vectorized.

Streaming replay
----------------

:class:`StreamingReplay` runs the same copy-state machine over a
horizon fed as consecutive whole-period *slabs* instead of one tape,
so peak memory is O(slab), not O(horizon).  A :class:`ReplayCarry`
threads every per-element quantity the kernel otherwise derives from
"start of tape" across slab boundaries: the fresh flag, the open
stale-run start, the last event time, the source version counter and
last-polled version, and the partially folded accumulators.  Because
``np.bincount`` folds weights per bin as an exact sequential left
fold in input order, prepending each element's carried accumulator as
that bin's first weight continues the fold bit-exactly — left folds
compose — so slab-by-slab replay of a tape is bit-identical to
one-shot replay of its concatenation, including telemetry, ledger,
fault accounting and post-run rng/chain state.  Fault resolution runs
per slab on the same rng (each slab's pool starts exactly where the
previous slab's consumption ended); slabs must split at whole-period
boundaries so the resolvers' per-period bandwidth ledger resets in
the same places the one-shot walk resets it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.contracts import (
    check_attempt_budget,
    check_sync_conservation,
    contracts_enabled,
)
from repro.errors import SimulationError
from repro.faults.model import GilbertElliottFaultModel, PollOutcome
from repro.faults.retry import RetryPolicy
from repro.obs import registry as obs
from repro.sim.events import EventKind
from repro.sim.evaluator import SimulationResult
from repro.workloads.catalog import Catalog

__all__ = ["ReplayArena", "ReplayCarry", "StreamingReplay",
           "replay_fastpath", "replay_fastpath_faulted",
           "replay_fastpath_ge", "replay_window_tapes",
           "resolve_ge_faults", "resolve_iid_faults",
           "resolve_tape_faults"]


def _segment_starts(elements_sorted: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """First-event flag and per-event segment-start position.

    Args:
        elements_sorted: Element ids after the stable per-element sort.

    Returns:
        ``(new_segment, segment_start_of)`` — a boolean mask of
        segment-opening events and, per event, the global position of
        its segment's first event.
    """
    n_events = elements_sorted.shape[0]
    new_segment = np.empty(n_events, dtype=bool)
    new_segment[0] = True
    np.not_equal(elements_sorted[1:], elements_sorted[:-1],
                 out=new_segment[1:])
    start_positions = np.flatnonzero(new_segment)
    segment_ids = np.cumsum(new_segment) - 1
    return new_segment, start_positions[segment_ids]


def _shift_within_segment(values: np.ndarray, new_segment: np.ndarray,
                          fill: float) -> np.ndarray:
    """Previous event's value within each segment (``fill`` at starts)."""
    shifted = np.empty_like(values)
    shifted[0] = fill
    shifted[1:] = values[:-1]
    shifted[new_segment] = fill
    return shifted


def _last_position_at_or_before(candidate_positions: np.ndarray,
                                segment_start_of: np.ndarray
                                ) -> np.ndarray:
    """Segmented running maximum of marked positions (−1 = none yet).

    ``candidate_positions`` holds each event's own global position
    where the event is a mark and −1 elsewhere; the result holds, per
    event, the latest marked position at or before it *within its
    segment*.
    """
    running = np.maximum.accumulate(candidate_positions)
    return np.where(running >= segment_start_of, running, -1)


@dataclass
class _TapeReplay:
    """Everything the copy-state machine measures from one tape.

    Per-element arrays have one entry per element; the ``*_global``
    flag arrays have one entry per tape event in *tape* order (None
    for an empty tape).  Shared by the fault-free, faulted and
    window-batched assembly paths.
    """

    element_freshness: np.ndarray
    element_age: np.ndarray
    poll_counts: np.ndarray
    changed_poll_counts: np.ndarray
    access_counts: np.ndarray
    n_updates: int
    n_syncs: int
    n_accesses: int
    useful_syncs: int
    fresh_accesses: int
    bandwidth_used: float
    fresh_before_global: np.ndarray | None
    run_start_global: np.ndarray | None
    becomes_fresh_global: np.ndarray | None
    changed_sync_global: np.ndarray | None


def _replay_tape(n_elements: int, sizes: np.ndarray,
                 times: np.ndarray, elements: np.ndarray,
                 kinds: np.ndarray, *, horizon: float) -> _TapeReplay:
    """Replay one merged event tape through the segment kernel.

    Args:
        n_elements: Number of mirrored elements (tape element ids may
            be tiled copies, as in the window batch path).
        sizes: Per-element transfer sizes, in size units; shape
            ``(n_elements,)``.
        times: Merged event times, globally time-ordered, in clock
            units.
        elements: Element id per merged event.
        kinds: :class:`~repro.sim.events.EventKind` per merged event.
        horizon: Total simulated clock time per element, in clock
            units.

    Returns:
        The :class:`_TapeReplay` measurements, bit-identical to the
        reference loop's for the same tape.
    """
    n_events = int(times.shape[0])
    update_kind = int(EventKind.UPDATE)
    sync_kind = int(EventKind.SYNC)

    if n_events:
        # Structure-of-arrays dtype discipline: event counts fit
        # int32 by a wide margin (a 10⁶-element run is a few million
        # events), and halving every positional index array is what
        # keeps the 10⁶-element replay inside the CI memory ceiling.
        if n_events >= np.iinfo(np.int32).max:
            raise SimulationError(
                f"tape of {n_events} events overflows int32 positions")
        order = np.argsort(elements, kind="stable")
        element_of = elements[order]
        time_of = times[order]
        kind_of = kinds[order]
        positions = np.arange(n_events, dtype=np.int32)

        new_segment, segment_start_of = _segment_starts(element_of)
        segment_start_of = segment_start_of.astype(np.int32, copy=False)
        segment_start_positions = np.flatnonzero(new_segment)
        segment_end_positions = np.append(
            segment_start_positions[1:] - 1, n_events - 1)
        present = element_of[segment_start_positions]

        previous_time = _shift_within_segment(time_of, new_segment, 0.0)
        if (time_of < previous_time).any():
            raise SimulationError("event tape is not time-ordered")
        elapsed = time_of - previous_time

        is_update = kind_of == update_kind
        is_sync = kind_of == sync_kind
        is_access = ~is_update & ~is_sync

        # --- monitor state before each event -------------------------
        # The fresh flag before event k is decided by the last update
        # or sync strictly before k in its segment (fresh initially).
        state_change_positions = np.where(is_update | is_sync,
                                          positions, -1)
        last_state_change = _last_position_at_or_before(
            state_change_positions, segment_start_of)
        previous_state_change = np.empty_like(last_state_change)
        previous_state_change[0] = -1
        previous_state_change[1:] = last_state_change[:-1]
        previous_state_change = np.where(
            previous_state_change >= segment_start_of,
            previous_state_change, -1)
        fresh_before = ((previous_state_change < 0)
                        | (kind_of[np.maximum(previous_state_change, 0)]
                           == sync_kind))

        # The first unseen update opens a stale run and pins
        # stale_since; later updates extend it without resetting.
        run_start = is_update & fresh_before
        run_start_positions = np.where(run_start, positions, -1)
        # Inclusive-at-k is safe: a run-starting event is itself fresh
        # and never reads `since`.
        since_position = _last_position_at_or_before(
            run_start_positions, segment_start_of)
        stale_since = time_of[np.maximum(since_position, 0)]

        # --- per-event increments, folded per element ----------------
        # The reference loop squares np.float64 *scalars* (libm pow);
        # np.float_power is the array op that matches it bit-for-bit,
        # where array ** 2 (x*x) would not.
        end_offset = time_of - stale_since
        start_offset = previous_time - stale_since
        age_increment = 0.5 * (np.float_power(end_offset, 2.0)
                               - np.float_power(start_offset, 2.0))
        fresh_time = np.bincount(
            element_of, weights=np.where(fresh_before, elapsed, 0.0),
            minlength=n_elements)
        age_integral = np.bincount(
            element_of,
            weights=np.where(fresh_before, 0.0, age_increment),
            minlength=n_elements)

        # --- final state per element, for the horizon flush ----------
        last_time = np.zeros(n_elements)
        last_time[present] = time_of[segment_end_positions]
        final_state_change = last_state_change[segment_end_positions]
        fresh_final = np.ones(n_elements, dtype=bool)
        fresh_final[present] = (
            (final_state_change < 0)
            | (kind_of[np.maximum(final_state_change, 0)] == sync_kind))
        final_since_position = since_position[segment_end_positions]
        stale_since_final = np.zeros(n_elements)
        stale_since_final[present] = np.where(
            final_since_position >= 0,
            time_of[np.maximum(final_since_position, 0)], 0.0)

        # --- mirror bookkeeping: polls, changed polls, accesses ------
        # Version arithmetic is integer-exact: the source version of
        # an element at any event equals its update count so far, and
        # a poll finds a change iff that count grew since its previous
        # poll (the copy starts at version 0 = zero updates).
        updates_so_far = np.cumsum(is_update, dtype=np.int32)
        updates_before = ((updates_so_far - is_update)
                          - (updates_so_far[segment_start_of]
                             - is_update[segment_start_of]))
        sync_positions = np.flatnonzero(is_sync)
        sync_elements = element_of[sync_positions]
        sync_versions = updates_before[sync_positions]
        previous_versions = np.zeros_like(sync_versions)
        if sync_versions.shape[0]:
            previous_versions[1:] = sync_versions[:-1]
            first_poll = np.empty(sync_versions.shape[0], dtype=bool)
            first_poll[0] = True
            np.not_equal(sync_elements[1:], sync_elements[:-1],
                         out=first_poll[1:])
            previous_versions[first_poll] = 0
        changed = sync_versions > previous_versions

        poll_counts = np.bincount(
            sync_elements, minlength=n_elements).astype(np.int64)
        changed_poll_counts = np.bincount(
            sync_elements[changed],
            minlength=n_elements).astype(np.int64)
        useful_syncs = int(np.count_nonzero(changed))
        n_syncs = int(sync_positions.shape[0])
        n_updates = int(np.count_nonzero(is_update))

        access_positions = np.flatnonzero(is_access)
        access_elements = element_of[access_positions]
        # An access sees fresh data iff the copy version equals the
        # source version, which is exactly the monitor's flag.
        access_fresh = fresh_before[access_positions]
        n_accesses = int(access_positions.shape[0])
        fresh_accesses = int(np.count_nonzero(access_fresh))
        access_counts = np.bincount(
            access_elements, minlength=n_elements).astype(np.int64)

        # Bandwidth is a sequential float fold over syncs in *global*
        # time order (the mirror accumulates across elements as the
        # tape plays); a single-bin bincount reproduces the fold.
        global_sync = kinds == sync_kind
        sync_sizes = sizes[elements[global_sync]]
        bandwidth_used = float(np.bincount(
            np.zeros(sync_sizes.shape[0], dtype=np.intp),
            weights=sync_sizes, minlength=1)[0])

        # Scatter the sorted-order flags back to tape order for the
        # telemetry series and the window-batch split.
        fresh_before_global = np.empty(n_events, dtype=bool)
        fresh_before_global[order] = fresh_before
        run_start_global = np.empty(n_events, dtype=bool)
        run_start_global[order] = run_start
        becomes_fresh_global = np.empty(n_events, dtype=bool)
        becomes_fresh_global[order] = is_sync & ~fresh_before
        changed_sync_global = np.zeros(n_events, dtype=bool)
        changed_sync_global[order[sync_positions[changed]]] = True
    else:  # an empty tape: every copy stays fresh to the horizon
        fresh_time = np.zeros(n_elements)
        age_integral = np.zeros(n_elements)
        last_time = np.zeros(n_elements)
        fresh_final = np.ones(n_elements, dtype=bool)
        stale_since_final = np.zeros(n_elements)
        poll_counts = np.zeros(n_elements, dtype=np.int64)
        changed_poll_counts = np.zeros(n_elements, dtype=np.int64)
        access_counts = np.zeros(n_elements, dtype=np.int64)
        useful_syncs = n_syncs = n_updates = 0
        n_accesses = fresh_accesses = 0
        bandwidth_used = 0.0
        fresh_before_global = None
        run_start_global = None
        becomes_fresh_global = None
        changed_sync_global = None

    # --- horizon flush: mirrors FreshnessMonitor.close() exactly ----
    # (array ** 2 here on purpose — close() squares arrays).
    remaining = horizon - last_time
    if (remaining < -1e-9).any():
        raise SimulationError("events were recorded beyond the horizon")
    fresh_time += np.maximum(remaining, 0.0) * fresh_final
    stale = ~fresh_final & (remaining > 0.0)
    if stale.any():
        since = stale_since_final[stale]
        start = last_time[stale]
        age_integral[stale] += 0.5 * (
            (horizon - since) ** 2 - (start - since) ** 2)

    return _TapeReplay(
        element_freshness=fresh_time / horizon,
        element_age=age_integral / horizon,
        poll_counts=poll_counts,
        changed_poll_counts=changed_poll_counts,
        access_counts=access_counts,
        n_updates=n_updates,
        n_syncs=n_syncs,
        n_accesses=n_accesses,
        useful_syncs=useful_syncs,
        fresh_accesses=fresh_accesses,
        bandwidth_used=bandwidth_used,
        fresh_before_global=fresh_before_global,
        run_start_global=run_start_global,
        becomes_fresh_global=becomes_fresh_global,
        changed_sync_global=changed_sync_global,
    )


# seedflow: pair=repro.sim.simulation.Simulation.run
def replay_fastpath(catalog: Catalog, frequencies: np.ndarray,
                    times: np.ndarray, elements: np.ndarray,
                    kinds: np.ndarray, *, horizon: float,
                    period_length: float, n_periods: float,
                    ledger_time_offset: float = 0.0
                    ) -> SimulationResult:
    """Replay a merged fault-free event tape without the Python loop.

    Args:
        catalog: The simulated workload.
        frequencies: The schedule's per-element sync frequencies, in
            syncs per period.
        times: Merged event times, globally time-ordered.
        elements: Element id per merged event.
        kinds: :class:`~repro.sim.events.EventKind` per merged event.
        horizon: Total simulated clock time.
        period_length: Clock length of one sync period.
        n_periods: Periods simulated (may be fractional).
        ledger_time_offset: Added to event times when feeding the
            freshness ledger, in clock units (whole periods) — the
            quiet-path analogue of the faulted kernel's
            ``fault_time_offset``, so per-period manager runs stamp
            the ledger on the global clock.

    Returns:
        A :class:`SimulationResult` bit-identical to the reference
        loop's for the same tape.
    """
    sizes = np.asarray(catalog.sizes, dtype=float)
    replay = _replay_tape(catalog.n_elements, sizes, times, elements,
                          kinds, horizon=horizon)
    p = catalog.access_probabilities
    perceived_by_accesses = (
        replay.fresh_accesses / replay.n_accesses
        if replay.n_accesses
        else float(p @ replay.element_freshness))

    if obs.telemetry_enabled():
        _emit_period_series(
            times, elements, kinds, sizes,
            replay.fresh_before_global, replay.run_start_global,
            replay.becomes_fresh_global,
            catalog.n_elements, period_length=period_length,
            n_periods=n_periods, planned=float(sizes @ frequencies))
        _emit_monitor_close(replay.element_freshness,
                            replay.element_age, replay.n_accesses,
                            replay.fresh_accesses, horizon)
        _emit_ledger(times, elements, kinds,
                     replay.run_start_global,
                     time_offset=ledger_time_offset)
        obs.counter_add("sim.runs")
        obs.counter_add("sim.fastpath_runs")
        obs.counter_add("sim.engine.fastpath")
        obs.counter_add("sim.syncs", replay.n_syncs)
        obs.counter_add("sim.useful_syncs", replay.useful_syncs)
        obs.counter_add("sim.updates", replay.n_updates)
        obs.counter_add("sim.accesses", replay.n_accesses)
        obs.gauge_set("sim.bandwidth_used", replay.bandwidth_used)
        obs.gauge_set("sim.monitored_perceived_freshness",
                      float(perceived_by_accesses))
        obs.gauge_set("sim.monitored_general_freshness",
                      float(replay.element_freshness.mean()))

    return SimulationResult(
        catalog=catalog,
        frequencies=frequencies,
        horizon=horizon,
        period_length=period_length,
        n_updates=replay.n_updates,
        n_syncs=replay.n_syncs,
        n_accesses=replay.n_accesses,
        useful_syncs=replay.useful_syncs,
        bandwidth_used=replay.bandwidth_used,
        monitored_perceived_freshness=float(perceived_by_accesses),
        monitored_time_perceived=float(p @ replay.element_freshness),
        monitored_general_freshness=float(
            replay.element_freshness.mean()),
        element_time_freshness=replay.element_freshness,
        element_time_age=replay.element_age,
        monitored_perceived_age=float(p @ replay.element_age),
        access_counts=replay.access_counts,
        poll_counts=replay.poll_counts,
        changed_poll_counts=replay.changed_poll_counts,
        attempted_polls=replay.n_syncs,
        attempted_bandwidth=replay.bandwidth_used,
    )


@dataclass
class FaultResolution:
    """Per-sync outcome of the vectorized i.i.d. fault resolution.

    Arrays have one entry per *scheduled* sync in tape order.

    Attributes:
        attempts: Attempts made per sync (0 = budget-denied outright).
        success: Whether the sync's final attempt succeeded.
        denied: Whether the sync was denied before its first attempt.
        offsets: Each sync's first draw position in the pre-drawn
            pool (meaningful only where ``attempts > 0``).
        consumed: RNG draws consumed per sync (``2·attempts − 1``
            for i.i.d. plans, ``3·attempts − 1`` for Gilbert–Elliott
            plans whose attempts each take a transition *and* a loss
            draw; 0 for denied syncs).
        denied_retries: Retries refused by the period budget, total.
        trace: The reference channel's per-attempt trace —
            ``(attempt_time, element, outcome_value)`` — or None when
            not recorded.
    """

    attempts: np.ndarray
    success: np.ndarray
    denied: np.ndarray
    offsets: np.ndarray
    consumed: np.ndarray
    denied_retries: int
    trace: list[tuple[float, int, str]] | None


# seedflow: pair=repro.faults.channel.SyncChannel.sync
def resolve_iid_faults(sync_times: np.ndarray,
                       sync_elements: np.ndarray,
                       sizes: np.ndarray, *,
                       failure_probability: float,
                       failure_outcome: PollOutcome,
                       retry_policy: RetryPolicy | None,
                       bandwidth_budget: float | None,
                       period_length: float,
                       rng: np.random.Generator,
                       record_trace: bool = False
                       ) -> FaultResolution:
    """Resolve every scheduled sync's fault outcome in one pass.

    Pre-draws an oversized uniform pool from ``rng`` (one vectorized
    call), classifies every possible attempt start position into
    "first success at attempt k / no success", then walks the syncs
    once to place each sync's draw cursor and charge its attempts
    against the per-period bandwidth ledger — the only inherently
    sequential part, a tight O(n_syncs) scalar scan.  Finally the bit
    generator is rewound and re-advanced by exactly the number of
    draws the reference :class:`~repro.faults.channel.SyncChannel`
    would have consumed, so downstream draws see an identical stream.

    Args:
        sync_times: Scheduled sync times *on the fault clock* (local
            time plus any fault offset), in clock units, nondecreasing.
        sync_elements: Element index per scheduled sync.
        sizes: Per-element transfer sizes, in size units.
        failure_probability: Per-attempt failure probability in
            ``[0, 1]`` (dimensionless).
        failure_outcome: Outcome reported on a failed attempt (must
            be retryable; the dispatcher guarantees this).
        retry_policy: Backoff policy, or None to disable retries.
        bandwidth_budget: Per-period attempt budget B in size units
            per period, or None to disable the ledger.
        period_length: Clock length of one budget period, > 0.
        rng: The fault generator (``fault_rng`` or the shared
            workload generator), advanced exactly as the reference
            channel would.
        record_trace: When True, build the reference-identical
            per-attempt trace (costs a Python loop over attempts).

    Returns:
        The per-sync :class:`FaultResolution`.
    """
    m = int(sync_times.shape[0])
    max_attempts = (1 if retry_policy is None
                    else retry_policy.max_retries + 1)
    width = 2 * max_attempts - 1

    if m == 0:
        empty = np.zeros(0, dtype=np.int64)
        return FaultResolution(
            attempts=empty, success=np.zeros(0, dtype=bool),
            denied=np.zeros(0, dtype=bool), offsets=empty.copy(),
            consumed=empty.copy(), denied_retries=0,
            trace=[] if record_trace else None)

    state = rng.bit_generator.state
    pool = rng.random(m * width + width)
    pool_span = m * width
    # ok_cols[t, k]: would the (k+1)-th attempt of a sync whose first
    # draw sits at pool position t succeed?  Attempt draws are spaced
    # two apart because each retry interleaves one jitter draw.
    fail = pool < failure_probability
    ok_cols = np.empty((pool_span + 1, max_attempts), dtype=bool)
    for k in range(max_attempts):
        ok_cols[:, k] = ~fail[2 * k: 2 * k + pool_span + 1]
    any_ok = ok_cols.any(axis=1)
    # Attempts the retry policy would allow from each position: stop
    # at the first success, else exhaust all max_attempts columns.
    desired = np.where(any_ok, ok_cols.argmax(axis=1) + 1,
                       max_attempts)

    # --- the ledger walk (the one sequential piece) ------------------
    desired_list = desired.tolist()
    any_ok_list = any_ok.tolist()
    size_list = sizes[sync_elements].tolist()
    period_list = (sync_times / period_length).astype(np.int64).tolist()
    out_attempts = [0] * m
    out_success = [False] * m
    out_offsets = [0] * m
    denied_retries = 0
    cursor = 0
    current_period = 0
    spent = 0.0
    budget = bandwidth_budget
    for i in range(m):
        period = period_list[i]
        if period > current_period:
            current_period = period
            spent = 0.0
        size = size_list[i]
        if budget is not None and spent + size > budget:
            continue  # denied outright: zero attempts, zero draws
        goal = desired_list[cursor]
        out_offsets[i] = cursor
        if budget is None:
            attempts = goal
        else:
            attempts = 1
            spent += size
            while attempts < goal:
                if spent + size > budget:
                    denied_retries += 1
                    break
                attempts += 1
                spent += size
        out_attempts[i] = attempts
        out_success[i] = any_ok_list[cursor] and attempts == goal
        cursor += 2 * attempts - 1

    attempts_arr = np.asarray(out_attempts, dtype=np.int64)
    success_arr = np.asarray(out_success, dtype=bool)
    offsets_arr = np.asarray(out_offsets, dtype=np.int64)
    made = attempts_arr > 0
    consumed_arr = np.where(made, 2 * attempts_arr - 1, 0)

    # Rewind the oversized pool draw, then advance by exactly what the
    # reference channel consumed (array and scalar draws advance the
    # PCG64 state identically).
    rng.bit_generator.state = state
    if cursor:
        # Data-dependent on purpose: re-advances the rewound stream
        # by exactly the reference channel's consumption, so this
        # branch *restores* draw parity rather than breaking it.
        rng.random(cursor)  # freshlint: disable=FL013

    trace: list[tuple[float, int, str]] | None = None
    if record_trace:
        trace = _build_trace(
            sync_times, sync_elements, attempts_arr, success_arr,
            offsets_arr, pool, failure_outcome=failure_outcome,
            retry_policy=retry_policy)

    return FaultResolution(
        attempts=attempts_arr, success=success_arr,
        denied=~made, offsets=offsets_arr, consumed=consumed_arr,
        denied_retries=denied_retries, trace=trace)


def _build_trace(sync_times: np.ndarray, sync_elements: np.ndarray,
                 attempts: np.ndarray, success: np.ndarray,
                 offsets: np.ndarray, pool: np.ndarray, *,
                 failure_outcome: PollOutcome,
                 retry_policy: RetryPolicy | None,
                 draw_stride: int = 2
                 ) -> list[tuple[float, int, str]]:
    """Reconstruct the reference channel's per-attempt trace.

    Retry timestamps replay the decorrelated-jitter chain: each delay
    is ``min(base + (max(3·prev, base) − base) · u, max_delay)`` with
    ``u`` the jitter draw interleaved between the attempt draws —
    bit-equal to ``rng.uniform(base, anchor)`` in the reference.
    ``draw_stride`` is the pool distance between consecutive attempts
    of one sync: 2 for i.i.d. plans (outcome + jitter), 3 for
    Gilbert–Elliott (transition + loss + jitter); the jitter draw
    always sits last, at ``offset + stride·k + stride − 1``.
    """
    trace: list[tuple[float, int, str]] = []
    ok_value = PollOutcome.OK.value
    fail_value = failure_outcome.value
    base = retry_policy.base_delay if retry_policy is not None else 0.0
    cap = retry_policy.max_delay if retry_policy is not None else 0.0
    pool_list = pool.tolist()
    times_list = sync_times.tolist()
    elements_list = sync_elements.tolist()
    attempts_list = attempts.tolist()
    success_list = success.tolist()
    offsets_list = offsets.tolist()
    for i in range(len(times_list)):
        n_attempts = attempts_list[i]
        if n_attempts == 0:
            continue
        element = int(elements_list[i])
        time = times_list[i]
        offset = offsets_list[i]
        delay = 0.0
        for k in range(n_attempts):
            last = k == n_attempts - 1
            value = (ok_value if last and success_list[i]
                     else fail_value)
            trace.append((time, element, value))
            if not last:
                jitter = pool_list[offset + draw_stride * k
                                   + draw_stride - 1]
                anchor = max(3.0 * delay, base)
                delay = min(base + (anchor - base) * jitter, cap)
                time += delay
    return trace


def _ge_scan_states(sync_elements: np.ndarray, flip_good: np.ndarray,
                    flip_bad: np.ndarray, initial_bad: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Post-attempt chain states for the retry-free GE fast route.

    With exactly one attempt per sync, sync ``i``'s transition draw
    sits at pool position ``2·i`` and the chain for each element
    evolves as a composition of two-state transition functions — an
    associative operator, so a Hillis–Steele inclusive scan over the
    element-sorted sync sequence replaces the sequential walk.  Each
    per-sync function is encoded as the pair *(state-if-entered-good,
    state-if-entered-bad)*; composing ``g ∘ f`` routes ``g`` through
    ``f``'s outputs with two ``np.where`` selects.

    Args:
        sync_elements: Element index per sync, tape order.
        flip_good: Whether each pool draw flips a good-state chain.
        flip_bad: Whether each pool draw flips a bad-state chain.
        initial_bad: Per-element chain state entering the batch.

    Returns:
        ``(order, state_after_sorted, final_bad)`` — the stable
        element sort permutation, each sync's post-transition state in
        sorted order, and the per-element state after the batch.
    """
    m = int(sync_elements.shape[0])
    order = np.argsort(sync_elements, kind="stable")
    element_sorted = sync_elements[order]
    transition_at = order * 2
    # out-state of this sync's transition, given the in-state:
    out_if_good = flip_good[transition_at]
    out_if_bad = ~flip_bad[transition_at]
    new_segment, segment_start_of = _segment_starts(element_sorted)
    positions = np.arange(m, dtype=np.int64)
    shift = 1
    while shift < m:
        # Compose each position's aggregate with the aggregate
        # `shift` places back (when still inside the same segment):
        # new = current ∘ previous.
        in_segment = positions - shift >= segment_start_of
        prev_good = np.empty_like(out_if_good)
        prev_good[:shift] = False
        prev_good[shift:] = out_if_good[:-shift]
        prev_bad = np.empty_like(out_if_bad)
        prev_bad[:shift] = False
        prev_bad[shift:] = out_if_bad[:-shift]
        composed_good = np.where(
            in_segment, np.where(prev_good, out_if_bad, out_if_good),
            out_if_good)
        composed_bad = np.where(
            in_segment, np.where(prev_bad, out_if_bad, out_if_good),
            out_if_bad)
        out_if_good, out_if_bad = composed_good, composed_bad
        shift <<= 1
    state_after = np.where(initial_bad[element_sorted],
                           out_if_bad, out_if_good)
    final_bad = initial_bad.copy()
    segment_starts = np.flatnonzero(new_segment)
    segment_ends = np.append(segment_starts[1:] - 1, m - 1)
    final_bad[element_sorted[segment_ends]] = state_after[segment_ends]
    return order, state_after, final_bad


# seedflow: pair=repro.faults.channel.SyncChannel.sync
def resolve_ge_faults(sync_times: np.ndarray,
                      sync_elements: np.ndarray,
                      sizes: np.ndarray, *,
                      p_good_to_bad: float,
                      p_bad_to_good: float,
                      loss_good: float,
                      loss_bad: float,
                      failure_outcome: PollOutcome,
                      initial_bad: np.ndarray,
                      retry_policy: RetryPolicy | None,
                      bandwidth_budget: float | None,
                      period_length: float,
                      rng: np.random.Generator,
                      record_trace: bool = False
                      ) -> tuple[FaultResolution, np.ndarray]:
    """Resolve every sync's fate under a Gilbert–Elliott channel.

    The reference channel consumes, per attempt, one transition draw
    (compared against the current state's flip probability) and one
    loss draw (compared against the new state's loss probability),
    plus one jitter draw per retry — a fixed shape, so the whole
    stream is pre-drawn in one call and classified against all four
    thresholds in bulk.  What remains sequential is only the chain
    itself.  On the retry-free, denial-free route that sequence is an
    associative function composition and runs as a segmented scan
    (:func:`_ge_scan_states`); otherwise a tight O(total attempts)
    cursor walk over the precomputed bit tables places each sync's
    draws and charges the period ledger, exactly like the i.i.d.
    resolver.  The bit generator is then rewound and re-advanced by
    the reference channel's exact consumption.

    Args:
        sync_times: Scheduled sync times on the fault clock, in clock
            units, nondecreasing.
        sync_elements: Element index per scheduled sync.
        sizes: Per-element transfer sizes, in size units.
        p_good_to_bad: Per-attempt flip probability out of good.
        p_bad_to_good: Per-attempt flip probability out of bad.
        loss_good: Loss probability in the good state.
        loss_bad: Loss probability in the bad state.
        failure_outcome: Outcome reported on a failed attempt (must
            be retryable; the dispatcher guarantees this).
        initial_bad: Per-element chain state entering this batch,
            shape ``(n_elements,)``, dtype bool; never mutated.
        retry_policy: Backoff policy, or None to disable retries.
        bandwidth_budget: Per-period attempt budget B in size units
            per period, or None to disable the ledger.
        period_length: Clock length of one budget period, > 0.
        rng: The fault generator, advanced exactly as the reference
            channel would.
        record_trace: When True, build the reference-identical
            per-attempt trace.

    Returns:
        ``(resolution, final_bad)`` — the per-sync
        :class:`FaultResolution` and the per-element chain state
        after the batch, for the caller to commit back into the
        model (:meth:`~repro.faults.model.GilbertElliottFaultModel.
        set_chain_states`).
    """
    m = int(sync_times.shape[0])
    max_attempts = (1 if retry_policy is None
                    else retry_policy.max_retries + 1)
    width = 3 * max_attempts - 1
    final_bad = np.asarray(initial_bad, dtype=bool).copy()

    if m == 0:
        empty = np.zeros(0, dtype=np.int64)
        return FaultResolution(
            attempts=empty, success=np.zeros(0, dtype=bool),
            denied=np.zeros(0, dtype=bool), offsets=empty.copy(),
            consumed=empty.copy(), denied_retries=0,
            trace=[] if record_trace else None), final_bad

    state = rng.bit_generator.state
    pool = rng.random(m * width + width)
    flip_good = pool < p_good_to_bad
    flip_bad = pool < p_bad_to_good
    fail_good = pool < loss_good
    fail_bad = pool < loss_bad

    scan_route = max_attempts == 1
    if scan_route and bandwidth_budget is not None:
        # The scan needs every sync to make its one attempt.  A
        # denial in period P happens iff the period's sequential
        # spend fold exceeds B at some prefix; spends are
        # nonnegative, so that is iff the period *total* (the same
        # left-fold, via bincount) exceeds B.  When any period can
        # deny, fall through to the exact ledger walk.
        period_index = (sync_times / period_length).astype(np.int64)
        period_index -= int(period_index[0])
        period_spend = np.bincount(period_index,
                                   weights=sizes[sync_elements])
        scan_route = bool((period_spend <= bandwidth_budget).all())

    denied_retries = 0
    if scan_route:
        # Retry-free and denial-free: sync i's draws sit at pool
        # positions 2i (transition) and 2i+1 (loss), unconditionally.
        order, state_after, final_bad = _ge_scan_states(
            sync_elements, flip_good, flip_bad, final_bad)
        loss_at = order * 2 + 1
        failed_sorted = np.where(state_after, fail_bad[loss_at],
                                 fail_good[loss_at])
        success_arr = np.empty(m, dtype=bool)
        success_arr[order] = ~failed_sorted
        attempts_arr = np.ones(m, dtype=np.int64)
        offsets_arr = np.arange(m, dtype=np.int64) * 2
        consumed_arr = np.full(m, 2, dtype=np.int64)
        cursor = 2 * m
    else:
        flip_good_list = flip_good.tolist()
        flip_bad_list = flip_bad.tolist()
        fail_good_list = fail_good.tolist()
        fail_bad_list = fail_bad.tolist()
        size_list = sizes[sync_elements].tolist()
        period_list = (sync_times
                       / period_length).astype(np.int64).tolist()
        element_list = sync_elements.tolist()
        bad_list = final_bad.tolist()
        out_attempts = [0] * m
        out_success = [False] * m
        out_offsets = [0] * m
        cursor = 0
        current_period = 0
        spent = 0.0
        budget = bandwidth_budget
        for i in range(m):
            period = period_list[i]
            if period > current_period:
                current_period = period
                spent = 0.0
            size = size_list[i]
            if budget is not None and spent + size > budget:
                continue  # denied outright: zero attempts, zero draws
            element = element_list[i]
            bad = bad_list[element]
            out_offsets[i] = cursor
            attempts = 0
            success = False
            draw = cursor
            while True:
                # Transition first (flip probability depends on the
                # in-state), then the loss draw against the new state
                # — the reference model's exact order.
                bad = ((not flip_bad_list[draw]) if bad
                       else flip_good_list[draw])
                attempts += 1
                if budget is not None:
                    spent += size
                if not (fail_bad_list[draw + 1] if bad
                        else fail_good_list[draw + 1]):
                    success = True
                    break
                if attempts >= max_attempts:
                    break
                if budget is not None and spent + size > budget:
                    denied_retries += 1
                    break
                draw += 3
            bad_list[element] = bad
            out_attempts[i] = attempts
            out_success[i] = success
            cursor += 3 * attempts - 1
        attempts_arr = np.asarray(out_attempts, dtype=np.int64)
        success_arr = np.asarray(out_success, dtype=bool)
        offsets_arr = np.asarray(out_offsets, dtype=np.int64)
        consumed_arr = np.where(attempts_arr > 0,
                                3 * attempts_arr - 1, 0)
        final_bad = np.asarray(bad_list, dtype=bool)

    # Rewind the oversized pool draw, then advance by exactly what
    # the reference channel consumed.
    rng.bit_generator.state = state
    if cursor:
        # Data-dependent on purpose: re-advances the rewound stream
        # by exactly the reference channel's consumption, so this
        # branch *restores* draw parity rather than breaking it.
        rng.random(cursor)  # freshlint: disable=FL013

    trace: list[tuple[float, int, str]] | None = None
    if record_trace:
        trace = _build_trace(
            sync_times, sync_elements, attempts_arr, success_arr,
            offsets_arr, pool, failure_outcome=failure_outcome,
            retry_policy=retry_policy, draw_stride=3)

    return FaultResolution(
        attempts=attempts_arr, success=success_arr,
        denied=attempts_arr == 0, offsets=offsets_arr,
        consumed=consumed_arr, denied_retries=denied_retries,
        trace=trace), final_bad


# seedflow: pair=repro.sim.simulation.Simulation.run
def replay_fastpath_faulted(catalog: Catalog, frequencies: np.ndarray,
                            times: np.ndarray, elements: np.ndarray,
                            kinds: np.ndarray, *, horizon: float,
                            period_length: float, n_periods: float,
                            failure_probability: float,
                            failure_outcome: PollOutcome,
                            rng: np.random.Generator,
                            retry_policy: RetryPolicy | None = None,
                            bandwidth_budget: float | None = None,
                            fault_time_offset: float = 0.0,
                            record_fault_trace: bool = False
                            ) -> SimulationResult:
    """Replay a tape under stateless i.i.d. per-attempt loss.

    Resolves every scheduled sync's fate with
    :func:`resolve_iid_faults`, then replays the surviving tape —
    all updates and accesses plus the *successful* syncs — through
    the fault-free segment kernel.  Bit-identical to the reference
    loop with a :class:`~repro.faults.channel.SyncChannel`, including
    attempt/failure accounting, the fault trace and the telemetry
    period series.

    Args:
        catalog: The simulated workload.
        frequencies: Per-element sync frequencies, in syncs/period.
        times: Merged event times, globally time-ordered.
        elements: Element id per merged event.
        kinds: :class:`~repro.sim.events.EventKind` per merged event.
        horizon: Total simulated clock time.
        period_length: Clock length of one sync period.
        n_periods: Periods simulated (may be fractional).
        failure_probability: Per-attempt loss probability in [0, 1].
        failure_outcome: Outcome reported on a failed attempt.
        rng: The fault generator (shared or dedicated).
        retry_policy: Backoff policy, or None to disable retries.
        bandwidth_budget: Per-period attempt budget B in size units,
            or None to disable the ledger.
        fault_time_offset: Added to event times on the fault clock,
            in clock units (whole periods).
        record_fault_trace: Whether to carry the per-attempt trace.

    Returns:
        A :class:`SimulationResult` bit-identical to the reference
        loop's for the same tape and fault stream.
    """
    sizes = np.asarray(catalog.sizes, dtype=float)
    sync_positions = np.flatnonzero(kinds == int(EventKind.SYNC))
    sync_elements = elements[sync_positions]
    sync_local_times = times[sync_positions]

    resolution = resolve_iid_faults(
        sync_local_times + fault_time_offset, sync_elements, sizes,
        failure_probability=failure_probability,
        failure_outcome=failure_outcome, retry_policy=retry_policy,
        bandwidth_budget=bandwidth_budget,
        period_length=period_length, rng=rng,
        record_trace=record_fault_trace)

    return _assemble_faulted_result(
        catalog, frequencies, times, elements, kinds,
        horizon=horizon, period_length=period_length,
        n_periods=n_periods, sync_positions=sync_positions,
        sync_elements=sync_elements,
        sync_local_times=sync_local_times, resolution=resolution,
        failure_outcome=failure_outcome,
        fault_time_offset=fault_time_offset,
        record_fault_trace=record_fault_trace,
        engine="fastpath_faulted")


# seedflow: pair=repro.sim.simulation.Simulation.run
def replay_fastpath_ge(catalog: Catalog, frequencies: np.ndarray,
                       times: np.ndarray, elements: np.ndarray,
                       kinds: np.ndarray, *, horizon: float,
                       period_length: float, n_periods: float,
                       model: GilbertElliottFaultModel,
                       rng: np.random.Generator,
                       retry_policy: RetryPolicy | None = None,
                       bandwidth_budget: float | None = None,
                       fault_time_offset: float = 0.0,
                       record_fault_trace: bool = False
                       ) -> SimulationResult:
    """Replay a tape under a single Gilbert–Elliott burst-loss plan.

    Reads the model's per-element chain state, resolves every
    scheduled sync with :func:`resolve_ge_faults`, commits the final
    chain state back into the model (so consecutive runs sharing one
    plan object thread the hidden state exactly like the reference
    channel), then replays the surviving tape through the fault-free
    segment kernel.  Bit-identical to the reference loop, including
    attempt/failure accounting, the fault trace, the telemetry
    period series and the post-run fault-rng stream position.

    Args:
        catalog: The simulated workload.
        frequencies: Per-element sync frequencies, in syncs/period.
        times: Merged event times, globally time-ordered.
        elements: Element id per merged event.
        kinds: :class:`~repro.sim.events.EventKind` per merged event.
        horizon: Total simulated clock time.
        period_length: Clock length of one sync period.
        n_periods: Periods simulated (may be fractional).
        model: The plan's single Gilbert–Elliott model (from
            :meth:`~repro.faults.model.FaultPlan.ge_profile`); its
            chain state is read before and committed after the run.
        rng: The fault generator (shared or dedicated).
        retry_policy: Backoff policy, or None to disable retries.
        bandwidth_budget: Per-period attempt budget B in size units,
            or None to disable the ledger.
        fault_time_offset: Added to event times on the fault clock,
            in clock units (whole periods).
        record_fault_trace: Whether to carry the per-attempt trace.

    Returns:
        A :class:`SimulationResult` bit-identical to the reference
        loop's for the same tape and fault stream.
    """
    sizes = np.asarray(catalog.sizes, dtype=float)
    sync_positions = np.flatnonzero(kinds == int(EventKind.SYNC))
    sync_elements = elements[sync_positions]
    sync_local_times = times[sync_positions]

    resolution, final_bad = resolve_ge_faults(
        sync_local_times + fault_time_offset, sync_elements, sizes,
        p_good_to_bad=model.p_good_to_bad,
        p_bad_to_good=model.p_bad_to_good,
        loss_good=model.loss_good, loss_bad=model.loss_bad,
        failure_outcome=model.failure_outcome,
        initial_bad=model.chain_states(catalog.n_elements),
        retry_policy=retry_policy,
        bandwidth_budget=bandwidth_budget,
        period_length=period_length, rng=rng,
        record_trace=record_fault_trace)
    model.set_chain_states(final_bad)

    return _assemble_faulted_result(
        catalog, frequencies, times, elements, kinds,
        horizon=horizon, period_length=period_length,
        n_periods=n_periods, sync_positions=sync_positions,
        sync_elements=sync_elements,
        sync_local_times=sync_local_times, resolution=resolution,
        failure_outcome=model.failure_outcome,
        fault_time_offset=fault_time_offset,
        record_fault_trace=record_fault_trace,
        engine="fastpath_ge")


def _assemble_faulted_result(catalog: Catalog,
                             frequencies: np.ndarray,
                             times: np.ndarray, elements: np.ndarray,
                             kinds: np.ndarray, *, horizon: float,
                             period_length: float, n_periods: float,
                             sync_positions: np.ndarray,
                             sync_elements: np.ndarray,
                             sync_local_times: np.ndarray,
                             resolution: FaultResolution,
                             failure_outcome: PollOutcome,
                             fault_time_offset: float,
                             record_fault_trace: bool,
                             engine: str) -> SimulationResult:
    """Replay the surviving tape and assemble the faulted result.

    The post-resolution half shared by :func:`replay_fastpath_faulted`
    and :func:`replay_fastpath_ge`: drop failed syncs, run the
    fault-free segment kernel, fold the channel-equivalent accounting
    and emit the telemetry series.  ``engine`` names the dispatching
    kernel for the ``sim.engine.*`` counters.
    """
    n_elements = catalog.n_elements
    sizes = np.asarray(catalog.sizes, dtype=float)
    keep = np.ones(times.shape[0], dtype=bool)
    keep[sync_positions[~resolution.success]] = False
    # One index gather instead of repeated boolean-mask scans: the
    # kept view feeds the replay, the period series and the ledger.
    kept = np.flatnonzero(keep)
    times_kept = times[kept]
    elements_kept = elements[kept]
    kinds_kept = kinds[kept]
    replay = _replay_tape(n_elements, sizes, times_kept,
                          elements_kept, kinds_kept,
                          horizon=horizon)

    accounting = _FaultAccounting.from_resolution(
        resolution, sync_elements, sizes, n_elements)
    p = catalog.access_probabilities
    perceived_by_accesses = (
        replay.fresh_accesses / replay.n_accesses
        if replay.n_accesses
        else float(p @ replay.element_freshness))

    if obs.telemetry_enabled():
        _emit_fault_counters(accounting, failure_outcome)
        n_buckets = max(int(np.ceil(n_periods)) - 1, 0) + 1
        sync_buckets = (sync_local_times
                        / period_length).astype(np.int64)
        failed_per_period = np.bincount(
            sync_buckets,
            weights=(resolution.attempts - resolution.success),
            minlength=n_buckets).astype(np.int64)
        retries_per_period = np.bincount(
            sync_buckets,
            weights=(resolution.attempts
                     - (resolution.attempts > 0)),
            minlength=n_buckets).astype(np.int64)
        _emit_period_series(
            times_kept, elements_kept, kinds_kept, sizes,
            replay.fresh_before_global, replay.run_start_global,
            replay.becomes_fresh_global,
            n_elements, period_length=period_length,
            n_periods=n_periods, planned=float(sizes @ frequencies),
            failed_per_period=failed_per_period,
            retries_per_period=retries_per_period)
        _emit_monitor_close(replay.element_freshness,
                            replay.element_age, replay.n_accesses,
                            replay.fresh_accesses, horizon)
        _emit_ledger(times_kept, elements_kept, kinds_kept,
                     replay.run_start_global,
                     time_offset=fault_time_offset)
        obs.counter_add("sim.runs")
        obs.counter_add(f"sim.{engine}_runs")
        obs.counter_add(f"sim.engine.{engine}")
        obs.counter_add("sim.syncs", replay.n_syncs)
        obs.counter_add("sim.useful_syncs", replay.useful_syncs)
        obs.counter_add("sim.updates", replay.n_updates)
        obs.counter_add("sim.accesses", replay.n_accesses)
        obs.gauge_set("sim.bandwidth_used", replay.bandwidth_used)
        obs.gauge_set("sim.monitored_perceived_freshness",
                      float(perceived_by_accesses))
        obs.gauge_set("sim.monitored_general_freshness",
                      float(replay.element_freshness.mean()))
        obs.gauge_set("sim.attempted_bandwidth",
                      accounting.attempted_bandwidth)
        obs.gauge_set(
            "sim.poll_failure_fraction",
            (accounting.failed_polls / accounting.attempted_polls
             if accounting.attempted_polls else 0.0))

    return SimulationResult(
        catalog=catalog,
        frequencies=frequencies,
        horizon=horizon,
        period_length=period_length,
        n_updates=replay.n_updates,
        n_syncs=replay.n_syncs,
        n_accesses=replay.n_accesses,
        useful_syncs=replay.useful_syncs,
        bandwidth_used=replay.bandwidth_used,
        monitored_perceived_freshness=float(perceived_by_accesses),
        monitored_time_perceived=float(p @ replay.element_freshness),
        monitored_general_freshness=float(
            replay.element_freshness.mean()),
        element_time_freshness=replay.element_freshness,
        element_time_age=replay.element_age,
        monitored_perceived_age=float(p @ replay.element_age),
        access_counts=replay.access_counts,
        poll_counts=replay.poll_counts,
        changed_poll_counts=replay.changed_poll_counts,
        attempted_polls=accounting.attempted_polls,
        failed_polls=accounting.failed_polls,
        unreachable_polls=0,
        retries=accounting.retries,
        breaker_skips=0,
        denied_polls=accounting.denied_polls,
        attempted_bandwidth=accounting.attempted_bandwidth,
        attempted_poll_counts=accounting.attempted_poll_counts,
        failed_poll_counts=accounting.failed_poll_counts,
        unreachable_poll_counts=np.zeros(n_elements, dtype=np.int64),
        unreachable_elements=None,
        fault_trace=(tuple(resolution.trace)
                     if record_fault_trace
                     and resolution.trace is not None else None),
    )


@dataclass
class _FaultAccounting:
    """Channel-equivalent attempt/failure accounting for one tape."""

    attempted_polls: int
    failed_polls: int
    retries: int
    denied_polls: int
    denied_retries: int
    failed_syncs: int
    attempted_bandwidth: float
    attempted_poll_counts: np.ndarray
    failed_poll_counts: np.ndarray

    @classmethod
    def from_resolution(cls, resolution: FaultResolution,
                        sync_elements: np.ndarray, sizes: np.ndarray,
                        n_elements: int) -> "_FaultAccounting":
        attempts = resolution.attempts
        attempted_polls = int(attempts.sum())
        n_success = int(np.count_nonzero(resolution.success))
        made = int(np.count_nonzero(attempts))
        denied_polls = int(np.count_nonzero(resolution.denied))
        # Every attempt burns its element's size; reproduce the
        # channel's sequential += with a flat per-attempt fold.
        attempt_sizes = np.repeat(sizes[sync_elements], attempts)
        attempted_bandwidth = float(np.bincount(
            np.zeros(attempt_sizes.shape[0], dtype=np.intp),
            weights=attempt_sizes, minlength=1)[0])
        attempted_poll_counts = np.bincount(
            sync_elements, weights=attempts,
            minlength=n_elements).astype(np.int64)
        failed_poll_counts = np.bincount(
            sync_elements, weights=attempts - resolution.success,
            minlength=n_elements).astype(np.int64)
        return cls(
            attempted_polls=attempted_polls,
            failed_polls=attempted_polls - n_success,
            retries=attempted_polls - made,
            denied_polls=denied_polls,
            denied_retries=resolution.denied_retries,
            failed_syncs=made - n_success,
            attempted_bandwidth=attempted_bandwidth,
            attempted_poll_counts=attempted_poll_counts,
            failed_poll_counts=failed_poll_counts,
        )


def _emit_fault_counters(accounting: _FaultAccounting,
                         failure_outcome: PollOutcome) -> None:
    """Emit the ``faults.*`` counter totals the channel would have.

    The reference channel bumps each counter once per attempt; the
    aggregated adds land on the same totals.  Zero totals are skipped
    so counters that never fired stay absent, as in the reference.
    """
    if accounting.failed_polls:
        obs.counter_add(f"faults.{failure_outcome.value}",
                        accounting.failed_polls)
    if accounting.retries:
        obs.counter_add("faults.retries", accounting.retries)
    if accounting.denied_polls:
        obs.counter_add("faults.denied_polls",
                        accounting.denied_polls)
    if accounting.denied_retries:
        obs.counter_add("faults.denied_retries",
                        accounting.denied_retries)
    if accounting.failed_syncs:
        obs.counter_add("faults.failed_syncs",
                        accounting.failed_syncs)


def _emit_monitor_close(element_freshness: np.ndarray,
                        element_age: np.ndarray, n_accesses: int,
                        fresh_accesses: int, horizon: float) -> None:
    """Emit the monitor's close-time gauges and event."""
    obs.gauge_set("monitor.mean_time_freshness",
                  float(element_freshness.mean()))
    obs.gauge_set("monitor.mean_time_age",
                  float(element_age.mean()))
    obs.event("monitor.close", horizon=horizon,
              accesses=n_accesses,
              fresh_accesses=fresh_accesses,
              fresh_fraction=(fresh_accesses / n_accesses
                              if n_accesses else 1.0))


def _fold_ledger_bulk(fold, elements: np.ndarray,
                      times: np.ndarray) -> None:
    """Fold one kind of ledger event per element through the cap.

    Replicates :func:`repro.obs.registry.element_label` in bulk —
    indices at or past the cap share the ``"overflow"`` bucket — then
    reduces each bucket to (latest time, event count) before making
    at most ``cap + 1`` scalar ``fold`` calls.  Because ledger folds
    are order-independent (max timestamps, summed counts), this lands
    on the exact ledger the reference loop's per-event scalar calls
    build.
    """
    if elements.shape[0] == 0:
        return
    elements = elements.astype(np.int64, copy=False)
    cap = obs.max_element_labels()
    buckets = np.minimum(elements, cap) if cap > 0 else elements
    n_buckets = int(buckets.max()) + 1
    counts = np.bincount(buckets, minlength=n_buckets)
    latest = np.full(n_buckets, -np.inf)
    np.maximum.at(latest, buckets, times)
    for index in np.flatnonzero(counts):
        label: int | str = ("overflow" if cap > 0 and index >= cap
                            else int(index))
        fold(label, float(latest[index]), int(counts[index]))


def _emit_ledger(times: np.ndarray, elements: np.ndarray,
                 kinds: np.ndarray,
                 run_start_global: np.ndarray | None, *,
                 time_offset: float = 0.0) -> None:
    """Feed the freshness ledger from a (kept) replay tape.

    Mirrors the reference loop's per-event hooks: every sync still on
    the tape is a *successful* refresh (the faulted paths drop failed
    syncs before replay), and every run-opening update
    (``run_start``) opens a stale run.  Times shift by
    ``time_offset`` onto the global fault clock, matching the
    ``time + fault_time_offset`` stamps the reference loop records.
    """
    if times.shape[0] == 0 or run_start_global is None:
        return
    ledger = obs.get_registry().ledger
    sync_mask = kinds == int(EventKind.SYNC)
    _fold_ledger_bulk(ledger.record_refresh, elements[sync_mask],
                      times[sync_mask] + time_offset)
    _fold_ledger_bulk(ledger.record_stale,
                      elements[run_start_global],
                      times[run_start_global] + time_offset)


def _emit_period_series(times: np.ndarray, elements: np.ndarray,
                        kinds: np.ndarray, sizes: np.ndarray,
                        fresh_before_global: np.ndarray | None,
                        run_start_global: np.ndarray | None,
                        becomes_fresh_global: np.ndarray | None,
                        n_elements: int, *,
                        period_length: float, n_periods: float,
                        planned: float,
                        failed_per_period: np.ndarray | None = None,
                        retries_per_period: np.ndarray | None = None,
                        first_period: int = 0,
                        initial_fresh: int | None = None,
                        ) -> None:
    """Emit the per-period ``"sim.period"`` telemetry series.

    Reproduces the reference loop's :class:`_PeriodTracker` output:
    one event per completed (or final partial) period with the same
    integer counts, the same sequentially folded bandwidth, and the
    mirror's instantaneous mean freshness at each period boundary.
    ``failed_per_period`` / ``retries_per_period`` carry the faulted
    path's per-period attempt accounting (zeros when absent).

    The streaming engine emits one slab at a time: ``first_period``
    offsets the emitted period labels (the slab's events carry global
    times), ``n_periods`` then counts the *slab's* periods, and
    ``initial_fresh`` is the instantaneous fresh-copy count entering
    the slab (defaults to ``n_elements`` — everything fresh at t=0 —
    which also covers the one-shot callers).
    """
    last_period = max(int(np.ceil(n_periods)) - 1, 0)
    n_buckets = last_period + 1
    n_events = int(times.shape[0])
    if initial_fresh is None:
        initial_fresh = n_elements

    if n_events:
        assert (fresh_before_global is not None
                and run_start_global is not None
                and becomes_fresh_global is not None)
        period_index = ((times / period_length).astype(np.int64)
                        - first_period)
        update_kind = int(EventKind.UPDATE)
        sync_kind = int(EventKind.SYNC)
        global_update = kinds == update_kind
        global_sync = kinds == sync_kind
        global_access = ~global_update & ~global_sync

        def per_period(mask: np.ndarray) -> np.ndarray:
            return np.bincount(period_index[mask], minlength=n_buckets)

        syncs_per_period = per_period(global_sync)
        updates_per_period = per_period(global_update)
        accesses_per_period = per_period(global_access)
        fresh_accesses_per_period = per_period(
            global_access & fresh_before_global)
        bandwidth_per_period = np.bincount(
            period_index[global_sync],
            weights=sizes[elements[global_sync]], minlength=n_buckets)

        # Instantaneous fresh-copy count after each event: −1 when a
        # run-opening update stales a copy, +1 when a sync refreshes
        # a stale one.
        delta = np.zeros(n_events, dtype=np.int64)
        delta[run_start_global] = -1
        delta[becomes_fresh_global] = 1
        fresh_count = initial_fresh + np.cumsum(delta)
        boundary = np.searchsorted(period_index,
                                   np.arange(n_buckets), side="right") - 1
        mean_freshness = np.where(
            boundary >= 0,
            fresh_count[np.maximum(boundary, 0)], initial_fresh
        ) / n_elements
    else:
        zeros = np.zeros(n_buckets, dtype=np.int64)
        syncs_per_period = updates_per_period = zeros
        accesses_per_period = fresh_accesses_per_period = zeros
        bandwidth_per_period = np.zeros(n_buckets)
        mean_freshness = np.full(n_buckets, initial_fresh / n_elements)

    if failed_per_period is None:
        failed_per_period = np.zeros(n_buckets, dtype=np.int64)
    if retries_per_period is None:
        retries_per_period = np.zeros(n_buckets, dtype=np.int64)

    for period in range(n_buckets):
        accesses = int(accesses_per_period[period])
        fresh = int(fresh_accesses_per_period[period])
        bandwidth = float(bandwidth_per_period[period])
        utilization = bandwidth / planned if planned else 0.0
        obs.event(
            "sim.period",
            period=obs.element_label(first_period + period),
            syncs=int(syncs_per_period[period]),
            bandwidth=bandwidth,
            budget_utilization=utilization,
            updates=int(updates_per_period[period]),
            accesses=accesses,
            fresh_fraction=(fresh / accesses if accesses else 1.0),
            mean_freshness=float(mean_freshness[period]),
            failed_polls=int(failed_per_period[period]),
            retries=int(retries_per_period[period]),
        )
        obs.counter_add("sim.periods")
        obs.gauge_set("sim.budget_utilization", utilization)


class ReplayArena:
    """Reusable scratch buffers for window-batched replays.

    The batched adaptive manager calls :func:`replay_window_tapes`
    once per replan window; each call concatenates the window's
    per-period tapes into contiguous working arrays.  An arena keeps
    one geometrically grown buffer per named slot and hands out
    prefix views, so after warm-up a steady-state window performs
    zero concatenation allocations — the "one arena allocation per
    replay" memory discipline that keeps 10⁶-element adapt runs
    from churning the allocator.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def take(self, name: str, size: int, dtype: Any) -> np.ndarray:
        """Return a ``size``-long view of the named scratch buffer.

        Grows the backing buffer geometrically (2×) when ``size``
        outruns it, and reallocates when the requested dtype changes;
        contents are uninitialized — callers must overwrite the view.
        """
        wanted = np.dtype(dtype)
        buffer = self._buffers.get(name)
        if (buffer is None or buffer.dtype != wanted
                or buffer.shape[0] < size):
            capacity = max(size, 1)
            if buffer is not None and buffer.dtype == wanted:
                capacity = max(capacity, 2 * buffer.shape[0])
            buffer = np.empty(capacity, dtype=wanted)
            self._buffers[name] = buffer
        return buffer[:size]

    def nbytes(self) -> int:
        """Total bytes currently held across all slots."""
        return sum(buffer.nbytes
                   for buffer in self._buffers.values())


def resolve_tape_faults(tape: tuple[np.ndarray, np.ndarray,
                                    np.ndarray],
                        sizes: np.ndarray, *, fault_args: dict,
                        period_length: float,
                        fault_clock_offset: float,
                        initial_bad: np.ndarray | None = None
                        ) -> tuple[FaultResolution,
                                   np.ndarray | None]:
    """Resolve one period tape's faults ahead of a batched replay.

    The batched manager interleaves fault resolution with tape
    construction — resolve period ``j`` right after building its
    tape — so shared-fault-rng plans consume workload and fault
    draws in exactly the per-period reference order.  Dispatches on
    ``fault_args["kind"]`` (``"iid"`` or ``"ge"``).

    Gilbert–Elliott plans are resolved against an explicit
    ``initial_bad`` chain state and the model object is *not*
    mutated: the caller threads the returned state into the next
    period's call and commits it to the model only once the window
    is final (mid-window rollbacks then just drop the tail states).

    Args:
        tape: One ``(times, elements, kinds)`` merged period tape
            with local times in ``[0, period_length)``.
        sizes: Per-element sizes, in bandwidth units.
        fault_args: Dispatch arguments from
            :meth:`repro.sim.simulation.Simulation.fault_kernel_args`.
        period_length: Clock length of one sync period.
        fault_clock_offset: Added to event times on the fault clock,
            in clock units (whole periods).
        initial_bad: Gilbert–Elliott chain state entering the
            period, or None to read it from the plan model
            (ignored for i.i.d. plans).

    Returns:
        ``(resolution, final_bad)`` where ``final_bad`` is the chain
        state after the period for Gilbert–Elliott plans and None
        for i.i.d. plans.
    """
    times, elements, kinds = tape
    sync_positions = np.flatnonzero(kinds == int(EventKind.SYNC))
    sync_elements = elements[sync_positions]
    sync_times = times[sync_positions] + fault_clock_offset
    if fault_args.get("kind", "iid") == "ge":
        model = fault_args["model"]
        if initial_bad is None:
            initial_bad = model.chain_states(sizes.shape[0])
        return resolve_ge_faults(
            sync_times, sync_elements, sizes,
            p_good_to_bad=model.p_good_to_bad,
            p_bad_to_good=model.p_bad_to_good,
            loss_good=model.loss_good, loss_bad=model.loss_bad,
            failure_outcome=model.failure_outcome,
            initial_bad=initial_bad,
            retry_policy=fault_args["retry_policy"],
            bandwidth_budget=fault_args["bandwidth_budget"],
            period_length=period_length, rng=fault_args["rng"],
            record_trace=False)
    resolution = resolve_iid_faults(
        sync_times, sync_elements, sizes,
        failure_probability=fault_args["failure_probability"],
        failure_outcome=fault_args["failure_outcome"],
        retry_policy=fault_args["retry_policy"],
        bandwidth_budget=fault_args["bandwidth_budget"],
        period_length=period_length, rng=fault_args["rng"],
        record_trace=False)
    return resolution, None


def replay_window_tapes(catalog: Catalog, frequencies: np.ndarray,
                        tapes: list[tuple[np.ndarray, np.ndarray,
                                          np.ndarray]], *,
                        period_length: float,
                        first_global_period: int,
                        fault_args: dict | None = None,
                        resolutions: (list[FaultResolution]
                                      | None) = None,
                        arena: ReplayArena | None = None
                        ) -> tuple[list[SimulationResult], list[int]]:
    """Replay several consecutive one-period tapes in one kernel call.

    The window-batched adaptive manager generates one event tape per
    period (preserving the per-period draw order, so common-random-
    number seeds line up with per-period runs), then hands the whole
    replan window here.  Each period's elements are *tiled* — period
    ``j`` maps element ``e`` to segment id ``e + j·n`` — so one
    segmented replay over ``W·n`` virtual elements reproduces ``W``
    independent single-period replays, bit for bit: every per-element
    fold sees exactly the events, in exactly the order, the
    per-period kernel would have seen.

    Args:
        catalog: The simulated workload (all periods share it).
        frequencies: Per-element sync frequencies, in syncs/period
            (constant within a replan window by construction).
        tapes: One ``(times, elements, kinds)`` merged tape per
            period, with *local* times in ``[0, period_length)``.
        period_length: Clock length of one sync period.
        first_global_period: 1-based global index of the window's
            first period; period ``j`` of the window runs on the
            fault clock at offset
            ``(first_global_period + j − 1) · period_length``.
        fault_args: The dispatch arguments from
            :meth:`repro.sim.simulation.Simulation.fault_kernel_args`
            (``kind`` ``"iid"`` or ``"ge"`` plus failure model,
            retry policy, budget, rng), or None for a fault-free
            window.  Unless ``resolutions`` is supplied, the fault
            rng must be *dedicated* (not shared with the workload
            rng): per-period runs interleave workload and fault draws
            on a shared stream, while a batched window draws all
            tapes before any faults — only a separate fault generator
            keeps both orders bit-identical.
        resolutions: Pre-computed per-period fault resolutions from
            :func:`resolve_tape_faults`, one per tape, produced by
            interleaving resolution with tape construction.  With
            these the shared-stream restriction above disappears —
            the draws already happened in per-period order — and
            this function consumes no RNG.  Requires ``fault_args``
            for the accounting metadata (outcome, budget).
        arena: Scratch-buffer :class:`ReplayArena` reused across
            windows, or None to allocate per call.

    Returns:
        ``(results, consumed)`` — one :class:`SimulationResult` per
        period, bit-identical to running each period separately, and
        the number of fault-rng draws consumed per period (all zeros
        when fault-free), which the manager uses to rewind the fault
        stream when a mid-window replan trigger forces a rollback.
    """
    n_elements = catalog.n_elements
    n_windows = len(tapes)
    sizes = np.asarray(catalog.sizes, dtype=float)
    planned = float(sizes @ frequencies)
    sync_kind = int(EventKind.SYNC)
    update_kind = int(EventKind.UPDATE)

    counts = np.array([tape[0].shape[0] for tape in tapes],
                      dtype=np.int64)
    bounds = np.concatenate([np.zeros(1, dtype=np.int64),
                             np.cumsum(counts)])
    n_events = int(bounds[-1])

    def gather(name: str, parts: list[np.ndarray],
               dtype: Any) -> np.ndarray:
        """Concatenate per-period arrays into one arena-backed run."""
        cast = [np.asarray(part, dtype=dtype) for part in parts]
        if arena is None:
            return np.concatenate(cast)
        out = arena.take(name, n_events, dtype)
        np.concatenate(cast, out=out)
        return out

    times = gather("times", [tape[0] for tape in tapes], np.float64)
    elements_local = gather("elements", [tape[1] for tape in tapes],
                            np.int64)
    kinds = gather("kinds", [tape[2] for tape in tapes], np.int64)
    if arena is None:
        tile_of_event = np.repeat(
            np.arange(n_windows, dtype=np.int64), counts)
        elements_tiled = (elements_local
                          + tile_of_event * n_elements)
        tiled_sizes = np.tile(sizes, n_windows)
        keep = np.ones(n_events, dtype=bool)
    else:
        tile_of_event = arena.take("tiles", n_events, np.int64)
        for j in range(n_windows):
            tile_of_event[int(bounds[j]):int(bounds[j + 1])] = j
        elements_tiled = arena.take("elements_tiled", n_events,
                                    np.int64)
        np.multiply(tile_of_event, n_elements, out=elements_tiled)
        elements_tiled += elements_local
        tiled_sizes = arena.take("tiled_sizes",
                                 n_windows * n_elements, np.float64)
        tiled_sizes.reshape(n_windows, n_elements)[:] = sizes
        keep = arena.take("keep", n_events, bool)
        keep[:] = True

    sync_positions = np.flatnonzero(kinds == sync_kind)
    sync_elements = elements_local[sync_positions]
    sync_tiles = tile_of_event[sync_positions]
    sync_bounds = np.searchsorted(sync_tiles,
                                  np.arange(n_windows + 1))

    fault_kind = (fault_args.get("kind", "iid")
                  if fault_args is not None else None)
    resolution: FaultResolution | None = None
    consumed = [0] * n_windows
    if resolutions is not None:
        if fault_args is None:
            raise SimulationError(
                "replay_window_tapes: resolutions requires "
                "fault_args for the accounting metadata")
        if len(resolutions) != n_windows:
            raise SimulationError(
                "replay_window_tapes: expected one resolution per "
                f"tape, got {len(resolutions)} for {n_windows}")
        resolution = FaultResolution(
            attempts=np.concatenate(
                [r.attempts for r in resolutions]),
            success=np.concatenate(
                [r.success for r in resolutions]),
            denied=np.concatenate([r.denied for r in resolutions]),
            offsets=np.concatenate(
                [r.offsets for r in resolutions]),
            consumed=np.concatenate(
                [r.consumed for r in resolutions]),
            denied_retries=sum(r.denied_retries
                               for r in resolutions),
            trace=None)
        if resolution.success.shape[0] != sync_positions.shape[0]:
            raise SimulationError(
                "replay_window_tapes: resolutions cover "
                f"{resolution.success.shape[0]} syncs but the "
                f"window schedules {sync_positions.shape[0]}")
        consumed = [int(r.consumed.sum()) for r in resolutions]
    elif fault_args is not None:
        fault_offsets = ((first_global_period - 1 + sync_tiles)
                         * period_length)
        if fault_kind == "ge":
            model = fault_args["model"]
            resolution, final_bad = resolve_ge_faults(
                times[sync_positions] + fault_offsets,
                sync_elements, sizes,
                p_good_to_bad=model.p_good_to_bad,
                p_bad_to_good=model.p_bad_to_good,
                loss_good=model.loss_good,
                loss_bad=model.loss_bad,
                failure_outcome=model.failure_outcome,
                initial_bad=model.chain_states(n_elements),
                retry_policy=fault_args["retry_policy"],
                bandwidth_budget=fault_args["bandwidth_budget"],
                period_length=period_length,
                rng=fault_args["rng"], record_trace=False)
            model.set_chain_states(final_bad)
        else:
            resolution = resolve_iid_faults(
                times[sync_positions] + fault_offsets,
                sync_elements, sizes,
                failure_probability=fault_args[
                    "failure_probability"],
                failure_outcome=fault_args["failure_outcome"],
                retry_policy=fault_args["retry_policy"],
                bandwidth_budget=fault_args["bandwidth_budget"],
                period_length=period_length, rng=fault_args["rng"],
                record_trace=False)
    if resolution is not None:
        keep[sync_positions[~resolution.success]] = False
        if resolutions is None:
            consumed = np.bincount(
                sync_tiles, weights=resolution.consumed,
                minlength=n_windows).astype(np.int64).tolist()
    engine_label = ("fastpath" if resolution is None
                    else "fastpath_ge" if fault_kind == "ge"
                    else "fastpath_faulted")

    # One index gather instead of four boolean-mask scans.
    kept = np.flatnonzero(keep)
    times_f = times[kept]
    elements_f = elements_local[kept]
    kinds_f = kinds[kept]
    replay = _replay_tape(n_windows * n_elements, tiled_sizes,
                          times_f, elements_tiled[kept], kinds_f,
                          horizon=period_length)
    filtered_bounds = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(keep)])[bounds]

    empty_flags = np.zeros(0, dtype=bool)
    fresh_flags = (replay.fresh_before_global
                   if replay.fresh_before_global is not None
                   else empty_flags)
    run_start_flags = (replay.run_start_global
                       if replay.run_start_global is not None
                       else empty_flags)
    becomes_fresh_flags = (replay.becomes_fresh_global
                           if replay.becomes_fresh_global is not None
                           else empty_flags)
    changed_flags = (replay.changed_sync_global
                     if replay.changed_sync_global is not None
                     else empty_flags)

    telemetry_on = obs.telemetry_enabled()
    access_probabilities = catalog.access_probabilities
    do_contracts = contracts_enabled()
    granularity = float(sizes[frequencies > 0.0].sum())

    results: list[SimulationResult] = []
    for j in range(n_windows):
        event_slice = slice(int(filtered_bounds[j]),
                            int(filtered_bounds[j + 1]))
        element_slice = slice(j * n_elements, (j + 1) * n_elements)
        kinds_j = kinds_f[event_slice]
        elements_j = elements_f[event_slice]
        times_j = times_f[event_slice]
        is_update_j = kinds_j == update_kind
        is_sync_j = kinds_j == sync_kind
        is_access_j = ~is_update_j & ~is_sync_j
        n_updates_j = int(np.count_nonzero(is_update_j))
        n_syncs_j = int(np.count_nonzero(is_sync_j))
        n_accesses_j = int(np.count_nonzero(is_access_j))
        fresh_j = fresh_flags[event_slice]
        fresh_accesses_j = int(np.count_nonzero(
            is_access_j & fresh_j))
        useful_j = int(np.count_nonzero(changed_flags[event_slice]))
        sync_sizes_j = sizes[elements_j[is_sync_j]]
        bandwidth_j = float(np.bincount(
            np.zeros(sync_sizes_j.shape[0], dtype=np.intp),
            weights=sync_sizes_j, minlength=1)[0])

        freshness_j = replay.element_freshness[element_slice].copy()
        age_j = replay.element_age[element_slice].copy()
        perceived_by_accesses_j = (
            fresh_accesses_j / n_accesses_j if n_accesses_j
            else float(access_probabilities @ freshness_j))

        accounting: _FaultAccounting | None = None
        failed_per_period = None
        retries_per_period = None
        if resolution is not None:
            s0, s1 = int(sync_bounds[j]), int(sync_bounds[j + 1])
            attempts_j = resolution.attempts[s0:s1]
            window_resolution = FaultResolution(
                attempts=attempts_j,
                success=resolution.success[s0:s1],
                denied=resolution.denied[s0:s1],
                offsets=resolution.offsets[s0:s1],
                consumed=resolution.consumed[s0:s1],
                denied_retries=0, trace=None)
            accounting = _FaultAccounting.from_resolution(
                window_resolution, sync_elements[s0:s1], sizes,
                n_elements)
            if telemetry_on:
                failed_per_period = np.asarray([int(
                    (attempts_j - window_resolution.success).sum())],
                    dtype=np.int64)
                retries_per_period = np.asarray(
                    [int((attempts_j - (attempts_j > 0)).sum())],
                    dtype=np.int64)

        if telemetry_on:
            _emit_period_series(
                times_j, elements_j, kinds_j, sizes,
                fresh_j, run_start_flags[event_slice],
                becomes_fresh_flags[event_slice],
                n_elements, period_length=period_length,
                n_periods=1.0, planned=planned,
                failed_per_period=failed_per_period,
                retries_per_period=retries_per_period)
            _emit_monitor_close(freshness_j, age_j, n_accesses_j,
                                fresh_accesses_j, period_length)
            _emit_ledger(times_j, elements_j, kinds_j,
                         run_start_flags[event_slice],
                         time_offset=((first_global_period - 1 + j)
                                      * period_length))
            obs.counter_add("sim.runs")
            obs.counter_add(f"sim.{engine_label}_runs")
            obs.counter_add(f"sim.engine.{engine_label}")
            obs.counter_add("sim.syncs", n_syncs_j)
            obs.counter_add("sim.useful_syncs", useful_j)
            obs.counter_add("sim.updates", n_updates_j)
            obs.counter_add("sim.accesses", n_accesses_j)
            obs.gauge_set("sim.bandwidth_used", bandwidth_j)
            obs.gauge_set("sim.monitored_perceived_freshness",
                          float(perceived_by_accesses_j))
            obs.gauge_set("sim.monitored_general_freshness",
                          float(freshness_j.mean()))
            if accounting is not None:
                obs.gauge_set("sim.attempted_bandwidth",
                              accounting.attempted_bandwidth)
                obs.gauge_set(
                    "sim.poll_failure_fraction",
                    (accounting.failed_polls
                     / accounting.attempted_polls
                     if accounting.attempted_polls else 0.0))

        if do_contracts:
            check_sync_conservation(
                bandwidth_j, planned, 1.0, granularity,
                where="replay_window_tapes")
            if accounting is not None and \
                    fault_args is not None and \
                    fault_args["bandwidth_budget"] is not None:
                check_attempt_budget(
                    accounting.attempted_bandwidth,
                    fault_args["bandwidth_budget"], 1.0, granularity,
                    where="replay_window_tapes")

        results.append(SimulationResult(
            catalog=catalog,
            frequencies=frequencies,
            horizon=period_length,
            period_length=period_length,
            n_updates=n_updates_j,
            n_syncs=n_syncs_j,
            n_accesses=n_accesses_j,
            useful_syncs=useful_j,
            bandwidth_used=bandwidth_j,
            monitored_perceived_freshness=float(
                perceived_by_accesses_j),
            monitored_time_perceived=float(
                access_probabilities @ freshness_j),
            monitored_general_freshness=float(freshness_j.mean()),
            element_time_freshness=freshness_j,
            element_time_age=age_j,
            monitored_perceived_age=float(
                access_probabilities @ age_j),
            access_counts=replay.access_counts[element_slice].copy(),
            poll_counts=replay.poll_counts[element_slice].copy(),
            changed_poll_counts=replay.changed_poll_counts[
                element_slice].copy(),
            attempted_polls=(accounting.attempted_polls
                             if accounting is not None else n_syncs_j),
            failed_polls=(accounting.failed_polls
                          if accounting is not None else 0),
            unreachable_polls=0,
            retries=(accounting.retries
                     if accounting is not None else 0),
            breaker_skips=0,
            denied_polls=(accounting.denied_polls
                          if accounting is not None else 0),
            attempted_bandwidth=(accounting.attempted_bandwidth
                                 if accounting is not None
                                 else bandwidth_j),
            attempted_poll_counts=(accounting.attempted_poll_counts
                                   if accounting is not None
                                   else None),
            failed_poll_counts=(accounting.failed_poll_counts
                                if accounting is not None else None),
            unreachable_poll_counts=(
                np.zeros(n_elements, dtype=np.int64)
                if accounting is not None else None),
            unreachable_elements=None,
            fault_trace=None,
        ))

    if telemetry_on and resolution is not None:
        accounting_total = _FaultAccounting.from_resolution(
            resolution, sync_elements, sizes, n_elements)
        if fault_args is None:
            outcome = PollOutcome.ERROR
        elif fault_kind == "ge":
            outcome = fault_args["model"].failure_outcome
        else:
            outcome = fault_args["failure_outcome"]
        _emit_fault_counters(accounting_total, outcome)

    return results, consumed


@dataclass
class ReplayCarry:
    """Per-element copy state threaded across streaming slabs.

    Everything the one-shot kernel derives from "start of tape" lives
    here instead, so a slab kernel can pick up exactly where the
    previous slab stopped.  Integer fields are exact; the float
    accumulators (``fresh_time``, ``age_integral``,
    ``bandwidth_used``) are partial *left folds* in event order, which
    the next slab continues bit-exactly by prepending them to its own
    fold (see the module notes on ``np.bincount``).

    Attributes:
        fresh: Whether each copy is fresh after the last event seen.
        stale_since: Start time of each element's open stale run, in
            clock units (stale elements only; otherwise a stale but
            finite leftover that the kernel never reads).
        last_time: Time of each element's last event so far, in clock
            units (0 before any event).
        versions: Source updates seen per element so far.
        last_polled_version: Source version observed at each
            element's last successful poll (0 before any).
        fresh_time: Folded fresh clock time per element so far.
        age_integral: Folded age integral per element so far.
        poll_counts: Successful polls per element so far.
        changed_poll_counts: Polls that found a new version.
        access_counts: Accesses per element so far.
        n_updates: Update events so far, tape-wide.
        n_syncs: Successful sync events so far, tape-wide.
        n_accesses: Access events so far, tape-wide.
        useful_syncs: Syncs that found a new version, tape-wide.
        fresh_accesses: Accesses that saw fresh data, tape-wide.
        bandwidth_used: Folded sync bandwidth so far, in size units.
        fresh_count: Instantaneous fresh-copy count after the last
            event (the period telemetry series' running level).
    """

    fresh: np.ndarray
    stale_since: np.ndarray
    last_time: np.ndarray
    versions: np.ndarray
    last_polled_version: np.ndarray
    fresh_time: np.ndarray
    age_integral: np.ndarray
    poll_counts: np.ndarray
    changed_poll_counts: np.ndarray
    access_counts: np.ndarray
    n_updates: int
    n_syncs: int
    n_accesses: int
    useful_syncs: int
    fresh_accesses: int
    bandwidth_used: float
    fresh_count: int

    @classmethod
    def start(cls, n_elements: int) -> "ReplayCarry":
        """The start-of-tape state: every copy fresh and untouched."""
        return cls(
            fresh=np.ones(n_elements, dtype=bool),
            stale_since=np.zeros(n_elements),
            last_time=np.zeros(n_elements),
            versions=np.zeros(n_elements, dtype=np.int64),
            last_polled_version=np.zeros(n_elements, dtype=np.int64),
            fresh_time=np.zeros(n_elements),
            age_integral=np.zeros(n_elements),
            poll_counts=np.zeros(n_elements, dtype=np.int64),
            changed_poll_counts=np.zeros(n_elements, dtype=np.int64),
            access_counts=np.zeros(n_elements, dtype=np.int64),
            n_updates=0, n_syncs=0, n_accesses=0,
            useful_syncs=0, fresh_accesses=0,
            bandwidth_used=0.0, fresh_count=n_elements,
        )

    def nbytes(self) -> int:
        """Bytes held by the per-element carry arrays."""
        return sum(
            getattr(self, field).nbytes
            for field in ("fresh", "stale_since", "last_time",
                          "versions", "last_polled_version",
                          "fresh_time", "age_integral", "poll_counts",
                          "changed_poll_counts", "access_counts"))


def _fold_with_carry(carry_values: np.ndarray, elements: np.ndarray,
                     weights: np.ndarray, n_elements: int
                     ) -> np.ndarray:
    """Continue per-element left folds with one slab of weights.

    Prepends each element's carried accumulator as its bin's first
    weight, so the bincount's in-order per-bin fold computes
    ``((carry + w₁) + w₂) + …`` — exactly the value the one-shot fold
    over the concatenated tape would hold.
    """
    bins = np.concatenate([np.arange(n_elements, dtype=np.int64),
                           elements])
    return np.bincount(bins,
                       weights=np.concatenate([carry_values, weights]),
                       minlength=n_elements)


def _replay_tape_chunk(carry: ReplayCarry, sizes: np.ndarray,
                       times: np.ndarray, elements: np.ndarray,
                       kinds: np.ndarray
                       ) -> tuple[np.ndarray | None, np.ndarray | None,
                                  np.ndarray | None, np.ndarray | None]:
    """Fold one slab of a (kept) tape into the carry state.

    The slab variant of :func:`_replay_tape`: identical segment
    machinery and float operations, with every "start of tape"
    assumption replaced by the carried per-element state — the fresh
    flag where no in-slab state change precedes an event, the carried
    ``stale_since`` where no in-slab run start precedes it, the
    carried last event time at segment starts, and the carried
    version counters under the poll bookkeeping.  Folding slabs
    ``[0,a) [a,b) …`` of a tape through one carry is bit-identical to
    :func:`_replay_tape` over the whole tape.

    Args:
        carry: The cross-slab state; mutated in place.
        sizes: Per-element transfer sizes, in size units.
        times: Slab event times (global clock), time-ordered.
        elements: Element id per slab event.
        kinds: :class:`~repro.sim.events.EventKind` per slab event.

    Returns:
        ``(fresh_before, run_start, becomes_fresh, changed_sync)``
        flags in *tape* order for the telemetry series, or all None
        for an empty slab.
    """
    n_events = int(times.shape[0])
    if not n_events:
        return None, None, None, None
    if n_events >= np.iinfo(np.int32).max:
        raise SimulationError(
            f"slab of {n_events} events overflows int32 positions")
    n_elements = int(carry.fresh.shape[0])
    update_kind = int(EventKind.UPDATE)
    sync_kind = int(EventKind.SYNC)

    order = np.argsort(elements, kind="stable")
    element_of = elements[order]
    time_of = times[order]
    kind_of = kinds[order]
    positions = np.arange(n_events, dtype=np.int32)

    new_segment, segment_start_of = _segment_starts(element_of)
    segment_start_of = segment_start_of.astype(np.int32, copy=False)
    segment_start_positions = np.flatnonzero(new_segment)
    segment_end_positions = np.append(
        segment_start_positions[1:] - 1, n_events - 1)
    present = element_of[segment_start_positions]

    # Previous event time: within-slab shift, carried time at starts.
    previous_time = _shift_within_segment(time_of, new_segment, 0.0)
    previous_time[segment_start_positions] = carry.last_time[present]
    if (time_of < previous_time).any():
        raise SimulationError(
            "slab events precede the carried replay clock")
    elapsed = time_of - previous_time

    is_update = kind_of == update_kind
    is_sync = kind_of == sync_kind
    is_access = ~is_update & ~is_sync

    # Fresh flag before each event: last in-slab state change decides;
    # otherwise the carried flag.
    state_change_positions = np.where(is_update | is_sync,
                                      positions, -1)
    last_state_change = _last_position_at_or_before(
        state_change_positions, segment_start_of)
    previous_state_change = np.empty_like(last_state_change)
    previous_state_change[0] = -1
    previous_state_change[1:] = last_state_change[:-1]
    previous_state_change = np.where(
        previous_state_change >= segment_start_of,
        previous_state_change, -1)
    fresh_before = np.where(
        previous_state_change >= 0,
        kind_of[np.maximum(previous_state_change, 0)] == sync_kind,
        carry.fresh[element_of])

    # Stale-run starts: in-slab run start pins stale_since, otherwise
    # the carried run start (fresh elements read a leftover value the
    # increment mask discards, exactly like the one-shot kernel).
    run_start = is_update & fresh_before
    run_start_positions = np.where(run_start, positions, -1)
    since_position = _last_position_at_or_before(
        run_start_positions, segment_start_of)
    stale_since = np.where(
        since_position >= 0, time_of[np.maximum(since_position, 0)],
        carry.stale_since[element_of])

    end_offset = time_of - stale_since
    start_offset = previous_time - stale_since
    age_increment = 0.5 * (np.float_power(end_offset, 2.0)
                           - np.float_power(start_offset, 2.0))
    carry.fresh_time = _fold_with_carry(
        carry.fresh_time, element_of,
        np.where(fresh_before, elapsed, 0.0), n_elements)
    carry.age_integral = _fold_with_carry(
        carry.age_integral, element_of,
        np.where(fresh_before, 0.0, age_increment), n_elements)

    # Poll bookkeeping on absolute source versions: the carried update
    # count anchors in-slab cumulative counts, and a slab-opening poll
    # compares against the carried last-polled version.
    updates_so_far = np.cumsum(is_update, dtype=np.int64)
    updates_before = ((updates_so_far - is_update)
                      - (updates_so_far[segment_start_of]
                         - is_update[segment_start_of]))
    sync_positions = np.flatnonzero(is_sync)
    sync_elements = element_of[sync_positions]
    sync_versions = (updates_before[sync_positions]
                     + carry.versions[sync_elements])
    previous_versions = np.zeros_like(sync_versions)
    if sync_versions.shape[0]:
        previous_versions[1:] = sync_versions[:-1]
        first_poll = np.empty(sync_versions.shape[0], dtype=bool)
        first_poll[0] = True
        np.not_equal(sync_elements[1:], sync_elements[:-1],
                     out=first_poll[1:])
        previous_versions[first_poll] = carry.last_polled_version[
            sync_elements[first_poll]]
    changed = sync_versions > previous_versions

    # Final per-element state for the next slab (read the old carry
    # before overwriting it).
    final_state_change = last_state_change[segment_end_positions]
    carry_fresh_present = carry.fresh[present]
    final_fresh = np.where(
        final_state_change >= 0,
        kind_of[np.maximum(final_state_change, 0)] == sync_kind,
        carry_fresh_present)
    final_since = since_position[segment_end_positions]
    carry.stale_since[present] = np.where(
        final_since >= 0, time_of[np.maximum(final_since, 0)],
        carry.stale_since[present])
    carry.fresh[present] = final_fresh
    carry.last_time[present] = time_of[segment_end_positions]
    carry.versions += np.bincount(element_of[is_update],
                                  minlength=n_elements
                                  ).astype(np.int64)
    if sync_versions.shape[0]:
        last_poll = np.empty(sync_elements.shape[0], dtype=bool)
        last_poll[-1] = True
        np.not_equal(sync_elements[1:], sync_elements[:-1],
                     out=last_poll[:-1])
        carry.last_polled_version[sync_elements[last_poll]] = (
            sync_versions[last_poll])

    carry.poll_counts += np.bincount(
        sync_elements, minlength=n_elements).astype(np.int64)
    carry.changed_poll_counts += np.bincount(
        sync_elements[changed], minlength=n_elements).astype(np.int64)
    access_positions = np.flatnonzero(is_access)
    carry.access_counts += np.bincount(
        element_of[access_positions],
        minlength=n_elements).astype(np.int64)
    access_fresh = fresh_before[access_positions]
    becomes_fresh = is_sync & ~fresh_before
    carry.n_updates += int(np.count_nonzero(is_update))
    carry.n_syncs += int(sync_positions.shape[0])
    carry.n_accesses += int(access_positions.shape[0])
    carry.useful_syncs += int(np.count_nonzero(changed))
    carry.fresh_accesses += int(np.count_nonzero(access_fresh))
    carry.fresh_count += (int(np.count_nonzero(becomes_fresh))
                          - int(np.count_nonzero(run_start)))

    # Bandwidth folds over syncs in *global* time order.
    sync_sizes = sizes[elements[kinds == sync_kind]]
    carry.bandwidth_used = float(np.bincount(
        np.zeros(sync_sizes.shape[0] + 1, dtype=np.intp),
        weights=np.concatenate([[carry.bandwidth_used], sync_sizes]),
        minlength=1)[0])

    fresh_before_global = np.empty(n_events, dtype=bool)
    fresh_before_global[order] = fresh_before
    run_start_global = np.empty(n_events, dtype=bool)
    run_start_global[order] = run_start
    becomes_fresh_global = np.empty(n_events, dtype=bool)
    becomes_fresh_global[order] = becomes_fresh
    changed_sync_global = np.zeros(n_events, dtype=bool)
    changed_sync_global[order[sync_positions[changed]]] = True
    return (fresh_before_global, run_start_global,
            becomes_fresh_global, changed_sync_global)


class StreamingReplay:
    """Replay a horizon one whole-period slab at a time.

    Feed consecutive slabs of the merged event tape (global clock,
    split at period boundaries) with :meth:`feed`, then call
    :meth:`finish` for the :class:`SimulationResult`.  The result —
    including telemetry series, freshness ledger, fault accounting,
    fault trace and post-run fault-rng / Gilbert–Elliott chain state
    — is bit-identical to handing the concatenated tape to the
    matching one-shot kernel (:func:`replay_fastpath`,
    :func:`replay_fastpath_faulted` or :func:`replay_fastpath_ge`),
    while holding only O(slab) transient memory plus the O(n)
    :class:`ReplayCarry`.

    Args:
        catalog: The simulated workload.
        frequencies: Per-element sync frequencies, in syncs/period.
        period_length: Clock length of one sync period.
        n_periods: Total periods the fed slabs must cover (may be
            fractional; only the final slab may end off a period
            boundary).
        fault_args: Dispatch arguments from
            :meth:`repro.sim.simulation.Simulation.fault_kernel_args`
            (``kind`` ``"iid"`` or ``"ge"`` plus model, retry policy,
            budget, rng), or None for fault-free replay.
        fault_time_offset: Clock offset added to sync times on the
            fault clock and to ledger stamps, in clock units (whole
            periods).
        record_fault_trace: Whether to build the reference-identical
            per-attempt fault trace.
    """

    def __init__(self, catalog: Catalog, frequencies: np.ndarray, *,
                 period_length: float, n_periods: float,
                 fault_args: dict | None = None,
                 fault_time_offset: float = 0.0,
                 record_fault_trace: bool = False) -> None:
        self._catalog = catalog
        self._frequencies = frequencies
        self._period_length = float(period_length)
        self._n_periods = float(n_periods)
        self._horizon = n_periods * period_length
        self._fault_args = fault_args
        self._fault_time_offset = float(fault_time_offset)
        self._record_fault_trace = record_fault_trace
        self._sizes = np.asarray(catalog.sizes, dtype=float)
        self._planned = float(self._sizes @ frequencies)
        self._carry = ReplayCarry.start(catalog.n_elements)
        self._periods_done = 0.0
        self._next_first_period = 0
        self._fractional_tail = False
        self._finished = False
        # Fault accounting accumulators (channel-equivalent totals).
        n = catalog.n_elements
        self._attempted_polls = 0
        self._made_polls = 0
        self._successful_polls = 0
        self._denied_polls = 0
        self._denied_retries = 0
        self._attempted_bandwidth = 0.0
        self._attempted_poll_counts = np.zeros(n, dtype=np.int64)
        self._failed_poll_counts = np.zeros(n, dtype=np.int64)
        self._trace: list[tuple[float, int, str]] | None = (
            [] if record_fault_trace else None)
        self._chain: np.ndarray | None = None

    @property
    def carry(self) -> ReplayCarry:
        """The cross-slab per-element state (read-mostly for tests)."""
        return self._carry

    def _resolve_slab(self, times: np.ndarray, elements: np.ndarray,
                      kinds: np.ndarray
                      ) -> tuple[FaultResolution, np.ndarray,
                                 np.ndarray]:
        """Resolve one slab's sync outcomes on the shared fault rng."""
        fault_args = self._fault_args
        assert fault_args is not None
        sync_positions = np.flatnonzero(kinds == int(EventKind.SYNC))
        sync_elements = elements[sync_positions]
        fault_times = times[sync_positions] + self._fault_time_offset
        if fault_args.get("kind", "iid") == "ge":
            model = fault_args["model"]
            if self._chain is None:
                self._chain = model.chain_states(
                    self._catalog.n_elements)
            resolution, self._chain = resolve_ge_faults(
                fault_times, sync_elements, self._sizes,
                p_good_to_bad=model.p_good_to_bad,
                p_bad_to_good=model.p_bad_to_good,
                loss_good=model.loss_good, loss_bad=model.loss_bad,
                failure_outcome=model.failure_outcome,
                initial_bad=self._chain,
                retry_policy=fault_args["retry_policy"],
                bandwidth_budget=fault_args["bandwidth_budget"],
                period_length=self._period_length,
                rng=fault_args["rng"],
                record_trace=self._record_fault_trace)
        else:
            resolution = resolve_iid_faults(
                fault_times, sync_elements, self._sizes,
                failure_probability=fault_args["failure_probability"],
                failure_outcome=fault_args["failure_outcome"],
                retry_policy=fault_args["retry_policy"],
                bandwidth_budget=fault_args["bandwidth_budget"],
                period_length=self._period_length,
                rng=fault_args["rng"],
                record_trace=self._record_fault_trace)
        # Fold the slab's accounting into the running totals.  The
        # attempt-bandwidth fold is sequential in sync order, so it
        # continues with the carry-prepend trick like the kernel's.
        attempts = resolution.attempts
        self._attempted_polls += int(attempts.sum())
        self._made_polls += int(np.count_nonzero(attempts))
        self._successful_polls += int(
            np.count_nonzero(resolution.success))
        self._denied_polls += int(np.count_nonzero(resolution.denied))
        self._denied_retries += resolution.denied_retries
        attempt_sizes = np.repeat(self._sizes[sync_elements], attempts)
        self._attempted_bandwidth = float(np.bincount(
            np.zeros(attempt_sizes.shape[0] + 1, dtype=np.intp),
            weights=np.concatenate([[self._attempted_bandwidth],
                                    attempt_sizes]),
            minlength=1)[0])
        self._attempted_poll_counts += np.bincount(
            sync_elements, weights=attempts,
            minlength=self._attempted_poll_counts.shape[0]
        ).astype(np.int64)
        self._failed_poll_counts += np.bincount(
            sync_elements, weights=attempts - resolution.success,
            minlength=self._failed_poll_counts.shape[0]
        ).astype(np.int64)
        if self._trace is not None and resolution.trace is not None:
            self._trace.extend(resolution.trace)
        return resolution, sync_positions, sync_elements

    def feed(self, times: np.ndarray, elements: np.ndarray,
             kinds: np.ndarray, *, n_periods: float) -> None:
        """Fold the next slab of the tape into the replay.

        Args:
            times: Slab event times on the *global* run clock,
                time-ordered, all within the slab's period window.
            elements: Element id per slab event.
            kinds: :class:`~repro.sim.events.EventKind` per event.
            n_periods: Periods this slab covers.  Slabs start at
                whole-period boundaries; a fractional count is
                allowed only for the final slab.
        """
        if self._finished:
            raise SimulationError(
                "StreamingReplay.feed after finish()")
        if self._fractional_tail:
            raise SimulationError(
                "streaming slabs must split at whole periods; only "
                "the final slab may cover a fractional count")
        if n_periods <= 0.0:
            raise SimulationError(
                f"slab must cover > 0 periods, got {n_periods}")
        first_period = self._next_first_period
        if times.shape[0] and (float(times[0])
                               < first_period * self._period_length):
            raise SimulationError(
                "slab events precede the slab's period window")

        failed_per_period = None
        retries_per_period = None
        telemetry_on = obs.telemetry_enabled()
        if self._fault_args is not None:
            resolution, sync_positions, _ = self._resolve_slab(
                times, elements, kinds)
            if telemetry_on:
                n_buckets = max(int(np.ceil(n_periods)) - 1, 0) + 1
                sync_buckets = ((times[sync_positions]
                                 / self._period_length)
                                .astype(np.int64) - first_period)
                failed_per_period = np.bincount(
                    sync_buckets,
                    weights=(resolution.attempts
                             - resolution.success),
                    minlength=n_buckets).astype(np.int64)
                retries_per_period = np.bincount(
                    sync_buckets,
                    weights=(resolution.attempts
                             - (resolution.attempts > 0)),
                    minlength=n_buckets).astype(np.int64)
            keep = np.ones(times.shape[0], dtype=bool)
            keep[sync_positions[~resolution.success]] = False
            kept = np.flatnonzero(keep)
            times = times[kept]
            elements = elements[kept]
            kinds = kinds[kept]

        fresh_base = self._carry.fresh_count
        flags = _replay_tape_chunk(self._carry, self._sizes,
                                   times, elements, kinds)
        if telemetry_on:
            _emit_period_series(
                times, elements, kinds, self._sizes,
                flags[0], flags[1], flags[2],
                self._catalog.n_elements,
                period_length=self._period_length,
                n_periods=n_periods, planned=self._planned,
                failed_per_period=failed_per_period,
                retries_per_period=retries_per_period,
                first_period=first_period,
                initial_fresh=fresh_base)
            _emit_ledger(times, elements, kinds, flags[1],
                         time_offset=self._fault_time_offset)

        self._periods_done += n_periods
        whole = int(n_periods)
        if float(whole) != float(n_periods):
            self._fractional_tail = True
        self._next_first_period = first_period + max(whole, 1)

    def finish(self) -> SimulationResult:
        """Flush the horizon and assemble the result."""
        if self._finished:
            raise SimulationError("StreamingReplay.finish called twice")
        if abs(self._periods_done - self._n_periods) > 1e-9:
            raise SimulationError(
                f"streamed slabs cover {self._periods_done} periods, "
                f"expected {self._n_periods}")
        self._finished = True
        carry = self._carry
        horizon = self._horizon
        catalog = self._catalog

        fault_args = self._fault_args
        if (fault_args is not None
                and fault_args.get("kind", "iid") == "ge"
                and self._chain is not None):
            fault_args["model"].set_chain_states(self._chain)

        # Horizon flush: identical operations to the one-shot kernel
        # (and so to FreshnessMonitor.close()), on the carried state.
        remaining = horizon - carry.last_time
        if (remaining < -1e-9).any():
            raise SimulationError(
                "events were recorded beyond the horizon")
        fresh_time = carry.fresh_time + (np.maximum(remaining, 0.0)
                                         * carry.fresh)
        age_integral = carry.age_integral
        stale = ~carry.fresh & (remaining > 0.0)
        if stale.any():
            since = carry.stale_since[stale]
            start = carry.last_time[stale]
            age_integral = age_integral.copy()
            age_integral[stale] += 0.5 * (
                (horizon - since) ** 2 - (start - since) ** 2)
        element_freshness = fresh_time / horizon
        element_age = age_integral / horizon

        p = catalog.access_probabilities
        perceived_by_accesses = (
            carry.fresh_accesses / carry.n_accesses
            if carry.n_accesses
            else float(p @ element_freshness))

        accounting: _FaultAccounting | None = None
        engine = "fastpath"
        if fault_args is not None:
            engine = ("fastpath_ge"
                      if fault_args.get("kind", "iid") == "ge"
                      else "fastpath_faulted")
            accounting = _FaultAccounting(
                attempted_polls=self._attempted_polls,
                failed_polls=(self._attempted_polls
                              - self._successful_polls),
                retries=self._attempted_polls - self._made_polls,
                denied_polls=self._denied_polls,
                denied_retries=self._denied_retries,
                failed_syncs=(self._made_polls
                              - self._successful_polls),
                attempted_bandwidth=self._attempted_bandwidth,
                attempted_poll_counts=self._attempted_poll_counts,
                failed_poll_counts=self._failed_poll_counts,
            )

        if obs.telemetry_enabled():
            if accounting is not None:
                outcome = (
                    fault_args["model"].failure_outcome
                    if engine == "fastpath_ge"
                    else fault_args["failure_outcome"])
                _emit_fault_counters(accounting, outcome)
            _emit_monitor_close(element_freshness, element_age,
                                carry.n_accesses,
                                carry.fresh_accesses, horizon)
            obs.counter_add("sim.runs")
            obs.counter_add(f"sim.{engine}_runs")
            obs.counter_add(f"sim.engine.{engine}")
            obs.counter_add("sim.syncs", carry.n_syncs)
            obs.counter_add("sim.useful_syncs", carry.useful_syncs)
            obs.counter_add("sim.updates", carry.n_updates)
            obs.counter_add("sim.accesses", carry.n_accesses)
            obs.gauge_set("sim.bandwidth_used", carry.bandwidth_used)
            obs.gauge_set("sim.monitored_perceived_freshness",
                          float(perceived_by_accesses))
            obs.gauge_set("sim.monitored_general_freshness",
                          float(element_freshness.mean()))
            if accounting is not None:
                obs.gauge_set("sim.attempted_bandwidth",
                              accounting.attempted_bandwidth)
                obs.gauge_set(
                    "sim.poll_failure_fraction",
                    (accounting.failed_polls
                     / accounting.attempted_polls
                     if accounting.attempted_polls else 0.0))

        if accounting is None:
            return SimulationResult(
                catalog=catalog,
                frequencies=self._frequencies,
                horizon=horizon,
                period_length=self._period_length,
                n_updates=carry.n_updates,
                n_syncs=carry.n_syncs,
                n_accesses=carry.n_accesses,
                useful_syncs=carry.useful_syncs,
                bandwidth_used=carry.bandwidth_used,
                monitored_perceived_freshness=float(
                    perceived_by_accesses),
                monitored_time_perceived=float(p @ element_freshness),
                monitored_general_freshness=float(
                    element_freshness.mean()),
                element_time_freshness=element_freshness,
                element_time_age=element_age,
                monitored_perceived_age=float(p @ element_age),
                access_counts=carry.access_counts,
                poll_counts=carry.poll_counts,
                changed_poll_counts=carry.changed_poll_counts,
                attempted_polls=carry.n_syncs,
                attempted_bandwidth=carry.bandwidth_used,
            )
        return SimulationResult(
            catalog=catalog,
            frequencies=self._frequencies,
            horizon=horizon,
            period_length=self._period_length,
            n_updates=carry.n_updates,
            n_syncs=carry.n_syncs,
            n_accesses=carry.n_accesses,
            useful_syncs=carry.useful_syncs,
            bandwidth_used=carry.bandwidth_used,
            monitored_perceived_freshness=float(perceived_by_accesses),
            monitored_time_perceived=float(p @ element_freshness),
            monitored_general_freshness=float(element_freshness.mean()),
            element_time_freshness=element_freshness,
            element_time_age=element_age,
            monitored_perceived_age=float(p @ element_age),
            access_counts=carry.access_counts,
            poll_counts=carry.poll_counts,
            changed_poll_counts=carry.changed_poll_counts,
            attempted_polls=accounting.attempted_polls,
            failed_polls=accounting.failed_polls,
            unreachable_polls=0,
            retries=accounting.retries,
            breaker_skips=0,
            denied_polls=accounting.denied_polls,
            attempted_bandwidth=accounting.attempted_bandwidth,
            attempted_poll_counts=accounting.attempted_poll_counts,
            failed_poll_counts=accounting.failed_poll_counts,
            unreachable_poll_counts=np.zeros(catalog.n_elements,
                                             dtype=np.int64),
            unreachable_elements=None,
            fault_trace=(tuple(self._trace)
                         if self._record_fault_trace
                         and self._trace is not None else None),
        )
