"""Named chaos scenarios: reusable fault configurations.

Each scenario bundles a :class:`~repro.faults.model.FaultPlan`
builder (parameterized on catalog size and horizon so outage windows
can scale with the run) with the retry/breaker configuration the
scenario is meant to exercise.  The ``repro chaos`` harness
(:mod:`repro.analysis.chaos`) runs each scenario twice — against a
fault-blind manager and a degraded-mode manager — and reports the
perceived-freshness degradation and recovery series.

Scenarios only *describe* faults; they import nothing from the
simulator or runtime layers, so the fault vocabulary stays at the
bottom of the layering (``errors`` < ``obs`` < ``faults`` < ``sim``
< ``runtime``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping

import numpy as np

from repro.faults.correlated import CorrelatedFaultModel, NodeOutage
from repro.faults.model import (
    FaultPlan,
    GilbertElliottFaultModel,
    IIDFaultModel,
    LatencyFaultModel,
    OutageWindow,
    PollOutcome,
)
from repro.faults.retry import RetryAdmissionGate, RetryPolicy
from repro.faults.topology import Topology

__all__ = ["CHAOS_SCENARIOS", "ChaosScenario"]


@dataclass(frozen=True)
class ChaosScenario:
    """One named outage scenario.

    Attributes:
        name: CLI slug (``repro chaos --scenario NAME``).
        description: One-line human summary.
        build_plan: ``(n_elements, horizon) -> FaultPlan`` — horizon
            in period units; called once per run so stateful models
            (Gilbert–Elliott) start fresh.
        retry_policy: Backoff policy the resilient manager uses
            (None disables retries).
        breaker_threshold: Consecutive failures that open a circuit,
            or None for no breaker.
        breaker_cooldown: Open-circuit cooldown, in period units.
        grouped_fraction: When set, the first this-fraction of the
            catalog shares one breaker shard (matching the scenario's
            outage footprint) and the rest stay per-element.  Shard
            granularity matters: a shared breaker sees the whole
            group's poll stream, so it both opens fast and — via any
            member's half-open probe — closes fast, where a cold
            element's private breaker can stay open for periods
            simply because nothing polls it.
        build_topology: Optional ``(n_elements) -> Topology`` builder
            for relay-tree scenarios.  When present it supplies the
            breaker shard map (subtree membership beats any modulo or
            prefix grouping) and the chaos harness threads the tree
            through the sync path and manager.
        gate_capacity: When set, each run's retry policy carries a
            fresh shared :class:`~repro.faults.retry.
            RetryAdmissionGate` of this burst size (dimensionless
            token count; see :meth:`retry_policy_for_run`).
        gate_refill_rate: Gate refill rate, in tokens per period.
        selection_capacity_fraction: When set, chaos arms plan with
            the §7 space-constrained path
            (:class:`~repro.core.selection.SpaceConstrainedFreshener`)
            at this fraction of the catalog's total size
            (dimensionless, in ``(0, 1]``).
    """

    name: str
    description: str
    build_plan: Callable[[int, float], FaultPlan]
    retry_policy: RetryPolicy | None = RetryPolicy()
    breaker_threshold: int | None = None
    breaker_cooldown: float = 1.0
    grouped_fraction: float | None = None
    build_topology: Callable[[int], Topology] | None = None
    gate_capacity: float | None = None
    gate_refill_rate: float = 1.0
    selection_capacity_fraction: float | None = None

    def plan(self, n_elements: int, horizon: float) -> FaultPlan:
        """Build a fresh fault plan for one run.

        Args:
            n_elements: Catalog size.
            horizon: Total simulated time, in period units.

        Returns:
            A new :class:`FaultPlan` (fresh stochastic state).
        """
        return self.build_plan(n_elements, horizon)

    def topology(self, n_elements: int) -> Topology | None:
        """The scenario's relay tree for a catalog of this size.

        Returns:
            None for flat (direct source→mirror) scenarios.
        """
        if self.build_topology is None:
            return None
        return self.build_topology(n_elements)

    def shard_of(self, n_elements: int) -> np.ndarray | None:
        """Element → breaker-shard map for this scenario.

        A topology supplies its subtree-membership shard map (an
        edge's uplink fails as one unit, so its elements share one
        breaker).  Without one, the legacy grouped-prefix map
        applies.

        Returns:
            None for identity sharding (one breaker per element);
            otherwise shape ``(n_elements,)``.
        """
        topology = self.topology(n_elements)
        if topology is not None:
            return topology.shard_of
        if self.grouped_fraction is None:
            return None
        grouped = max(int(n_elements * self.grouped_fraction), 1)
        shards = np.zeros(n_elements, dtype=np.int64)
        shards[grouped:] = np.arange(1, n_elements - grouped + 1)
        return shards

    def n_shards(self, n_elements: int) -> int:
        """Breaker shard count implied by :meth:`shard_of`."""
        topology = self.topology(n_elements)
        if topology is not None:
            return topology.n_shards
        shards = self.shard_of(n_elements)
        if shards is None:
            return n_elements
        return int(shards.max()) + 1

    def retry_policy_for_run(self) -> RetryPolicy | None:
        """The retry policy one run should use, with a fresh gate.

        The admission gate is mutable shared state (one token bucket
        per source): reusing one instance across runs would leak
        token balances between arms — and break ``--jobs`` bit-
        identity, since worker processes get pickled copies while
        serial runs share the original.  Each run therefore gets its
        own gate, built here from the scenario's declarative
        ``gate_capacity``/``gate_refill_rate``.

        Returns:
            ``retry_policy`` as-is when no gate is configured, else a
            copy carrying a fresh :class:`RetryAdmissionGate`.
        """
        if self.retry_policy is None or self.gate_capacity is None:
            return self.retry_policy
        return replace(self.retry_policy,
                       admission_gate=RetryAdmissionGate(
                           self.gate_capacity, self.gate_refill_rate))


def _iid20_plan(n_elements: int, horizon: float) -> FaultPlan:
    return FaultPlan.iid(0.2)


def _burst_plan(n_elements: int, horizon: float) -> FaultPlan:
    return FaultPlan(models=(GilbertElliottFaultModel(
        0.05, 0.25, loss_good=0.02, loss_bad=0.95),))


def _outage_plan(n_elements: int, horizon: float) -> FaultPlan:
    shard = tuple(range(max(n_elements // 5, 1)))
    window = OutageWindow(start=horizon / 3.0,
                          end=2.0 * horizon / 3.0,
                          elements=shard)
    return FaultPlan(models=(IIDFaultModel(0.02),),
                     outages=(window,))


def _latency_plan(n_elements: int, horizon: float) -> FaultPlan:
    # exp(-timeout/mean) = exp(-1.9) ~ 15% of attempts blow the
    # deadline.
    return FaultPlan(models=(LatencyFaultModel(0.1, 0.19),))


def _flaky_shard_plan(n_elements: int, horizon: float) -> FaultPlan:
    shard = tuple(range(max(n_elements // 10, 1)))
    flapping = tuple(
        OutageWindow(start=start, end=start + 1.5, elements=shard)
        for start in _window_starts(horizon))
    return FaultPlan(models=(IIDFaultModel(
        0.05, failure=PollOutcome.TIMEOUT),), outages=flapping)


def _window_starts(horizon: float) -> list[float]:
    starts: list[float] = []
    start = horizon / 5.0
    while start + 1.5 < horizon:
        starts.append(start)
        start += 4.0
    return starts or [horizon / 5.0]


def _relay_tree(n_elements: int) -> Topology:
    # Four relays, two edge caches each.  The 25-per-uplink cap is
    # tuned to the chaos preset's B = 80: all four subtrees up give
    # 100 of deliverable capacity (non-binding), one relay down
    # leaves 75 — strictly less than B, so the aware manager's
    # reachable-bandwidth derate has something real to derate to,
    # while the three survivors still have the headroom to absorb
    # the dead subtree's reallocated share.
    return Topology.build(n_elements, n_relays=4, edges_per_relay=2,
                          seed=17, relay_bandwidth=25.0,
                          relay_latency=0.02, edge_latency=0.01)


def _herding_tree(n_elements: int) -> Topology:
    # Two relays, three edges each: one relay covers half the
    # catalog, so its recovery releases the biggest possible
    # synchronized retry herd.  Uncapped uplinks — herding is about
    # the retry storm, not hop budgets.
    return Topology.build(n_elements, n_relays=2, edges_per_relay=3,
                          seed=23, relay_latency=0.02,
                          edge_latency=0.01)


def _relay_cascade_plan(n_elements: int, horizon: float) -> FaultPlan:
    # A long outage (the middle half) plus heavy background loss:
    # the loss-derated replan keeps retry headroom everywhere, and
    # the outage replan reallocates the dead quarter's share across
    # the surviving relays — both levers the blind manager lacks.
    topology = _relay_tree(n_elements)
    outage = NodeOutage(node=topology.root_children[0],
                        start=horizon / 4.0, end=3.0 * horizon / 4.0)
    cascade = CorrelatedFaultModel(topology, scheduled=(outage,),
                                   recovery_debounce=0.25)
    return FaultPlan(models=(cascade, IIDFaultModel(0.2)))


def _herding_plan(n_elements: int, horizon: float) -> FaultPlan:
    topology = _herding_tree(n_elements)
    relay = topology.root_children[0]
    flaps = tuple(
        NodeOutage(node=relay, start=start, end=start + 1.0)
        for start in np.arange(horizon / 5.0, horizon - 1.0,
                               3.0).tolist())
    flapping = CorrelatedFaultModel(topology, scheduled=flaps,
                                    recovery_debounce=0.1)
    return FaultPlan(models=(flapping, IIDFaultModel(
        0.25, failure=PollOutcome.TIMEOUT)))


def _partition_plan(n_elements: int, horizon: float) -> FaultPlan:
    topology = _relay_tree(n_elements)
    outages = tuple(
        NodeOutage(node=relay, start=horizon / 3.0,
                   end=horizon / 2.0)
        for relay in topology.root_children)
    partition = CorrelatedFaultModel(topology, scheduled=outages,
                                     recovery_debounce=0.25)
    return FaultPlan(models=(partition, IIDFaultModel(0.15)))


CHAOS_SCENARIOS: Mapping[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        ChaosScenario(
            name="iid20",
            description="20% i.i.d. poll failure for the whole run",
            build_plan=_iid20_plan,
            retry_policy=RetryPolicy(max_retries=3),
        ),
        ChaosScenario(
            name="burst",
            description="Gilbert-Elliott bursty loss (95% inside "
                        "bad sojourns)",
            build_plan=_burst_plan,
            retry_policy=RetryPolicy(max_retries=2),
            breaker_threshold=4,
            breaker_cooldown=2.0,
        ),
        ChaosScenario(
            name="outage",
            description="middle-third outage of the first fifth of "
                        "the catalog, plus 2% background loss",
            build_plan=_outage_plan,
            retry_policy=RetryPolicy(max_retries=2),
            breaker_threshold=3,
            breaker_cooldown=0.5,
            grouped_fraction=0.2,
        ),
        ChaosScenario(
            name="latency",
            description="exponential latency draws; ~15% of attempts "
                        "exceed the deadline",
            build_plan=_latency_plan,
            retry_policy=RetryPolicy(max_retries=3),
        ),
        ChaosScenario(
            name="flaky-shard",
            description="one shard flaps down for 1.5 periods every "
                        "4, plus 5% timeouts",
            build_plan=_flaky_shard_plan,
            retry_policy=RetryPolicy(max_retries=2),
            breaker_threshold=3,
            breaker_cooldown=0.5,
            grouped_fraction=0.1,
        ),
        ChaosScenario(
            name="relay-cascade",
            description="one relay dies for the middle half, "
                        "darkening its whole subtree, plus 20% "
                        "background loss; space-constrained planning",
            build_plan=_relay_cascade_plan,
            retry_policy=RetryPolicy(max_retries=3),
            breaker_threshold=3,
            breaker_cooldown=0.5,
            build_topology=_relay_tree,
            selection_capacity_fraction=0.6,
        ),
        ChaosScenario(
            name="herding",
            description="a relay covering half the catalog flaps 1 "
                        "period in every 3 under 25% timeouts; a "
                        "shared admission gate caps the retry herd",
            build_plan=_herding_plan,
            retry_policy=RetryPolicy(max_retries=3),
            breaker_threshold=4,
            breaker_cooldown=0.5,
            build_topology=_herding_tree,
            # Sized to clip recovery stampedes, not steady retries:
            # ~25% timeouts on ~80 polls/period is ~20 retries/period
            # of steady demand, which the refill rate covers, while
            # the post-flap herd arrives faster than 10 tokens deep.
            gate_capacity=10.0,
            gate_refill_rate=20.0,
            selection_capacity_fraction=0.6,
        ),
        ChaosScenario(
            name="partition",
            description="every relay uplink down together for a "
                        "sixth of the run — a full source partition "
                        "— plus 15% background loss",
            build_plan=_partition_plan,
            retry_policy=RetryPolicy(max_retries=2),
            breaker_threshold=2,
            breaker_cooldown=0.5,
            build_topology=_relay_tree,
            selection_capacity_fraction=0.6,
        ),
    )
}
