"""Tests for the baseline-comparison and freshness/age trade-off runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    baseline_comparison,
    freshness_age_tradeoff,
)
from repro.workloads.presets import ExperimentSetup

TINY = ExperimentSetup(n_objects=80, updates_per_period=160.0,
                       syncs_per_period=40.0, theta=1.0,
                       update_std_dev=1.0)


class TestBaselineComparison:
    @pytest.fixture(scope="class")
    def sweep(self):
        return baseline_comparison(setup=TINY,
                                   thetas=np.array([0.0, 0.8, 1.6]))

    def test_pf_tops_every_policy(self, sweep):
        """Only PF-optimal is guaranteed best on perceived freshness."""
        pf = sweep.get("PF_OPTIMAL").y
        for label in ("GF_OPTIMAL", "UNIFORM", "PROPORTIONAL"):
            assert (pf >= sweep.get(label).y - 1e-9).all()

    def test_gf_can_lose_to_uniform_under_skew(self, sweep):
        """Optimizing the wrong objective is worse than not
        optimizing: at high skew GF's perceived freshness drops below
        naive uniform polling."""
        gf = sweep.get("GF_OPTIMAL").y
        uniform = sweep.get("UNIFORM").y
        assert gf[-1] < uniform[-1]

    def test_proportional_exactly_theta_invariant(self, sweep):
        """fᵢ ∝ λᵢ gives every element the same staleness ratio, so
        perceived freshness is the same constant at every skew."""
        proportional = sweep.get("PROPORTIONAL").y
        assert np.allclose(proportional, proportional[0], atol=1e-9)

    def test_pf_margin_grows_with_skew(self, sweep):
        gap = sweep.get("PF_OPTIMAL").y - sweep.get("GF_OPTIMAL").y
        assert gap[-1] > gap[0]


class TestFreshnessAgeTradeoff:
    @pytest.fixture(scope="class")
    def sweep(self):
        return freshness_age_tradeoff(
            setup=TINY, blend_weights=np.linspace(0.0, 1.0, 6))

    def test_freshness_monotone_in_blend(self, sweep):
        pf = sweep.get("perceived freshness").y
        assert (np.diff(pf) >= -1e-9).all()

    def test_age_monotone_in_blend(self, sweep):
        age = sweep.get("perceived age").y
        finite = np.isfinite(age)
        assert (np.diff(age[finite]) >= -1e-9).all()

    def test_endpoints(self, sweep):
        """α = 0 is the age optimum; α = 1 the freshness optimum with
        (typically) infinite age."""
        age = sweep.get("perceived age").y
        assert np.isfinite(age[0])
        assert sweep.notes["freshness_optimal_age"] == age[-1]

    def test_interior_blends_feasible_compromises(self, sweep):
        pf = sweep.get("perceived freshness").y
        age = sweep.get("perceived age").y
        # A mid blend keeps age finite while recovering most of the
        # freshness gap.
        middle = len(pf) // 2
        assert np.isfinite(age[middle])
        assert pf[middle] > pf[0]
