"""freshlint — domain-aware static analysis for the repro codebase.

The freshening solver stack is only correct while a web of unstated
invariants holds: probability vectors on the simplex, seeded
``np.random.Generator`` threading, budget feasibility ``Σ cᵢfᵢ ≤ B``,
KKT residuals near zero.  freshlint encodes the *source-level*
discipline that keeps those invariants checkable at all — reproducible
randomness, tolerance-based float comparisons, honest re-export lists,
unit-documented quantities, no aliasing mutation in the numeric core,
and no swallowed solver errors.

Run it as a CLI from the repository root::

    PYTHONPATH=tools python -m freshlint src/ examples/ benchmarks/

or programmatically::

    from freshlint import run_paths
    violations = run_paths(["src/repro"])

Each rule is documented in ``docs/STATIC_ANALYSIS.md`` with the piece
of the paper's math it protects.
"""

from __future__ import annotations

from freshlint.engine import (
    LintConfig,
    ModuleContext,
    Violation,
    iter_python_files,
    lint_file,
    run_paths,
)
from freshlint.rules import ALL_RULES, Rule, rule_by_code

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "LintConfig",
    "ModuleContext",
    "Rule",
    "Violation",
    "__version__",
    "iter_python_files",
    "lint_file",
    "rule_by_code",
    "run_paths",
]
