"""The retrying sync channel between a mirror and its source.

:class:`SyncChannel` replaces the simulator's "every poll succeeds"
assumption with the full production story: each scheduled sync
becomes one or more *attempts* whose outcomes are drawn from a
:class:`~repro.faults.model.FaultPlan`; failed retryable attempts are
retried under a :class:`~repro.faults.retry.RetryPolicy` (backoff
delays advance the attempt's simulated timestamp, so an outage can
outlast a retry burst); a per-shard
:class:`~repro.faults.breaker.CircuitBreaker` fast-fails polls of
shards that look dead.

Bandwidth accounting follows the paper's Core Problem constraint:
a failed transfer (``timeout``/``error``) still burns the element's
size from the period budget B — only ``unreachable`` fast-fails are
free.  The channel keeps a per-period ledger and *every* attempt,
initial or retry, must fit in it: once a period's budget is spent
the pipe is saturated and further polls are denied outright.  That
hard cap is what makes degraded-mode planning matter: a schedule
planned against the full B saturates the ledger with first attempts
and loses its late-period polls, one planned against ``B·(1−loss)``
leaves the headroom its retries are granted from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError, ValidationError
from repro.faults.breaker import CircuitBreaker
from repro.faults.model import FaultPlan, PollOutcome
from repro.faults.retry import RetryPolicy
from repro.faults.topology import HopLedger, Topology
from repro.obs import registry as obs

if TYPE_CHECKING:  # keeps faults below sim in the layering
    from repro.sim.mirror import Mirror

__all__ = ["PollReport", "SyncChannel"]


@dataclass(frozen=True)
class PollReport:
    """What one scheduled sync actually did on the wire.

    Attributes:
        outcome: The final attempt's :class:`PollOutcome` (``ok``
            when any attempt succeeded).
        attempts: Attempts made, including the first (0 when the
            breaker fast-failed the poll).
        retries: Attempts beyond the first.
        changed: Whether the successful sync found a new version
            (meaningful only when ``outcome`` is ``ok``).
        bandwidth: Bandwidth burned across all attempts, in size
            units.
    """

    outcome: PollOutcome
    attempts: int
    retries: int
    changed: bool
    bandwidth: float


class SyncChannel:
    """A faulty, retrying link executing scheduled syncs.

    Args:
        mirror: The mirror whose copies are refreshed on success.
        plan: Fault plan drawn per attempt.
        rng: Seeded generator driving fault draws and retry jitter.
        retry_policy: Backoff policy for retryable failures (None
            disables retries).
        breaker: Optional per-shard circuit breaker.
        shard_of: Maps each element to its breaker shard; identity
            (one shard per element) by default.  Required shape
            ``(n_elements,)`` when given.
        bandwidth_budget: Per-period attempt budget B, in size units
            per period; any attempt — initial or retry — that would
            overdraw it is denied (None disables the ledger —
            attempts are bounded only by the schedule and the retry
            policy).
        period_length: Clock length of one budget period, in the
            simulation's time units, > 0.
        topology: Optional relay tree between source and mirror.
            When given, every attempt must also fit the per-hop
            ledgers on the element's root-to-edge path (all-or-
            nothing), completions are delayed by the path's summed
            hop latency, and ``shard_of`` defaults to the topology's
            subtree-derived shard map.
        record_trace: When True, keep a per-attempt trace (time,
            element, outcome) for determinism audits.
    """

    def __init__(self, mirror: Mirror, *, plan: FaultPlan,
                 rng: np.random.Generator,
                 retry_policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 shard_of: np.ndarray | None = None,
                 bandwidth_budget: float | None = None,
                 period_length: float = 1.0,
                 topology: Topology | None = None,
                 record_trace: bool = False) -> None:
        n = mirror.n_elements
        if topology is not None and topology.n_elements != n:
            raise ValidationError(
                f"topology hosts {topology.n_elements} elements, "
                f"mirror has {n}")
        if shard_of is None and topology is not None:
            self._shard_of = topology.shard_of
        elif shard_of is None:
            self._shard_of = np.arange(n, dtype=np.int64)
        else:
            self._shard_of = np.asarray(shard_of, dtype=np.int64)
            if self._shard_of.shape != (n,):
                raise ValidationError(
                    f"shard_of shape {self._shard_of.shape} does not "
                    f"match {n} elements")
        if breaker is not None and self._shard_of.size:
            highest = int(self._shard_of.max())
            if highest >= breaker.n_shards or int(self._shard_of.min()) < 0:
                raise ValidationError(
                    f"shard_of maps into [{int(self._shard_of.min())}, "
                    f"{highest}], breaker has {breaker.n_shards} shards")
        if bandwidth_budget is not None and bandwidth_budget <= 0.0:
            raise ValidationError(
                f"bandwidth_budget must be > 0, got {bandwidth_budget}")
        if period_length <= 0.0:
            raise ValidationError(
                f"period_length must be > 0, got {period_length}")
        self._mirror = mirror
        self._sizes = mirror.sizes
        self._plan = plan
        self._rng = rng
        self._retry = retry_policy
        self._breaker = breaker
        self._budget = bandwidth_budget
        self._period_length = period_length
        self._topology = topology
        self._hops = (HopLedger(topology, period_length)
                      if topology is not None else None)
        # Last time refreshed content crossed each hop, in the
        # simulation's time units; 0.0 = "fresh at the epoch", so hop
        # ages start at the clock and compose along paths.
        self._hop_last_transit = (np.zeros(topology.n_nodes)
                                  if topology is not None else None)
        self._period = 0
        self._period_spent = 0.0
        self._attempted_polls = 0
        self._failed_polls = 0
        self._unreachable_polls = 0
        self._retries = 0
        self._breaker_skips = 0
        self._denied_polls = 0
        self._denied_retries = 0
        self._hop_denied = 0
        self._suppressed_retries = 0
        self._attempted_bandwidth = 0.0
        self._attempt_counts = np.zeros(n, dtype=np.int64)
        self._failed_counts = np.zeros(n, dtype=np.int64)
        self._unreachable_counts = np.zeros(n, dtype=np.int64)
        self._trace: list[tuple[float, int, str]] | None = (
            [] if record_trace else None)

    # -- accounting ------------------------------------------------

    @property
    def attempted_polls(self) -> int:
        """Total attempts made (initial polls + retries)."""
        return self._attempted_polls

    @property
    def failed_polls(self) -> int:
        """Attempts that failed (any non-``ok`` outcome)."""
        return self._failed_polls

    @property
    def unreachable_polls(self) -> int:
        """Failed attempts that never reached the wire
        (``unreachable`` fast-fails, which burn no bandwidth).
        Subtract from the totals to get *transfer-level* loss — the
        kind that wastes budget and warrants derated planning."""
        return self._unreachable_polls

    @property
    def retries(self) -> int:
        """Attempts beyond the first, across all scheduled syncs."""
        return self._retries

    @property
    def breaker_skips(self) -> int:
        """Scheduled syncs fast-failed by an open circuit."""
        return self._breaker_skips

    @property
    def denied_polls(self) -> int:
        """Scheduled syncs denied outright by a saturated period
        budget (the pipe was full before the first attempt)."""
        return self._denied_polls

    @property
    def denied_retries(self) -> int:
        """Retries refused because the period budget was exhausted."""
        return self._denied_retries

    @property
    def hop_denied(self) -> int:
        """Attempts denied by a saturated hop ledger on the
        element's path (a subset of ``denied_polls`` +
        ``denied_retries``; 0 without a topology)."""
        return self._hop_denied

    @property
    def suppressed_retries(self) -> int:
        """Retries refused by the shared herding admission gate
        (0 when the retry policy carries no gate)."""
        return self._suppressed_retries

    @property
    def attempted_bandwidth(self) -> float:
        """Bandwidth burned across every attempt, in size units."""
        return self._attempted_bandwidth

    @property
    def topology(self) -> Topology | None:
        """The relay tree this channel polls through, if any."""
        return self._topology

    def hop_spent(self) -> np.ndarray:
        """Bandwidth charged per hop in the current period, in size
        units (empty array without a topology)."""
        if self._hops is None:
            return np.zeros(0)
        return self._hops.hop_spent()

    def hop_ages(self, now: float) -> np.ndarray:
        """Per-hop content age at simulated ``now``, in the
        simulation's time units.

        A hop's age is the time since refreshed content last crossed
        its uplink; an edge's composed staleness bound is the max age
        along its root-to-edge path (see :meth:`composed_ages`).
        Empty array without a topology.
        """
        if self._hop_last_transit is None:
            return np.zeros(0)
        return np.maximum(now - self._hop_last_transit, 0.0)

    def composed_ages(self, now: float) -> np.ndarray:
        """Per-element composed age at simulated ``now``: the max hop
        age along each element's root-to-edge path, in the
        simulation's time units.

        This is the relay-tree freshness composition: an edge cannot
        be fresher than the stalest hop feeding it.  Empty array
        without a topology.
        """
        if self._topology is None or self._hop_last_transit is None:
            return np.zeros(0)
        ages = self.hop_ages(now)
        out = np.empty(self._topology.n_elements)
        for element in range(self._topology.n_elements):
            path = list(self._topology.path_of_element(element))
            out[element] = float(ages[path].max())
        return out

    def attempted_poll_counts(self) -> np.ndarray:
        """Attempts per element (dimensionless counts)."""
        return self._attempt_counts.copy()

    def failed_poll_counts(self) -> np.ndarray:
        """Failed attempts per element (dimensionless counts)."""
        return self._failed_counts.copy()

    def unreachable_poll_counts(self) -> np.ndarray:
        """Unreachable fast-fails per element (dimensionless counts)."""
        return self._unreachable_counts.copy()

    def unreachable_mask(self) -> np.ndarray:
        """Boolean mask of elements whose breaker shard is OPEN.

        All-False when the channel has no breaker.
        """
        if self._breaker is None:
            return np.zeros(self._shard_of.shape[0], dtype=bool)
        return self._breaker.open_mask()[self._shard_of]

    def trace(self) -> list[tuple[float, int, str]]:
        """The recorded per-attempt trace.

        Each entry is ``(attempt_time, element, outcome_value)``;
        raises unless the channel was built with ``record_trace``.
        """
        if self._trace is None:
            raise SimulationError(
                "channel was not built with record_trace=True")
        return list(self._trace)

    # -- the poll path ---------------------------------------------

    def sync(self, element: int, time: float) -> PollReport:
        """Execute one scheduled sync through the faulty link.

        Args:
            element: Element index to refresh.
            time: Simulated clock time of the scheduled sync, in the
                simulation's time units.

        Returns:
            The :class:`PollReport` of what happened.
        """
        self._roll_period(time)
        shard = int(self._shard_of[element])
        if self._breaker is not None and \
                not self._breaker.allow(shard, time):
            self._breaker_skips += 1
            obs.counter_add("faults.breaker_skips")
            return PollReport(outcome=PollOutcome.UNREACHABLE,
                              attempts=0, retries=0, changed=False,
                              bandwidth=0.0)
        size = float(self._sizes[element])
        if self._budget is not None and \
                self._period_spent + size > self._budget:
            # The pipe is saturated for this period: the scheduled
            # poll never makes it onto the wire.  Not a breaker
            # signal — the source did nothing wrong.
            self._denied_polls += 1
            obs.counter_add("faults.denied_polls")
            return PollReport(outcome=PollOutcome.UNREACHABLE,
                              attempts=0, retries=0, changed=False,
                              bandwidth=0.0)
        if self._hops is not None and \
                self._hops.admits(element, size, time) is not None:
            # Some hop on the root-to-edge path is saturated for this
            # period: the poll cannot transit, even if the source's
            # flat budget has headroom.
            self._denied_polls += 1
            self._hop_denied += 1
            obs.counter_add("faults.denied_polls")
            obs.counter_add("faults.topology.hop_denied")
            return PollReport(outcome=PollOutcome.UNREACHABLE,
                              attempts=0, retries=0, changed=False,
                              bandwidth=0.0)
        attempts = 0
        burned = 0.0
        delay = 0.0
        attempt_time = time
        outcome = PollOutcome.UNREACHABLE
        while True:
            attempts += 1
            self._attempted_polls += 1
            self._attempt_counts[element] += 1
            outcome = self._plan.outcome(element, attempt_time,
                                         self._rng)
            if self._trace is not None:
                self._trace.append((attempt_time, int(element),
                                    outcome.value))
            if outcome is not PollOutcome.UNREACHABLE:
                # The transfer ran (successfully or not): it burned
                # the element's size from the period budget — and
                # from every hop ledger on its path.
                burned += size
                self._period_spent += size
                self._attempted_bandwidth += size
                if self._hops is not None:
                    self._hops.charge(element, size)
            if outcome is PollOutcome.OK:
                break
            self._failed_polls += 1
            if outcome is PollOutcome.UNREACHABLE:
                self._unreachable_polls += 1
                self._unreachable_counts[element] += 1
            self._failed_counts[element] += 1
            obs.counter_add(f"faults.{outcome.value}")
            if not outcome.is_retryable or self._retry is None:
                break
            if attempts > self._retry.max_retries:
                break
            if self._budget is not None and \
                    self._period_spent + size > self._budget:
                self._denied_retries += 1
                obs.counter_add("faults.denied_retries")
                break
            if self._hops is not None and \
                    self._hops.admits(element, size,
                                      attempt_time) is not None:
                self._denied_retries += 1
                self._hop_denied += 1
                obs.counter_add("faults.denied_retries")
                obs.counter_add("faults.topology.hop_denied")
                break
            if self._retry.admission_gate is not None:
                if not self._retry.admission_gate.admit(attempt_time):
                    # The source's shared retry bucket is dry — this
                    # channel's retry would have joined a herd.
                    self._suppressed_retries += 1
                    obs.counter_add("faults.herding.suppressed")
                    break
                obs.counter_add("faults.herding.admitted")
            delay = self._retry.next_delay(delay, self._rng)
            attempt_time += delay
            self._retries += 1
            obs.counter_add("faults.retries")

        completion = attempt_time
        if self._topology is not None:
            # The transfer is not done until it has transited every
            # hop: completions lag by the path's summed latency.
            completion += self._topology.path_latency(element)
        if outcome is PollOutcome.OK:
            if self._breaker is not None:
                self._breaker.record_success(shard, completion)
            if self._topology is not None and \
                    self._hop_last_transit is not None:
                arrival = attempt_time
                for node in self._topology.path_of_element(element):
                    arrival += float(self._topology.link_latency[node])
                    self._hop_last_transit[node] = max(
                        self._hop_last_transit[node], arrival)
            changed = self._mirror.sync(element)
            return PollReport(outcome=outcome, attempts=attempts,
                              retries=attempts - 1, changed=changed,
                              bandwidth=burned)
        if self._breaker is not None:
            self._breaker.record_failure(shard, completion)
        obs.counter_add("faults.failed_syncs")
        return PollReport(outcome=outcome, attempts=attempts,
                          retries=attempts - 1, changed=False,
                          bandwidth=burned)

    def _roll_period(self, time: float) -> None:
        period = int(time / self._period_length)
        if period > self._period:
            self._period = period
            self._period_spent = 0.0
