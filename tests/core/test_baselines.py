"""Tests for repro.core.baselines — uniform and proportional policies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import ProportionalFreshener, UniformFreshener
from repro.core.freshener import GeneralFreshener, PerceivedFreshener
from repro.errors import InfeasibleProblemError
from repro.workloads.catalog import Catalog

from tests.conftest import random_catalog


class TestUniformFreshener:
    def test_equal_frequencies(self, small_catalog):
        plan = UniformFreshener().plan(small_catalog, 5.0)
        assert np.allclose(plan.frequencies, 1.0)

    def test_budget_respected_with_sizes(self, sized_catalog):
        plan = UniformFreshener().plan(sized_catalog, 3.0)
        assert plan.bandwidth == pytest.approx(3.0, rel=1e-12)
        assert np.allclose(plan.frequencies, plan.frequencies[0])

    def test_rejects_bad_bandwidth(self, small_catalog):
        with pytest.raises(InfeasibleProblemError):
            UniformFreshener().plan(small_catalog, 0.0)

    def test_metadata(self, small_catalog):
        plan = UniformFreshener().plan(small_catalog, 5.0)
        assert plan.metadata["technique"] == "uniform-baseline"


class TestProportionalFreshener:
    def test_frequencies_track_rates(self, small_catalog):
        plan = ProportionalFreshener().plan(small_catalog, 5.0)
        ratio = plan.frequencies / small_catalog.change_rates
        assert np.allclose(ratio, ratio[0])

    def test_budget_respected(self, sized_catalog):
        plan = ProportionalFreshener().plan(sized_catalog, 3.0)
        assert plan.bandwidth == pytest.approx(3.0, rel=1e-12)

    def test_static_elements_unsynced(self):
        catalog = Catalog(access_probabilities=np.array([0.5, 0.5]),
                          change_rates=np.array([0.0, 2.0]))
        plan = ProportionalFreshener().plan(catalog, 2.0)
        assert plan.frequencies[0] == 0.0
        assert plan.frequencies[1] == pytest.approx(2.0)

    def test_all_static_catalog(self):
        catalog = Catalog(access_probabilities=np.array([0.5, 0.5]),
                          change_rates=np.zeros(2))
        plan = ProportionalFreshener().plan(catalog, 2.0)
        assert (plan.frequencies == 0.0).all()
        assert plan.general_freshness == pytest.approx(1.0)


class TestChoGarciaMolinaOrdering:
    """Ref [5]'s counterintuitive result: uniform ≥ proportional, and
    the optimal GF schedule ≥ uniform — on *average* freshness."""

    @given(st.integers(min_value=2, max_value=40),
           st.floats(min_value=1.0, max_value=40.0),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_uniform_beats_proportional_on_general_freshness(
            self, n, bandwidth, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, n)
        uniform = UniformFreshener().plan(catalog, bandwidth)
        proportional = ProportionalFreshener().plan(catalog, bandwidth)
        assert uniform.general_freshness >= \
            proportional.general_freshness - 1e-9

    @given(st.integers(min_value=2, max_value=40),
           st.floats(min_value=1.0, max_value=40.0),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_optimal_beats_uniform(self, n, bandwidth, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, n)
        optimal = GeneralFreshener().plan(catalog, bandwidth)
        uniform = UniformFreshener().plan(catalog, bandwidth)
        assert optimal.general_freshness >= \
            uniform.general_freshness - 1e-9

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_pf_beats_all_baselines_on_perceived_freshness(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 30)
        bandwidth = 15.0
        pf = PerceivedFreshener().plan(catalog, bandwidth)
        for baseline in (UniformFreshener(), ProportionalFreshener()):
            plan = baseline.plan(catalog, bandwidth)
            assert pf.perceived_freshness >= \
                plan.perceived_freshness - 1e-9
