"""Tier-1 static-analysis gate.

This module is the enforcement point for freshlint: the repository
tree must lint clean, and the gate must demonstrably *fail* when a
violation is introduced (negative tests seed FL001/FL003 violations
into a scratch tree shaped like ``src/`` and assert they are caught).

ruff and mypy are exercised when installed (the CI image installs
them via the ``lint`` extra); locally they are optional and the tests
skip rather than fail, keeping tier-1 runnable on the bare toolchain.
"""

from __future__ import annotations

import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from freshlint import run_paths, run_seedflow

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "freshlint"

#: The paths the linter must keep clean (mirrors CI and the docs).
LINTED_PATHS = ("src", "examples", "benchmarks", "tools")


def _lint_repo() -> list:
    paths = [REPO_ROOT / p for p in LINTED_PATHS if (REPO_ROOT / p).exists()]
    return run_paths(paths, root=REPO_ROOT)


# ---------------------------------------------------------------------------
# positive gate: the tree is clean


def test_repository_tree_is_freshlint_clean() -> None:
    violations = _lint_repo()
    rendered = "\n".join(v.render() for v in violations)
    assert not violations, f"freshlint violations:\n{rendered}"


def test_linted_paths_exist() -> None:
    # Guard against the gate silently passing because a path vanished.
    for path in ("src", "examples", "benchmarks", "tools"):
        assert (REPO_ROOT / path).is_dir(), f"missing linted path {path}/"


def test_module_invocation_is_clean() -> None:
    """``python -m freshlint`` (the documented entry point) exits 0."""
    env_path = str(REPO_ROOT / "tools")
    result = subprocess.run(
        [sys.executable, "-m", "freshlint", *LINTED_PATHS, "--quiet"],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": env_path},
    )
    assert result.returncode == 0, result.stdout + result.stderr


# ---------------------------------------------------------------------------
# negative gate: seeded violations are caught


def _seed_tree(base: Path, relative: str, fixture: str) -> Path:
    """Copy a bad fixture into a src/-shaped scratch tree.

    The scratch root must come from ``tmp_path_factory.mktemp`` with a
    neutral name: pytest's per-test ``tmp_path`` embeds the test name
    (``test_...``), which the linter's full-path test-glob fallback
    would match, exempting the seeded file from test-scoped rules.
    """
    destination = base / relative
    destination.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(FIXTURES / fixture, destination)
    return base


def test_gate_catches_seeded_fl001_violation(
        tmp_path_factory: pytest.TempPathFactory) -> None:
    root = _seed_tree(tmp_path_factory.mktemp("seeded_tree"),
                      "src/repro/numerics/streams.py",
                      "bad_fl001_legacy_rng.py")
    violations = run_paths([root / "src"], root=root)
    assert {"FL001"} == {v.code for v in violations}
    assert len(violations) == 4


def test_gate_catches_seeded_fl003_violation(
        tmp_path_factory: pytest.TempPathFactory) -> None:
    root = _seed_tree(tmp_path_factory.mktemp("seeded_tree"),
                      "src/repro/workloads/__init__.py",
                      "bad_fl003_pkg/__init__.py")
    violations = run_paths([root / "src"], root=root)
    assert "FL003" in {v.code for v in violations}


def test_gate_catches_seeded_mutation_in_solver_path(
        tmp_path_factory: pytest.TempPathFactory) -> None:
    root = _seed_tree(tmp_path_factory.mktemp("seeded_tree"),
                      "src/repro/core/mutate.py",
                      "bad_fl005_mutation.py")
    violations = run_paths([root / "src"], root=root)
    assert "FL005" in {v.code for v in violations}


def test_gate_catches_seeded_import_cycle(
        tmp_path_factory: pytest.TempPathFactory) -> None:
    root = tmp_path_factory.mktemp("seeded_tree")
    package = root / "src" / "repro"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text('"""Seeded pkg."""\n',
                                         encoding="utf-8")
    (package / "first.py").write_text(
        '"""Half a cycle."""\nfrom repro import second\n',
        encoding="utf-8")
    (package / "second.py").write_text(
        '"""Other half."""\nfrom repro import first\n',
        encoding="utf-8")
    violations = run_paths([root / "src"], root=root)
    assert "FL008" in {v.code for v in violations}


def test_gate_catches_seeded_wall_clock_in_sim_path(
        tmp_path_factory: pytest.TempPathFactory) -> None:
    root = _seed_tree(tmp_path_factory.mktemp("seeded_tree"),
                      "src/repro/sim/clocked.py",
                      "bad_fl009_wall_clock.py")
    violations = run_paths([root / "src"], root=root)
    assert "FL009" in {v.code for v in violations}


@pytest.mark.parametrize("module", ["topology.py", "correlated.py"])
def test_gate_catches_wall_clock_in_relay_tree_modules(
        tmp_path_factory: pytest.TempPathFactory,
        module: str) -> None:
    """Hop ledgers and outage windows run on simulated time only:
    a wall-clock read seeded into either relay-tree module must
    trip FL009 under the default (unwidened) config."""
    root = _seed_tree(tmp_path_factory.mktemp("seeded_tree"),
                      f"src/repro/faults/{module}",
                      "bad_fl009_wall_clock.py")
    violations = run_paths([root / "src"], root=root)
    assert "FL009" in {v.code for v in violations}


@pytest.mark.parametrize("module", ["topology.py", "correlated.py"])
def test_relay_tree_modules_sit_in_the_strict_scopes(
        module: str) -> None:
    """The real topology modules match the default clock and library
    globs — both the faults/ directory glob and their explicit
    entries — so FL009 and the seedflow FL011 gate cover them."""
    from freshlint import parse_module

    context = parse_module(
        REPO_ROOT / "src" / "repro" / "faults" / module,
        root=REPO_ROOT)
    assert context.is_clock_path
    assert context.is_library


@pytest.mark.parametrize("module", ["fastpath.py", "events.py"])
def test_kernel_modules_sit_in_the_strict_scopes(
        module: str) -> None:
    """The replay kernel and the event-tape layout are pinned into
    both the FL009 clock scope (explicit entries on top of the sim/
    glob) and the FL014 kernel-dtype scope, so wall-clock reads and
    dtype indiscipline trip the gate under the default config."""
    from freshlint import parse_module

    context = parse_module(
        REPO_ROOT / "src" / "repro" / "sim" / module,
        root=REPO_ROOT)
    assert context.is_clock_path
    assert context.is_kernel_path
    assert context.is_library


def test_gate_catches_dtype_indiscipline_in_events_module(
        tmp_path_factory: pytest.TempPathFactory) -> None:
    """FL014 must police the tape layout, not just the kernels:
    loose-dtype code seeded into the events module trips the gate
    under the default (unwidened) config."""
    root = _seed_tree(tmp_path_factory.mktemp("seeded_tree"),
                      "src/repro/sim/events.py",
                      "bad_fl014_loose_dtypes.py")
    violations = run_seedflow([root / "src"], root=root)
    assert "FL014" in {v.code for v in violations}


# ---------------------------------------------------------------------------
# seedflow: project-wide RNG-provenance gate


def test_repository_tree_is_seedflow_clean() -> None:
    paths = [REPO_ROOT / p for p in LINTED_PATHS
             if (REPO_ROOT / p).exists()]
    violations = run_seedflow(paths, root=REPO_ROOT)
    rendered = "\n".join(v.render() for v in violations)
    assert not violations, f"seedflow violations:\n{rendered}"


def test_seedflow_cli_invocation_is_clean() -> None:
    """``python -m freshlint --seedflow`` (the CI step) exits 0."""
    env_path = str(REPO_ROOT / "tools")
    result = subprocess.run(
        [sys.executable, "-m", "freshlint", *LINTED_PATHS,
         "--seedflow", "--quiet"],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": env_path},
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_gate_catches_seeded_non_crn_rng(
        tmp_path_factory: pytest.TempPathFactory) -> None:
    root = _seed_tree(tmp_path_factory.mktemp("seeded_tree"),
                      "src/repro/analysis/raw_seed.py",
                      "bad_fl011_raw_seed.py")
    violations = run_seedflow([root / "src"], root=root)
    assert {"FL011"} == {v.code for v in violations}


def test_gate_catches_seeded_rng_pool_crossing(
        tmp_path_factory: pytest.TempPathFactory) -> None:
    root = _seed_tree(tmp_path_factory.mktemp("seeded_tree"),
                      "src/repro/analysis/pool_rng.py",
                      "bad_fl012_rng_to_pool.py")
    violations = run_seedflow([root / "src"], root=root)
    assert "FL012" in {v.code for v in violations}


def test_kernel_pair_annotations_are_registered() -> None:
    """The fastpath kernels must stay paired with their references."""
    from freshlint import build_project

    project = build_project([REPO_ROOT / "src" / "repro"],
                            root=REPO_ROOT)
    paired = {pair.kernel: pair.reference for pair in project.pairs}
    assert paired.get("repro.sim.fastpath.replay_fastpath") == \
        "repro.sim.simulation.Simulation.run"
    assert paired.get("repro.sim.fastpath.replay_fastpath_faulted") \
        == "repro.sim.simulation.Simulation.run"
    assert paired.get("repro.sim.fastpath.replay_fastpath_ge") == \
        "repro.sim.simulation.Simulation.run"
    assert paired.get("repro.sim.fastpath.resolve_iid_faults") == \
        "repro.faults.channel.SyncChannel.sync"
    assert paired.get("repro.sim.fastpath.resolve_ge_faults") == \
        "repro.faults.channel.SyncChannel.sync"


def test_bad_fixtures_are_not_in_the_linted_tree() -> None:
    """The seeded-violation fixtures must never be linted by the gate."""
    linted = {v.path.resolve() for v in _lint_repo()}
    assert not any(FIXTURES in p.parents for p in linted)
    # And structurally: fixtures live under tests/, which is not linted.
    assert FIXTURES.is_relative_to(REPO_ROOT / "tests")


# ---------------------------------------------------------------------------
# ruff / mypy (optional locally, mandatory in CI)


def _tool_missing(tool: str) -> bool:
    return shutil.which(tool) is None


@pytest.mark.skipif(_tool_missing("ruff"),
                    reason="ruff not installed (CI installs the lint extra)")
def test_ruff_is_clean() -> None:
    result = subprocess.run(
        ["ruff", "check", "src", "tools", "examples", "benchmarks",
         "tests"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(_tool_missing("mypy"),
                    reason="mypy not installed (CI installs the lint extra)")
def test_mypy_is_clean() -> None:
    result = subprocess.run(
        ["mypy", "src/repro", "tools/freshlint"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


# ---------------------------------------------------------------------------
# pragma hygiene


def test_every_pragma_in_the_tree_is_documented() -> None:
    """Each ``freshlint: disable`` pragma must carry a justification.

    Convention (docs/STATIC_ANALYSIS.md): the pragma line or the line
    above it must contain a prose comment explaining *why* — a bare
    suppression is itself a violation of the policy.
    """
    import io
    import tokenize

    pragma_re = re.compile(r"freshlint:\s*disable")
    offenders: list[str] = []
    for rel in LINTED_PATHS:
        base = REPO_ROOT / rel
        if not base.exists():
            continue
        for path in sorted(base.rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            lines = source.splitlines()
            # Tokenize so pragma *examples* inside docstrings (STRING
            # tokens, e.g. in tools/freshlint/engine.py) don't count.
            comment_lines = [
                tok.start[0]
                for tok in tokenize.generate_tokens(
                    io.StringIO(source).readline)
                if tok.type == tokenize.COMMENT
                and pragma_re.search(tok.string)
            ]
            for lineno in comment_lines:
                line = lines[lineno - 1]
                match = pragma_re.search(line)
                tail = line[match.end():] if match else ""
                # justification after the codes on the same line...
                justified = "--" in tail or "#" in tail
                # ...or a comment line directly above.
                if not justified and lineno > 1:
                    justified = lines[lineno - 2].lstrip().startswith("#")
                if not justified:
                    offenders.append(f"{path}:{lineno}")
    assert not offenders, (
        "undocumented freshlint pragmas (add a reason):\n"
        + "\n".join(offenders))
