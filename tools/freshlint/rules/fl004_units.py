"""FL004 — physical quantities must state their units.

The paper's Core Problem mixes three dimensioned quantities: change
rates λ (changes **per sync period**), sync frequencies f (syncs **per
period**), and bandwidth B (cost·units **per period**, where cost is
the object size).  Confusing "per period" with "per second" — or
feeding a per-day λ to a per-hour budget — produces schedules that are
silently, plausibly wrong (the solver is scale-covariant, so nothing
crashes).  Every public library function taking such a parameter must
say the unit in its docstring.
"""

from __future__ import annotations

import ast
from typing import Iterator

from freshlint.autofix import Fix, TextEdit
from freshlint.engine import ModuleContext, Violation
from freshlint.rules.base import Rule, function_params

__all__ = ["UnitsInDocstring", "UNIT_MARKERS"]

#: Any of these (case-insensitive) counts as a unit statement.
UNIT_MARKERS = (
    "per period",
    "per-period",
    "per sync period",
    "per unit time",
    "per second",
    "per hour",
    "per day",
    "syncs per",
    "changes per",
    "accesses per",
    "polls per",
    "bandwidth units",
    "cost units",
    "size units",
    "units of",
    "unit-less",
    "dimensionless",
)


def _walk_with_override_flag(tree: ast.Module,
                             ) -> Iterator[tuple[ast.FunctionDef
                                                 | ast.AsyncFunctionDef,
                                                 bool]]:
    """Yield (function, may_inherit_docstring) pairs.

    A method of a class that itself has base classes may rely on the
    documentation convention that an undocumented override inherits
    the base method's docstring — those are exempt from the
    missing-docstring finding (but not from the missing-units finding
    once they *do* carry a docstring).
    """
    class_stack: list[ast.ClassDef] = []

    def visit(node: ast.AST) -> Iterator[tuple[ast.FunctionDef
                                               | ast.AsyncFunctionDef,
                                               bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                class_stack.append(child)
                yield from visit(child)
                class_stack.pop()
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                in_subclass = bool(class_stack) and bool(
                    class_stack[-1].bases or class_stack[-1].keywords)
                yield child, in_subclass
                yield from visit(child)
            else:
                yield from visit(child)

    yield from visit(tree)


def _units_sentence(params: str) -> str:
    return (f"Units: {params} measured per period "
            "(auto-added; verify the dimension).")


def _stub_docstring_fix(node: ast.FunctionDef | ast.AsyncFunctionDef,
                        params: str) -> Fix | None:
    """Insert a stub units docstring as the first body statement.

    Skipped for one-liner defs (``def f(rate): return rate``) — there
    is no clean line to insert on.
    """
    first = node.body[0]
    if first.lineno == node.lineno:
        return None
    indent = " " * first.col_offset
    text = f'{indent}"""{_units_sentence(params)}"""\n'
    edit = TextEdit(line=first.lineno, col=0, end_line=first.lineno,
                    end_col=0, replacement=text)
    return Fix(description=f"insert stub units docstring for "
                           f"`{node.name}`", edits=(edit,))


def _append_units_fix(context: ModuleContext,
                      node: ast.FunctionDef | ast.AsyncFunctionDef,
                      params: str) -> Fix | None:
    """Append a units sentence inside the existing docstring."""
    first = node.body[0]
    if not (isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)):
        return None  # pragma: no cover - guarded by the caller
    const = first.value
    if const.end_lineno is None or const.end_col_offset is None:
        return None
    end_line, end_col = const.end_lineno, const.end_col_offset
    closing = context.lines[end_line - 1][:end_col]
    quote_len = 3 if closing.endswith(('"""', "'''")) else 1
    description = f"append units sentence to `{node.name}` docstring"
    if const.lineno == end_line:
        # Single-line docstring: extend it in place.
        edit = TextEdit(line=end_line, col=end_col - quote_len,
                        end_line=end_line, end_col=end_col - quote_len,
                        replacement=f" {_units_sentence(params)}")
        return Fix(description=description, edits=(edit,))
    indent = " " * first.col_offset
    if closing[:end_col - quote_len].strip() == "":
        # Closing quotes on their own line: insert a line above them.
        edit = TextEdit(line=end_line, col=0, end_line=end_line,
                        end_col=0,
                        replacement=f"\n{indent}"
                                    f"{_units_sentence(params)}\n")
        return Fix(description=description, edits=(edit,))
    # Closing quotes trail the last content line: extend that line.
    edit = TextEdit(line=end_line, col=end_col - quote_len,
                    end_line=end_line, end_col=end_col - quote_len,
                    replacement=f" {_units_sentence(params)}")
    return Fix(description=description, edits=(edit,))


def _is_dimensioned(param: str) -> bool:
    return (param == "bandwidth"
            or param.endswith("bandwidth")
            or param.endswith("rate")
            or param.endswith("rates")
            or param.endswith("frequency")
            or param.endswith("frequencies"))


class UnitsInDocstring(Rule):
    """Public functions with rate/frequency/bandwidth params need units."""

    code = "FL004"
    name = "units-in-docstring"
    summary = ("public library functions taking rates/frequencies/"
               "bandwidth must state units in their docstring")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        if not context.is_library or context.is_test:
            return
        for node, may_inherit_doc in _walk_with_override_flag(
                context.tree):
            if node.name.startswith("_"):
                continue
            dimensioned = [p for p in function_params(node)
                           if _is_dimensioned(p)]
            if not dimensioned:
                continue
            doc = ast.get_docstring(node)
            params = ", ".join(dimensioned)
            if doc is None:
                if may_inherit_doc:
                    continue  # override inherits the base docstring
                yield self.violation(
                    context, node,
                    f"public function `{node.name}` takes dimensioned "
                    f"parameter(s) {params} but has no docstring; state "
                    "the units (e.g. 'changes per period')",
                    fix=_stub_docstring_fix(node, params))
                continue
            lowered = doc.lower()
            if not any(marker in lowered for marker in UNIT_MARKERS):
                yield self.violation(
                    context, node,
                    f"docstring of `{node.name}` never states units for "
                    f"{params}; the solver is scale-covariant, so a "
                    "per-day rate against a per-hour budget fails "
                    "silently - say e.g. 'changes per period'",
                    fix=_append_units_fix(context, node, params))
