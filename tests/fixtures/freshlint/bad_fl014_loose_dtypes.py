"""FL014 fixture: kernel dtype-discipline violations."""

import numpy as np


def build_table():
    weights = np.array([1, 2, 3])  # no dtype=: platform-dependent
    boxed = np.array([1.0, 2.0], dtype=object)  # object upcast
    return weights, boxed


def upcast(values):
    return values.astype(object)  # object upcast


def streams_match(a, b):
    return np.array_equal(a, b)  # float ==: masks -0.0 / NaN bits
