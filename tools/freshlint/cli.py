"""freshlint command-line interface.

Exit codes follow the usual linter convention: 0 clean, 1 violations
found, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from freshlint.engine import LintConfig, run_paths
from freshlint.rules import ALL_RULES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="freshlint",
        description=("Domain-aware static analysis for the data-"
                     "freshening codebase (rules FL001-FL007)."),
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--select", metavar="CODES", default="",
                        help="comma-separated rule codes to run "
                             "exclusively (e.g. FL001,FL003)")
    parser.add_argument("--ignore", metavar="CODES", default="",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    return parser


def _parse_codes(raw: str) -> tuple[str, ...]:
    return tuple(code.strip().upper() for code in raw.split(",")
                 if code.strip())


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name:<28} {rule.summary}")
        return 0

    known = {rule.code for rule in ALL_RULES}
    select = _parse_codes(options.select)
    ignore = _parse_codes(options.ignore)
    unknown = (set(select) | set(ignore)) - known
    if unknown:
        parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}")

    config = LintConfig(select=select, ignore=ignore)
    violations = run_paths(options.paths, config)
    for violation in violations:
        print(violation.render())
    if not options.quiet:
        noun = "violation" if len(violations) == 1 else "violations"
        status = f"freshlint: {len(violations)} {noun}"
        print(status, file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
