"""Exporter tests: JSONL round-trip, Prometheus text, summary table."""

from __future__ import annotations

import json

from repro.obs.export import (
    prometheus_text,
    read_jsonl,
    summary_text,
    write_jsonl,
)
from repro.obs.registry import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter_add("solver.calls", 3.0)
    registry.counter_add("sim.syncs", 42.0)
    registry.gauge_set("sim.budget_utilization", 0.95)
    registry.observe("solver.iterations", 12.0, buckets=(5.0, 10.0, 20.0))
    registry.observe("solver.iterations", 7.0)
    with registry.span("manager.plan"):
        with registry.span("solver.solve_weighted"):
            pass
    registry.event("sim.period", period=0, syncs=4, bandwidth=8.0)
    return registry


def test_write_jsonl_emits_events_then_metric_snapshot(tmp_path):
    registry = populated_registry()
    path = write_jsonl(registry, tmp_path / "tape.jsonl")
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    kinds = [line["kind"] for line in lines]
    first_metric = kinds.index("metric")
    assert "metric" not in kinds[:first_metric]
    assert all(kind == "metric" for kind in kinds[first_metric:])
    assert lines[0]["kind"] == "span" or lines[0]["kind"] == "sim.period"
    types = {line["type"] for line in lines[first_metric:]}
    assert types == {"counter", "gauge", "histogram", "span"}


def test_jsonl_round_trip_preserves_both_renderings(tmp_path):
    registry = populated_registry()
    path = write_jsonl(registry, tmp_path / "tape.jsonl")
    rebuilt = read_jsonl(path)
    assert prometheus_text(rebuilt) == prometheus_text(registry)
    assert summary_text(rebuilt) == summary_text(registry)


def test_prometheus_counters_get_total_suffix_and_type_lines():
    text = prometheus_text(populated_registry())
    assert "# TYPE repro_solver_calls_total counter" in text
    assert "repro_solver_calls_total 3.0" in text
    assert "# TYPE repro_sim_budget_utilization gauge" in text
    assert "repro_sim_budget_utilization 0.95" in text


def test_prometheus_histograms_are_cumulative_with_inf_bucket():
    text = prometheus_text(populated_registry())
    assert 'repro_solver_iterations_bucket{le="10.0"} 1' in text
    assert 'repro_solver_iterations_bucket{le="20.0"} 2' in text
    assert 'repro_solver_iterations_bucket{le="+Inf"} 2' in text
    assert "repro_solver_iterations_sum 19.0" in text
    assert "repro_solver_iterations_count 2" in text


def test_prometheus_spans_export_as_summary_pairs():
    text = prometheus_text(populated_registry())
    assert 'repro_span_seconds_count{span="manager.plan"} 1' in text
    assert (
        'repro_span_seconds_count{span="manager.plan/solver.solve_weighted"} 1'
        in text
    )
    assert 'repro_span_seconds_sum{span="manager.plan"}' in text


def test_summary_text_sections_cover_every_store():
    text = summary_text(populated_registry())
    for heading in ("counters", "gauges", "histograms",
                    "spans (wall seconds)", "event tape"):
        assert heading in text
    assert "solver.calls" in text
    assert "manager.plan/solver.solve_weighted" in text


def test_summary_text_of_empty_registry_says_so():
    assert summary_text(MetricsRegistry()) == "telemetry: registry is empty\n"
