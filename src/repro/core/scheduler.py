"""Concrete synchronization schedules (the Fixed-Order policy in time).

The solvers produce per-element sync *frequencies*; a mirror needs
actual poll instants.  Under the Fixed-Order policy every element is
synchronized at evenly spaced instants — element i with frequency fᵢ
(per period of length T) is polled every T/fᵢ time units.  Phases are
staggered deterministically so the poll load is spread across the
period instead of bursting at t = 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.errors import ScheduleError

__all__ = ["PhasePolicy", "SyncSchedule"]


class PhasePolicy(str, Enum):
    """How the first sync of each element is offset within its interval."""

    #: All elements fire their first sync at t = 0 (bursty; useful in
    #: tests for predictability).
    ZERO = "zero"
    #: Element i starts at a deterministic fraction of its interval,
    #: spreading load evenly (golden-ratio low-discrepancy offsets).
    STAGGERED = "staggered"
    #: Phases are drawn uniformly at random in [0, interval).
    RANDOM = "random"


_GOLDEN = 0.6180339887498949


@dataclass(frozen=True)
class SyncSchedule:
    """A Fixed-Order synchronization schedule.

    Attributes:
        frequencies: Syncs per period for each element, ``f ≥ 0``.
        period_length: Length T of one sync period in clock time.
        phases: First-sync offset of each element, in clock time,
            within ``[0, interval)``; meaningless (0) for f = 0.
    """

    frequencies: np.ndarray
    period_length: float
    phases: np.ndarray

    def __post_init__(self) -> None:
        frequencies = np.asarray(self.frequencies, dtype=float)
        phases = np.asarray(self.phases, dtype=float)
        if frequencies.ndim != 1:
            raise ScheduleError("frequencies must be 1-D")
        if (frequencies < 0.0).any():
            raise ScheduleError("frequencies must be nonnegative")
        if self.period_length <= 0.0:
            raise ScheduleError(
                f"period_length must be > 0, got {self.period_length}")
        if phases.shape != frequencies.shape:
            raise ScheduleError("phases must match frequencies in shape")
        if (phases < 0.0).any():
            raise ScheduleError("phases must be nonnegative")
        frequencies = frequencies.copy()
        phases = phases.copy()
        frequencies.flags.writeable = False
        phases.flags.writeable = False
        object.__setattr__(self, "frequencies", frequencies)
        object.__setattr__(self, "phases", phases)

    @classmethod
    def from_frequencies(cls, frequencies: np.ndarray, *,
                         period_length: float = 1.0,
                         phase_policy: PhasePolicy | str =
                         PhasePolicy.STAGGERED,
                         rng: np.random.Generator | None = None,
                         ) -> "SyncSchedule":
        """Build a schedule from per-period frequencies.

        Args:
            frequencies: Syncs per period per element.
            period_length: Clock length of a period.
            phase_policy: How first-sync offsets are chosen.
            rng: Required for :attr:`PhasePolicy.RANDOM`.

        Returns:
            The schedule.

        Raises:
            ScheduleError: For invalid inputs or a missing ``rng``.
        """
        frequencies = np.asarray(frequencies, dtype=float)
        policy = (phase_policy if isinstance(phase_policy, PhasePolicy)
                  else PhasePolicy(str(phase_policy).lower()))
        with np.errstate(divide="ignore"):
            intervals = np.where(frequencies > 0.0,
                                 period_length / np.maximum(frequencies,
                                                            1e-300), 0.0)
        if policy is PhasePolicy.ZERO:
            phases = np.zeros_like(frequencies)
        elif policy is PhasePolicy.STAGGERED:
            n = frequencies.shape[0]
            fractions = (np.arange(n) * _GOLDEN) % 1.0
            phases = fractions * intervals
        else:
            if rng is None:
                raise ScheduleError("random phases require an rng")
            phases = rng.uniform(0.0, 1.0, size=frequencies.shape) * intervals
        return cls(frequencies=frequencies, period_length=period_length,
                   phases=phases)

    @property
    def n_elements(self) -> int:
        """Number of elements covered by the schedule."""
        return int(self.frequencies.shape[0])

    def intervals(self) -> np.ndarray:
        """Clock time between syncs per element (inf for f = 0)."""
        with np.errstate(divide="ignore"):
            return np.where(self.frequencies > 0.0,
                            self.period_length / np.maximum(
                                self.frequencies, 1e-300), np.inf)

    def sync_times(self, element: int, horizon: float) -> np.ndarray:
        """All sync instants of one element in ``[0, horizon)``.

        Args:
            element: Element index.
            horizon: End of the window, > 0.

        Returns:
            Sorted sync times (possibly empty).
        """
        if horizon <= 0.0:
            raise ScheduleError(f"horizon must be > 0, got {horizon}")
        f = float(self.frequencies[element])
        if f <= 0.0:
            return np.empty(0)
        interval = self.period_length / f
        start = float(self.phases[element])
        count = int(np.ceil(max(horizon - start, 0.0) / interval))
        times = start + interval * np.arange(count)
        return times[times < horizon]

    def events_until(self, horizon: float) -> tuple[np.ndarray, np.ndarray]:
        """All sync events in ``[0, horizon)``, time-ordered.

        Args:
            horizon: End of the window, > 0.

        Returns:
            ``(times, elements)`` — parallel arrays sorted by time.
        """
        if horizon <= 0.0:
            raise ScheduleError(f"horizon must be > 0, got {horizon}")
        all_times: list[np.ndarray] = []
        all_elements: list[np.ndarray] = []
        intervals = self.intervals()
        for element in range(self.n_elements):
            if not np.isfinite(intervals[element]):
                continue
            times = self.sync_times(element, horizon)
            if times.size:
                all_times.append(times)
                all_elements.append(np.full(times.shape, element,
                                            dtype=np.int64))
        if not all_times:
            return np.empty(0), np.empty(0, dtype=np.int64)
        times = np.concatenate(all_times)
        elements = np.concatenate(all_elements)
        order = np.argsort(times, kind="stable")
        return times[order], elements[order]

    def events_between(self, start: float, end: float
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Sync events in ``[start, end)`` — a streaming window.

        Lets an executor pull the schedule one window at a time
        instead of materializing an unbounded horizon.

        Args:
            start: Window start, >= 0.
            end: Window end, > ``start``.

        Returns:
            ``(times, elements)`` sorted by time within the window.
        """
        if start < 0.0:
            raise ScheduleError(f"start must be >= 0, got {start}")
        if end <= start:
            raise ScheduleError(
                f"end must exceed start, got [{start}, {end})")
        times, elements = self.events_until(end)
        keep = times >= start
        return times[keep], elements[keep]

    def syncs_per_period(self) -> float:
        """Total sync operations per period, ``Σ fᵢ``."""
        return float(self.frequencies.sum())

    def bandwidth_per_period(self, sizes: np.ndarray) -> float:
        """Total bandwidth per period, ``Σ sᵢ·fᵢ``."""
        sizes = np.asarray(sizes, dtype=float)
        if sizes.shape != self.frequencies.shape:
            raise ScheduleError("sizes must match frequencies in shape")
        return float(sizes @ self.frequencies)
