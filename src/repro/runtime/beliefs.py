"""The mirror site's beliefs: what it thinks p and λ currently are.

The paper's schedulers assume the master profile and the change rates
are known.  A deployed mirror has neither — it has a request log and
the changed/unchanged bit of every poll it performed.  A
:class:`BeliefState` maintains the mirror's working estimates of both
from exactly those observations:

* the profile comes from a :class:`~repro.profiles.learning.
  ProfileLearner` (exponentially decayed counts + smoothing);
* the change rates come from accumulated censored poll statistics
  fed to the Cho/Garcia-Molina bias-reduced estimator, with a prior
  rate for never-polled (or rarely-polled) elements.

The state also reports how far the believed profile has drifted from
the profile the current schedule was planned for — the replanning
trigger the paper's §3 motivates ("for large real-world problems ...
we would need to periodically solve the Core Problem").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.estimation.change_rate import bias_reduced_rate_estimate
from repro.profiles.learning import ProfileLearner
from repro.workloads.catalog import Catalog

__all__ = ["BeliefState"]


class BeliefState:
    """Running estimates of the master profile and change rates.

    Args:
        n_elements: Mirror size.
        sizes: Object sizes (carried into the believed catalogs).
        prior_rate: Change rate assumed for elements with little or no
            poll history, > 0.  A reasonable choice is the expected
            mean rate (e.g. updates-per-period / N).
        profile_decay: Per-period decay of the learned profile counts.
        profile_smoothing: Laplace smoothing of the learned profile.
        rate_blend_polls: Number of polls at which the estimated rate
            carries equal weight to the prior (simple shrinkage; keeps
            single-poll estimates from whipsawing the schedule).
        rate_decay: Per-period decay of the accumulated poll
            statistics, in ``(0, 1]``.  1.0 (default) never forgets —
            right for stationary sources; values below 1 let the rate
            estimates track *drifting* change rates the same way the
            profile learner tracks drifting interest.
        loss_decay: Per-period decay of the wire-level attempt
            statistics behind :meth:`believed_loss_rate`, in
            ``(0, 1]``.  The default (0.7) weights the last few
            periods heavily so the loss estimate tracks outages
            starting and ending within a handful of periods.
    """

    def __init__(self, n_elements: int, *,
                 sizes: np.ndarray | None = None,
                 prior_rate: float = 1.0,
                 profile_decay: float = 0.9,
                 profile_smoothing: float = 0.5,
                 rate_blend_polls: float = 4.0,
                 rate_decay: float = 1.0,
                 loss_decay: float = 0.7) -> None:
        if n_elements < 1:
            raise ValidationError(
                f"n_elements must be >= 1, got {n_elements}")
        if prior_rate <= 0.0:
            raise ValidationError(
                f"prior_rate must be > 0, got {prior_rate}")
        if rate_blend_polls <= 0.0:
            raise ValidationError(
                f"rate_blend_polls must be > 0, got {rate_blend_polls}")
        if not 0.0 < rate_decay <= 1.0:
            raise ValidationError(
                f"rate_decay must be in (0, 1], got {rate_decay}")
        if not 0.0 < loss_decay <= 1.0:
            raise ValidationError(
                f"loss_decay must be in (0, 1], got {loss_decay}")
        self._rate_decay = rate_decay
        self._loss_decay = loss_decay
        self._fault_attempts = 0.0
        self._fault_failures = 0.0
        self._n = n_elements
        if sizes is None:
            self._sizes = np.ones(n_elements)
        else:
            self._sizes = np.asarray(sizes, dtype=float)
            if self._sizes.shape != (n_elements,):
                raise ValidationError(
                    f"sizes shape {self._sizes.shape} does not match "
                    f"{n_elements} elements")
        self._prior_rate = prior_rate
        self._blend = rate_blend_polls
        self._learner = ProfileLearner(n_elements, decay=profile_decay,
                                       smoothing=profile_smoothing)
        self._polls = np.zeros(n_elements)
        self._changes = np.zeros(n_elements)
        self._poll_time = np.zeros(n_elements)

    @property
    def n_elements(self) -> int:
        """Mirror size."""
        return self._n

    def observe_period(self, access_counts: np.ndarray,
                       poll_counts: np.ndarray,
                       changed_poll_counts: np.ndarray,
                       frequencies: np.ndarray) -> None:
        """Fold one period's observations into the beliefs.

        Args:
            access_counts: Accesses per element this period.
            poll_counts: Polls per element this period.
            changed_poll_counts: Polls that found a change.
            frequencies: The schedule that produced the polls (per
                period) — needed to convert poll counts into observed
                poll *intervals* for the rate estimator.
        """
        access_counts = np.asarray(access_counts, dtype=np.int64)
        poll_counts = np.asarray(poll_counts, dtype=float)
        changed = np.asarray(changed_poll_counts, dtype=float)
        frequencies = np.asarray(frequencies, dtype=float)
        for name, array in (("access_counts", access_counts),
                            ("poll_counts", poll_counts),
                            ("changed_poll_counts", changed),
                            ("frequencies", frequencies)):
            if array.shape != (self._n,):
                raise ValidationError(
                    f"{name} shape {array.shape} does not match "
                    f"{self._n} elements")
        if (changed > poll_counts).any():
            raise ValidationError(
                "cannot observe more changed polls than polls")

        self._learner.observe(
            np.repeat(np.arange(self._n), access_counts))
        self._learner.end_period()
        if self._rate_decay < 1.0:
            self._polls *= self._rate_decay
            self._changes *= self._rate_decay
            self._poll_time *= self._rate_decay
        self._polls += poll_counts
        self._changes += changed
        # Accumulate observed polling *time* so elements polled at
        # different frequencies are comparable: n polls at frequency f
        # observe n/f periods of the change process.
        with np.errstate(divide="ignore", invalid="ignore"):
            spans = np.where(frequencies > 0.0,
                             poll_counts / np.maximum(frequencies,
                                                      1e-300), 0.0)
        self._poll_time += spans

    def observe_faults(self, attempted: int, failed: int) -> None:
        """Fold one period's wire-level attempt accounting in.

        Kept separate from :meth:`observe_period` deliberately:
        ``poll_counts`` there must only carry *successful* polls (a
        failed attempt reveals nothing about whether the element
        changed), while the attempt/failure totals here drive the
        channel-quality estimate.

        Args:
            attempted: Poll attempts made on the wire this period
                (including retries).
            failed: Attempts that failed, ``0 <= failed <=
                attempted``.
        """
        if attempted < 0 or failed < 0 or failed > attempted:
            raise ValidationError(
                f"need 0 <= failed <= attempted, got failed={failed} "
                f"attempted={attempted}")
        self._fault_attempts = (self._loss_decay * self._fault_attempts
                                + attempted)
        self._fault_failures = (self._loss_decay * self._fault_failures
                                + failed)

    def believed_loss_rate(self) -> float:
        """Decayed estimate of the poll-attempt failure rate.

        Returns:
            The fraction of recent attempts that failed, in
            ``[0, 1]``; 0.0 before any attempt has been observed (so
            a fault-free manager plans against exactly B).
        """
        if self._fault_attempts <= 0.0:
            return 0.0
        return float(min(self._fault_failures / self._fault_attempts,
                         1.0))

    def believed_profile(self) -> np.ndarray:
        """Current profile estimate (a probability vector)."""
        return self._learner.estimate().probabilities

    def believed_rates(self) -> np.ndarray:
        """Current change-rate estimates, shrunk toward the prior.

        Elements are treated as if all their polls happened at their
        average observed interval; the bias-reduced estimator then
        applies, and the result is blended with the prior by poll
        count: ``(n·λ̂ + n₀·λ₀) / (n + n₀)``.
        """
        rates = np.full(self._n, self._prior_rate)
        observed = self._polls > 0
        if observed.any():
            intervals = self._poll_time[observed] / self._polls[observed]
            intervals = np.maximum(intervals, 1e-12)
            # The estimator is vectorized over elements but assumes
            # one shared interval; normalize each element's counts to
            # a unit interval instead: scale λ̂ by 1/interval.
            unit = bias_reduced_rate_estimate(self._polls[observed],
                                              self._changes[observed],
                                              1.0)
            estimates = unit / intervals
            weight = self._polls[observed] / (self._polls[observed]
                                              + self._blend)
            rates[observed] = (weight * estimates
                               + (1.0 - weight) * self._prior_rate)
        return rates

    def believed_catalog(self) -> Catalog:
        """The catalog the scheduler should currently plan against."""
        return Catalog(access_probabilities=self.believed_profile(),
                       change_rates=self.believed_rates(),
                       sizes=self._sizes.copy())

    def profile_divergence_from(self,
                                reference: np.ndarray) -> float:
        """Total-variation distance of current beliefs from ``reference``.

        Args:
            reference: The profile the active schedule was planned on.

        Returns:
            ``½ Σ |p_now − p_ref|`` in [0, 1] — compare against a
            replan threshold.
        """
        reference = np.asarray(reference, dtype=float)
        if reference.shape != (self._n,):
            raise ValidationError(
                f"reference shape {reference.shape} does not match "
                f"{self._n} elements")
        return float(0.5 * np.abs(self.believed_profile()
                                  - reference).sum())
