"""Plain-text table formatting for experiment output.

The benchmark harness prints the same rows the paper's tables report;
this module renders them with aligned columns so shapes are easy to
compare side by side with the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.analysis.series import SweepResult
from repro.errors import ValidationError

__all__ = ["format_table", "format_sweep"]


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]], *,
                 float_format: str = "{:.4f}") -> str:
    """Render rows as an aligned text table.

    Args:
        headers: Column names.
        rows: Row cells; floats are formatted with ``float_format``,
            everything else with ``str``.
        float_format: Format spec applied to float cells.

    Returns:
        The table as a single string (no trailing newline).
    """
    headers = [str(header) for header in headers]

    def render(cell: object) -> str:
        if isinstance(cell, (float, np.floating)):
            return float_format.format(float(cell))
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells but there are "
                f"{len(headers)} headers")
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))

    separator = "  ".join("-" * width for width in widths)
    body = [line(headers), separator]
    body.extend(line(row) for row in rendered)
    return "\n".join(body)


def format_sweep(sweep: SweepResult, *,
                 float_format: str = "{:.4f}") -> str:
    """Render a sweep as one table: x column plus one column per curve.

    Curves sharing the sweep's x grid are required (which every
    experiment runner in this package guarantees).

    Args:
        sweep: The sweep to render.
        float_format: Format spec for numeric cells.

    Returns:
        A titled, aligned table.
    """
    if not sweep.series:
        return f"{sweep.name}: (no series)"
    x = sweep.series[0].x
    for series in sweep.series:
        if series.x.shape != x.shape or not np.allclose(series.x, x):
            raise ValidationError(
                f"series {series.label!r} does not share the sweep's x grid")
    headers = [sweep.x_label] + list(sweep.labels)
    rows = []
    for index in range(x.shape[0]):
        row: list[object] = [float(x[index])]
        row.extend(float(series.y[index]) for series in sweep.series)
        rows.append(row)
    title = f"{sweep.name}  ({sweep.y_label})"
    return title + "\n" + format_table(headers, rows,
                                       float_format=float_format)
