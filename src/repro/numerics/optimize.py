"""Generic nonlinear programming: projected gradient ascent.

The paper solved the Core Problem with the proprietary IMSL C
Numerical Libraries, treating it as a black-box nonlinear program.
This module is the open substitute: it maximizes a smooth concave
objective under one linear equality constraint and nonnegativity,

    max  f(x)   s.t.   a·x = B,  x ≥ 0,

by projected gradient ascent with backtracking line search.  Like any
generic NLP method its per-iteration cost is Θ(n) and its iteration
count grows with problem conditioning, so — exactly as the paper
reports for IMSL — it is fine for hundreds of variables and hopeless
for hundreds of thousands.  The timing experiments (Figure 9) run
through this solver; the exact water-filling solver in
:mod:`repro.core.solver` provides ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.errors import InfeasibleProblemError, ValidationError

__all__ = ["NlpResult", "ProjectedGradientSolver", "project_onto_scaled_simplex"]

#: ``objective(x)`` returns ``(value, gradient)``.
Objective = Callable[[np.ndarray], Tuple[float, np.ndarray]]


@dataclass(frozen=True)
class NlpResult:
    """Outcome of a projected-gradient solve.

    Attributes:
        x: The final iterate (feasible: ``a·x = B``, ``x ≥ 0``).
        value: Objective value at ``x``.
        iterations: Gradient iterations performed.
        converged: True if the projected-gradient stationarity test
            passed before the iteration budget ran out.
        projected_gradient_norm: Norm of the last projected step
            direction, the stationarity residual.
    """

    x: np.ndarray
    value: float
    iterations: int
    converged: bool
    projected_gradient_norm: float


def project_onto_scaled_simplex(y: np.ndarray, costs: np.ndarray,
                                budget: float) -> np.ndarray:
    """Euclidean projection of ``y`` onto ``{x ≥ 0, costs·x = budget}``.

    The KKT conditions give ``x = max(y − τ·costs, 0)`` for the unique
    ``τ`` with ``costs·x = budget``; that scalar is found by bisection
    (the cost of the thresholded vector is continuous and decreasing
    in ``τ``).

    Args:
        y: Point to project, shape ``(n,)``.
        costs: Positive per-coordinate costs ``a``, shape ``(n,)``.
        budget: Required total cost ``B > 0``.

    Returns:
        The projected point.

    Raises:
        InfeasibleProblemError: If ``budget <= 0``.
        ValidationError: If any cost is non-positive.
    """
    y = np.asarray(y, dtype=float)
    costs = np.asarray(costs, dtype=float)
    if budget <= 0.0:
        raise InfeasibleProblemError(f"budget must be positive, got {budget!r}")
    if (costs <= 0.0).any():
        raise ValidationError("all costs must be positive")

    def total(tau: float) -> float:
        return float(costs @ np.maximum(y - tau * costs, 0.0))

    # Bracket tau: at tau_hi everything is clipped to zero; walk
    # tau_lo down until the budget is exceeded.
    tau_hi = float((y / costs).max())
    if total(tau_hi) >= budget:  # degenerate: max already exceeds budget
        tau_lo = tau_hi
        tau_hi = tau_lo + 1.0
        while total(tau_hi) > budget:
            tau_hi = tau_lo + 2.0 * (tau_hi - tau_lo)
    else:
        span = max(1.0, abs(tau_hi))
        tau_lo = tau_hi - span
        while total(tau_lo) < budget:
            span *= 2.0
            tau_lo = tau_hi - span
    for _ in range(200):
        tau = 0.5 * (tau_lo + tau_hi)
        if total(tau) > budget:
            tau_lo = tau
        else:
            tau_hi = tau
    x = np.maximum(y - 0.5 * (tau_lo + tau_hi) * costs, 0.0)
    current = float(costs @ x)
    if current > 0.0:
        x = x * (budget / current)
    return x


class ProjectedGradientSolver:
    """Projected gradient ascent for one linear constraint + bounds.

    Args:
        objective: Callable returning ``(value, gradient)`` of the
            concave objective at a feasible point.
        max_iterations: Iteration budget.
        tolerance: Stop when the projected step shrinks below this
            norm (scaled by the step size).
        initial_step: First trial step size for line search.
    """

    def __init__(self, objective: Objective, *, max_iterations: int = 2000,
                 tolerance: float = 1e-9, initial_step: float = 1.0) -> None:
        if max_iterations < 1:
            raise ValidationError(
                f"max_iterations must be >= 1, got {max_iterations}")
        if tolerance <= 0.0:
            raise ValidationError(f"tolerance must be > 0, got {tolerance}")
        self._objective = objective
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._initial_step = initial_step

    def solve(self, costs: np.ndarray, budget: float,
              x0: np.ndarray | None = None) -> NlpResult:
        """Maximize the objective over ``{x ≥ 0, costs·x = budget}``.

        Args:
            costs: Positive per-coordinate costs, shape ``(n,)``.
            budget: Total budget ``B > 0``.
            x0: Optional starting point (projected onto the feasible
                set); defaults to the uniform feasible point.

        Returns:
            An :class:`NlpResult` with a feasible final iterate.
        """
        costs = np.asarray(costs, dtype=float)
        n = costs.shape[0]
        if n == 0:
            raise ValidationError("cannot solve an empty problem")
        if x0 is None:
            x = np.full(n, budget / float(costs.sum()))
        else:
            x = project_onto_scaled_simplex(np.asarray(x0, dtype=float),
                                            costs, budget)

        value, grad = self._objective(x)
        # Normalize the step so the first trial move is on the scale
        # of the iterate, then let the line search adapt it within a
        # bounded window (unbounded growth overflows the projection).
        scale = float(np.linalg.norm(x)) or 1.0
        grad_norm = float(np.linalg.norm(grad)) or 1.0
        step = self._initial_step * scale / grad_norm
        step_max = step * 1e6
        step_min = step * 1e-18
        iterations = 0
        converged = False
        residual = np.inf
        for iterations in range(1, self._max_iterations + 1):
            # Backtracking: shrink the step until the projected move
            # improves the objective (concavity guarantees it will for
            # small enough steps unless we are stationary).
            improved = False
            for _ in range(80):
                candidate = project_onto_scaled_simplex(x + step * grad,
                                                        costs, budget)
                move = candidate - x
                residual = float(np.linalg.norm(move)) / max(step, 1e-300)
                if residual <= self._tolerance * grad_norm:
                    converged = True
                    break
                cand_value, cand_grad = self._objective(candidate)
                if cand_value > value:
                    x, value, grad = candidate, cand_value, cand_grad
                    improved = True
                    break
                step *= 0.5
                if step < step_min:
                    break
            if converged:
                break
            if not improved:
                converged = True  # line search exhausted: stationary
                break
            step = min(step * 2.0, step_max)
        return NlpResult(x=x, value=value, iterations=iterations,
                         converged=converged,
                         projected_gradient_norm=residual)
