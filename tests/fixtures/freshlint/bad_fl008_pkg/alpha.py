"""One half of the cycle: imports beta at module level."""

from bad_fl008_pkg import beta

__all__ = ["double"]


def double(value: float) -> float:
    """Twice ``value`` (dimensionless)."""
    return beta.identity(value) * 2.0
