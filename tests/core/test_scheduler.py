"""Tests for repro.core.scheduler — timed Fixed-Order schedules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import PhasePolicy, SyncSchedule
from repro.errors import ScheduleError


class TestFromFrequencies:
    def test_zero_phase_policy(self):
        schedule = SyncSchedule.from_frequencies(
            np.array([2.0, 4.0]), phase_policy=PhasePolicy.ZERO)
        assert (schedule.phases == 0.0).all()

    def test_staggered_phases_within_interval(self):
        schedule = SyncSchedule.from_frequencies(
            np.array([1.0, 2.0, 5.0]),
            phase_policy=PhasePolicy.STAGGERED)
        intervals = schedule.intervals()
        assert (schedule.phases < intervals).all()
        assert (schedule.phases >= 0.0).all()

    def test_random_phases_need_rng(self):
        with pytest.raises(ScheduleError):
            SyncSchedule.from_frequencies(np.ones(2),
                                          phase_policy=PhasePolicy.RANDOM)

    def test_random_phases_reproducible(self):
        one = SyncSchedule.from_frequencies(
            np.ones(5), phase_policy="random",
            rng=np.random.default_rng(0))
        two = SyncSchedule.from_frequencies(
            np.ones(5), phase_policy="random",
            rng=np.random.default_rng(0))
        assert np.array_equal(one.phases, two.phases)

    def test_rejects_negative_frequency(self):
        with pytest.raises(ScheduleError):
            SyncSchedule.from_frequencies(np.array([-1.0]))

    def test_rejects_bad_period(self):
        with pytest.raises(ScheduleError):
            SyncSchedule.from_frequencies(np.ones(1), period_length=0.0)


class TestSyncTimes:
    def test_evenly_spaced(self):
        schedule = SyncSchedule.from_frequencies(
            np.array([4.0]), phase_policy=PhasePolicy.ZERO)
        times = schedule.sync_times(0, 1.0)
        assert np.allclose(times, [0.0, 0.25, 0.5, 0.75])

    def test_phase_offsets_all_times(self):
        schedule = SyncSchedule(frequencies=np.array([2.0]),
                                period_length=1.0,
                                phases=np.array([0.1]))
        times = schedule.sync_times(0, 1.0)
        assert np.allclose(times, [0.1, 0.6])

    def test_zero_frequency_never_synced(self):
        schedule = SyncSchedule.from_frequencies(
            np.array([0.0, 1.0]), phase_policy=PhasePolicy.ZERO)
        assert schedule.sync_times(0, 10.0).size == 0

    def test_count_scales_with_horizon(self):
        schedule = SyncSchedule.from_frequencies(
            np.array([3.0]), phase_policy=PhasePolicy.ZERO)
        assert schedule.sync_times(0, 10.0).size == 30

    def test_period_length_scales_intervals(self):
        schedule = SyncSchedule.from_frequencies(
            np.array([2.0]), period_length=10.0,
            phase_policy=PhasePolicy.ZERO)
        times = schedule.sync_times(0, 10.0)
        assert np.allclose(times, [0.0, 5.0])

    def test_rejects_bad_horizon(self):
        schedule = SyncSchedule.from_frequencies(np.ones(1))
        with pytest.raises(ScheduleError):
            schedule.sync_times(0, 0.0)


class TestEventsUntil:
    def test_sorted_and_complete(self):
        schedule = SyncSchedule.from_frequencies(
            np.array([2.0, 3.0, 0.0]),
            phase_policy=PhasePolicy.STAGGERED)
        times, elements = schedule.events_until(4.0)
        assert (np.diff(times) >= 0.0).all()
        # 2*4 + 3*4 events expected.
        assert times.size == 20
        assert set(elements.tolist()) == {0, 1}

    def test_empty_schedule(self):
        schedule = SyncSchedule.from_frequencies(
            np.zeros(3), phase_policy=PhasePolicy.ZERO)
        times, elements = schedule.events_until(5.0)
        assert times.size == 0
        assert elements.size == 0

    @given(st.lists(st.floats(min_value=0.0, max_value=8.0),
                    min_size=1, max_size=10),
           st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=40, deadline=None)
    def test_event_count_matches_per_element_counts(self, freqs, horizon):
        schedule = SyncSchedule.from_frequencies(
            np.array(freqs), phase_policy=PhasePolicy.STAGGERED)
        times, elements = schedule.events_until(horizon)
        for element in range(len(freqs)):
            expected = schedule.sync_times(element, horizon).size
            assert int((elements == element).sum()) == expected


class TestAccounting:
    def test_syncs_per_period(self):
        schedule = SyncSchedule.from_frequencies(np.array([1.0, 2.5]))
        assert schedule.syncs_per_period() == pytest.approx(3.5)

    def test_bandwidth_per_period(self):
        schedule = SyncSchedule.from_frequencies(np.array([1.0, 2.0]))
        assert schedule.bandwidth_per_period(
            np.array([3.0, 0.5])) == pytest.approx(4.0)

    def test_bandwidth_rejects_shape_mismatch(self):
        schedule = SyncSchedule.from_frequencies(np.ones(2))
        with pytest.raises(ScheduleError):
            schedule.bandwidth_per_period(np.ones(3))

    def test_arrays_immutable(self):
        schedule = SyncSchedule.from_frequencies(np.ones(2))
        with pytest.raises(ValueError):
            schedule.frequencies[0] = 5.0
