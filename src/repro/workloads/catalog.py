"""The :class:`Catalog`: per-element workload description.

A catalog bundles, for each of the mirror's N elements, the three
quantities the freshening problem is defined over:

* ``access_probabilities`` — the master profile ``p`` (Σp = 1),
* ``change_rates`` — Poisson update rates ``λ`` per sync period,
* ``sizes`` — object sizes ``s`` in bandwidth units (all 1.0 for the
  paper's fixed-size sections).

Catalogs are immutable; transformations return new catalogs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ValidationError

__all__ = ["Catalog"]

#: Tolerance on Σp = 1 during validation.
_PROB_ATOL = 1e-8


def _as_vector(values: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {array.shape}")
    if array.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if not np.isfinite(array).all():
        raise ValidationError(f"{name} must be finite")
    return array


@dataclass(frozen=True)
class Catalog:
    """Immutable per-element workload description.

    Attributes:
        access_probabilities: Master-profile access probabilities,
            nonnegative, summing to 1.
        change_rates: Poisson change rates per sync period,
            nonnegative.
        sizes: Object sizes in bandwidth units, strictly positive.
            Defaults to all ones (the fixed-size model).
    """

    access_probabilities: np.ndarray
    change_rates: np.ndarray
    sizes: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        p = _as_vector(self.access_probabilities, "access_probabilities")
        lam = _as_vector(self.change_rates, "change_rates")
        if self.sizes is None:
            s = np.ones_like(p)
        else:
            s = _as_vector(self.sizes, "sizes")
        if not (p.shape == lam.shape == s.shape):
            raise ValidationError(
                "access_probabilities, change_rates and sizes must have "
                f"matching shapes, got {p.shape}, {lam.shape}, {s.shape}"
            )
        if (p < 0.0).any():
            raise ValidationError("access probabilities must be nonnegative")
        if abs(p.sum() - 1.0) > _PROB_ATOL:
            raise ValidationError(
                f"access probabilities must sum to 1, got {p.sum()!r}")
        if (lam < 0.0).any():
            raise ValidationError("change rates must be nonnegative")
        if (s <= 0.0).any():
            raise ValidationError("sizes must be strictly positive")
        for name, array in (("access_probabilities", p),
                            ("change_rates", lam), ("sizes", s)):
            array = array.copy()
            array.flags.writeable = False
            object.__setattr__(self, name, array)

    @property
    def n_elements(self) -> int:
        """Number of elements in the catalog."""
        return int(self.access_probabilities.shape[0])

    @property
    def has_uniform_sizes(self) -> bool:
        """True if every object has the same size."""
        sizes = self.sizes
        return bool(np.all(sizes == sizes[0]))

    @classmethod
    def from_counts(cls, access_counts: np.ndarray,
                    change_rates: np.ndarray,
                    sizes: np.ndarray | None = None) -> "Catalog":
        """Build a catalog from raw access counts (normalized to ``p``).

        Args:
            access_counts: Nonnegative access counts per element; at
                least one must be positive.
            change_rates: Poisson change rates per period.
            sizes: Optional object sizes.

        Returns:
            A validated :class:`Catalog`.
        """
        counts = _as_vector(np.asarray(access_counts, dtype=float),
                            "access_counts")
        total = counts.sum()
        if total <= 0.0:
            raise ValidationError("access counts must include a positive entry")
        return cls(access_probabilities=counts / total,
                   change_rates=np.asarray(change_rates, dtype=float),
                   sizes=None if sizes is None
                   else np.asarray(sizes, dtype=float))

    def with_uniform_profile(self) -> "Catalog":
        """The same elements under a uniform (profile-blind) profile.

        This is exactly what the General Freshening baseline optimizes
        for: every element equally interesting.
        """
        n = self.n_elements
        return replace(self, access_probabilities=np.full(n, 1.0 / n))

    def with_profile(self, access_probabilities: np.ndarray) -> "Catalog":
        """The same elements under a different master profile."""
        return replace(self, access_probabilities=np.asarray(
            access_probabilities, dtype=float))

    def with_change_rates(self, change_rates: np.ndarray) -> "Catalog":
        """The same elements with different change rates (changes per
        period)."""
        return replace(self,
                       change_rates=np.asarray(change_rates, dtype=float))

    def with_sizes(self, sizes: np.ndarray) -> "Catalog":
        """The same elements with different object sizes."""
        return replace(self, sizes=np.asarray(sizes, dtype=float))

    def subset(self, indices: np.ndarray) -> "Catalog":
        """A catalog restricted to ``indices``, profile renormalized.

        Used by mirror-selection experiments: dropping elements from
        the mirror concentrates the remaining access probability.
        """
        indices = np.asarray(indices)
        p = self.access_probabilities[indices]
        total = p.sum()
        if total <= 0.0:
            raise ValidationError(
                "subset must retain positive total access probability")
        return Catalog(access_probabilities=p / total,
                       change_rates=self.change_rates[indices],
                       sizes=self.sizes[indices])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Catalog(n={self.n_elements}, "
                f"mean_rate={self.change_rates.mean():.3g}, "
                f"uniform_sizes={self.has_uniform_sizes})")
