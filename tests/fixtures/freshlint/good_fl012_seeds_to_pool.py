"""FL012 fixture: only integer seeds cross the process boundary."""

from functools import partial

from repro.parallel import parallel_map, seed_rng


def run(specs, seed):
    # Workers receive plain seeds and build their own generators.
    seeds = [seed + index for index, _ in enumerate(specs)]
    task = partial(_simulate, scale=2.0)  # captures no RNG
    return parallel_map(seeds, task)


def _simulate(seed, scale=1.0):
    rng = seed_rng(seed)
    return rng.random() * scale
