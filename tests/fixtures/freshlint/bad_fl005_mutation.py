"""Seeded FL005 violations: in-place mutation of ndarray parameters."""

import numpy as np


def clamp_frequencies(frequencies, ceiling):
    frequencies[frequencies > ceiling] = ceiling   # FL005: subscript store
    return frequencies


def normalize(weights):
    weights /= weights.sum()                       # FL005: augassign
    return weights


def sort_labels(labels):
    labels.sort()                                  # FL005: mutating method
    return labels


def scatter(totals, indices, values):
    np.add.at(totals, indices, values)             # FL005: ufunc.at
    return totals


def launder_via_asarray(frequencies):
    frequencies = np.asarray(frequencies, dtype=float)
    frequencies[0] = 0.0                           # FL005: asarray aliases
    return frequencies
