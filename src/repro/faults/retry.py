"""Retry policies: exponential backoff with decorrelated jitter.

Backoff code is where wall clocks and ambient randomness sneak into
otherwise reproducible systems, so this module obeys (and freshlint
rule FL010 enforces) two injection rules:

* all jitter draws come from an injected ``np.random.Generator``;
* all sleeping and deadline arithmetic goes through injected
  callables (a ``sleep`` function and a *monotonic* ``clock``) — the
  simulator passes virtual time, production passes ``time.sleep`` /
  ``time.monotonic``.

The delay sequence is AWS-style *decorrelated jitter*: each delay is
drawn uniformly from ``[base, 3·previous]`` and clamped to a cap,
which spreads concurrent retriers apart instead of synchronizing
them the way plain exponential backoff does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

from repro.errors import ValidationError

__all__ = ["RetryBudgetExhaustedError", "RetryPolicy",
           "execute_with_retry"]

T = TypeVar("T")


class RetryBudgetExhaustedError(Exception):
    """Every allowed attempt failed; carries the last error.

    Attributes:
        attempts: Total attempts made (initial try + retries).
    """

    def __init__(self, message: str, *, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with decorrelated jitter.

    Attributes:
        max_retries: Retries allowed after the initial attempt, >= 0.
        base_delay: Lower bound of every jittered delay, in the
            caller's clock units (period units in the simulator,
            seconds in production), > 0.
        max_delay: Upper clamp on any single delay, in the same clock
            units, >= ``base_delay``.
    """

    max_retries: int = 3
    base_delay: float = 0.01
    max_delay: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay <= 0.0:
            raise ValidationError(
                f"base_delay must be > 0, got {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ValidationError(
                f"max_delay must be >= base_delay, got "
                f"{self.max_delay} < {self.base_delay}")

    def next_delay(self, previous: float,
                   rng: np.random.Generator) -> float:
        """Draw the next backoff delay.

        Args:
            previous: The previous delay in clock units (pass 0.0
                before the first retry).
            rng: Seeded generator supplying the jitter.

        Returns:
            The next delay, in the caller's clock units, inside
            ``[base_delay, max_delay]``.
        """
        anchor = max(3.0 * previous, self.base_delay)
        drawn = float(rng.uniform(self.base_delay, anchor))
        return min(drawn, self.max_delay)

    def delays(self, rng: np.random.Generator) -> list[float]:
        """The full delay sequence for one operation's retries.

        Args:
            rng: Seeded generator supplying the jitter.

        Returns:
            ``max_retries`` delays in clock units, in order.
        """
        out: list[float] = []
        previous = 0.0
        for _ in range(self.max_retries):
            previous = self.next_delay(previous, rng)
            out.append(previous)
        return out


def execute_with_retry(operation: Callable[[], T], *,
                       policy: RetryPolicy,
                       rng: np.random.Generator,
                       sleep: Callable[[float], None],
                       clock: Callable[[], float],
                       deadline: float | None = None,
                       retryable: tuple[type[BaseException], ...] =
                       (Exception,)) -> T:
    """Run ``operation`` under a retry policy with injected effects.

    The production-side counterpart of the simulator's
    :class:`~repro.faults.channel.SyncChannel` retry loop.  Both the
    sleeper and the clock are injected so callers control real time
    (``time.sleep`` / ``time.monotonic``) and tests control virtual
    time; per FL010 neither is read ambiently here.

    Args:
        operation: The zero-argument callable to attempt.
        policy: Backoff policy bounding retries and delays.
        rng: Seeded generator supplying the jitter.
        sleep: Called with each backoff delay, in clock units.
        clock: Monotonic clock; only differences are used, in the
            same clock units as the delays.
        deadline: Optional total budget in clock units measured from
            the first attempt; no retry starts past it.
        retryable: Exception types that trigger a retry; anything
            else propagates immediately.

    Returns:
        The first successful ``operation()`` result.

    Raises:
        RetryBudgetExhaustedError: When every allowed attempt failed;
            the final exception is attached as ``__cause__``.
    """
    started = clock()
    previous = 0.0
    attempts = 0
    while True:
        attempts += 1
        try:
            return operation()
        except retryable as error:
            if attempts > policy.max_retries:
                raise RetryBudgetExhaustedError(
                    f"operation failed after {attempts} attempts",
                    attempts=attempts) from error
            previous = policy.next_delay(previous, rng)
            if deadline is not None and \
                    (clock() - started) + previous > deadline:
                raise RetryBudgetExhaustedError(
                    f"retry deadline exhausted after {attempts} "
                    "attempts", attempts=attempts) from error
            sleep(previous)
