"""freshtrace exporters: JSONL tape, Prometheus text, summary table.

Three consumers, three formats:

* :func:`write_jsonl` / :func:`read_jsonl` — the **event tape**: one
  JSON object per line, every tape event first (in append order),
  then one ``metric`` line per counter/gauge/histogram/span-total
  final value.  A tape round-trips: ``read_jsonl`` rebuilds a
  :class:`~repro.obs.registry.MetricsRegistry` whose exports are
  byte-identical to the live one's.
* :func:`prometheus_text` — the Prometheus text exposition format
  (``repro_`` prefix, counters suffixed ``_total``, histograms with
  cumulative ``_bucket{le=...}`` series, spans as summaries).
* :func:`summary_text` — the human table behind
  ``repro obs summary`` and the ``--telemetry`` epilogue.
* :func:`freshness_text` — the per-element staleness-percentile
  table behind ``repro obs freshness``, rendered from the
  registry's :class:`~repro.obs.ledger.FreshnessLedger`.

The tape also carries the freshness ledger (one ``metric`` line of
type ``ledger`` per entry) and, for merged registries, the
``worker`` origin tag on gauge lines, so merged-registry exports
round-trip exactly like single-process ones.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from repro.obs.ledger import FreshnessLedger
from repro.obs.registry import Histogram, MetricsRegistry

__all__ = [
    "freshness_text",
    "prometheus_text",
    "read_jsonl",
    "summary_text",
    "write_jsonl",
]

_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _coerce(value: Any) -> Any:
    """JSON fallback: numpy scalars and other floatables become float."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def write_jsonl(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write a registry to a JSONL tape file.

    Args:
        registry: The registry to serialize.
        path: Destination file path.

    Returns:
        The path written, for chaining.
    """
    path = Path(path)
    lines: List[str] = []
    for record in registry.events:
        lines.append(json.dumps(record, default=_coerce))
    for name, value in sorted(registry.counters.items()):
        lines.append(json.dumps({"kind": "metric", "type": "counter",
                                 "name": name, "value": value}))
    for name, value in sorted(registry.gauges.items()):
        record = {"kind": "metric", "type": "gauge",
                  "name": name, "value": value}
        origin = registry.gauge_origins.get(name)
        if origin is not None:
            record["worker"] = origin
        lines.append(json.dumps(record))
    for name, histogram in sorted(registry.histograms.items()):
        lines.append(json.dumps(
            {"kind": "metric", "type": "histogram", "name": name,
             "buckets": list(histogram.buckets),
             "counts": list(histogram.counts),
             "total": histogram.total, "count": histogram.count}))
    for span_path, (count, total) in sorted(registry.span_totals.items()):
        lines.append(json.dumps(
            {"kind": "metric", "type": "span", "name": span_path,
             "count": count, "total_s": total}))
    for entry in registry.ledger.as_records():
        lines.append(json.dumps({"kind": "metric", "type": "ledger",
                                 **entry}))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_jsonl(path: str | Path) -> MetricsRegistry:
    """Rebuild a registry from a JSONL tape.

    Tape events are replayed onto the event list verbatim; ``metric``
    lines restore the counter/gauge/histogram/span-total snapshots, so
    :func:`prometheus_text` and :func:`summary_text` render the same
    output from the reloaded registry as from the original.

    Args:
        path: A tape produced by :func:`write_jsonl`.

    Returns:
        The reconstructed registry.
    """
    registry = MetricsRegistry()
    ledger_records: List[Dict[str, Any]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        record: Dict[str, Any] = json.loads(line)
        if record.get("kind") != "metric":
            registry.events.append(record)
            continue
        kind = record.get("type")
        if kind == "ledger":
            ledger_records.append(record)
            continue
        name = record["name"]
        if kind == "counter":
            registry.counters[name] = float(record["value"])
        elif kind == "gauge":
            registry.gauges[name] = float(record["value"])
            if record.get("worker") is not None:
                registry.gauge_origins[name] = str(record["worker"])
        elif kind == "histogram":
            histogram = Histogram(record["buckets"])
            histogram.counts = [int(n) for n in record["counts"]]
            histogram.total = float(record["total"])
            histogram.count = int(record["count"])
            registry.histograms[name] = histogram
        elif kind == "span":
            registry.span_totals[name] = [float(record["count"]),
                                          float(record["total_s"])]
    if ledger_records:
        registry.ledger = FreshnessLedger.from_records(ledger_records)
    return registry


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _prom_name(name: str) -> str:
    return "repro_" + _PROM_SANITIZE.sub("_", name)


def _prom_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters are suffixed ``_total``, histograms emit cumulative
    ``_bucket{le="..."}`` series plus ``_sum``/``_count``, and span
    totals appear as ``repro_span_seconds`` summaries labelled by
    span path (seconds of monotonic wall time).
    """
    out: List[str] = []
    for name, value in sorted(registry.counters.items()):
        metric = _prom_name(name) + "_total"
        out.append(f"# TYPE {metric} counter")
        out.append(f"{metric} {_prom_number(value)}")
    for name, value in sorted(registry.gauges.items()):
        metric = _prom_name(name)
        out.append(f"# TYPE {metric} gauge")
        origin = registry.gauge_origins.get(name)
        if origin is not None:
            out.append(f'{metric}{{worker="{origin}"}} '
                       f"{_prom_number(value)}")
        else:
            out.append(f"{metric} {_prom_number(value)}")
    for name, histogram in sorted(registry.histograms.items()):
        metric = _prom_name(name)
        out.append(f"# TYPE {metric} histogram")
        for bound, cumulative in histogram.cumulative():
            out.append(f'{metric}_bucket{{le="{_prom_number(bound)}"}} '
                       f"{cumulative}")
        out.append(f"{metric}_sum {_prom_number(histogram.total)}")
        out.append(f"{metric}_count {histogram.count}")
    if registry.span_totals:
        out.append("# TYPE repro_span_seconds summary")
        for span_path, (count, total) in sorted(
                registry.span_totals.items()):
            out.append(f'repro_span_seconds_sum{{span="{span_path}"}} '
                       f"{_prom_number(total)}")
            out.append(f'repro_span_seconds_count{{span="{span_path}"}} '
                       f"{int(count)}")
    if registry.ledger:
        snapshot = registry.ledger.staleness_snapshot()
        out.append("# TYPE repro_freshness_refreshes_total counter")
        for record in registry.ledger.as_records():
            out.append(
                f'repro_freshness_refreshes_total'
                f'{{element="{record["element"]}"}} '
                f'{int(record["refreshes"])}')
        out.append("# TYPE repro_freshness_stale_seconds gauge")
        for label, seconds in snapshot:
            out.append(f'repro_freshness_stale_seconds'
                       f'{{element="{label}"}} '
                       f"{_prom_number(seconds)}")
    return "\n".join(out) + ("\n" if out else "")


# ---------------------------------------------------------------------------
# Human summary
# ---------------------------------------------------------------------------

def _format_table(headers: Sequence[str],
                  rows: Sequence[Sequence[Any]]) -> str:
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [max(len(header), *(len(row[i]) for row in cells))
              if cells else len(header)
              for i, header in enumerate(headers)]
    def line(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(row, widths)).rstrip()
    rule = "  ".join("-" * width for width in widths)
    return "\n".join([line(list(headers)), rule,
                      *(line(row) for row in cells)])


def summary_text(registry: MetricsRegistry) -> str:
    """Render the human summary table for a registry.

    Sections (each omitted when empty): counters, gauges, histograms
    (count/mean), spans (count, total and mean seconds of wall time),
    and event-tape kinds with their record counts.
    """
    sections: List[str] = []
    if registry.counters:
        rows = [(name, f"{value:g}")
                for name, value in sorted(registry.counters.items())]
        sections.append("counters\n"
                        + _format_table(["name", "total"], rows))
    if registry.gauges:
        rows = [(name, f"{value:.6g}")
                for name, value in sorted(registry.gauges.items())]
        sections.append("gauges\n"
                        + _format_table(["name", "value"], rows))
    if registry.histograms:
        rows = [(name, histogram.count, f"{histogram.mean:.3g}",
                 f"{histogram.total:g}")
                for name, histogram in sorted(
                    registry.histograms.items())]
        sections.append("histograms\n" + _format_table(
            ["name", "count", "mean", "sum"], rows))
    if registry.span_totals:
        span_rows: List[Tuple[str, int, str, str]] = []
        for span_path, (count, total) in sorted(
                registry.span_totals.items()):
            mean = total / count if count else 0.0
            span_rows.append((span_path, int(count), f"{total:.4f}",
                              f"{mean:.4f}"))
        sections.append("spans (wall seconds)\n" + _format_table(
            ["path", "count", "total_s", "mean_s"], span_rows))
    kinds: Dict[str, int] = {}
    for record in registry.events:
        kind = str(record.get("kind", "?"))
        kinds[kind] = kinds.get(kind, 0) + 1
    if kinds:
        rows = [(kind, count) for kind, count in sorted(kinds.items())]
        sections.append("event tape\n"
                        + _format_table(["kind", "records"], rows))
    if registry.ledger:
        snapshot = registry.ledger.staleness_snapshot()
        stale = sum(1 for _, seconds in snapshot if seconds > 0.0)
        sections.append("freshness ledger\n" + _format_table(
            ["elements", "stale now", "max stale"],
            [(len(snapshot), stale,
              f"{max(s for _, s in snapshot):g}" if snapshot
              else "0")]))
    if not sections:
        return "telemetry: registry is empty\n"
    return "\n\n".join(sections) + "\n"


# ---------------------------------------------------------------------------
# Freshness ledger table
# ---------------------------------------------------------------------------

def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = max(int(math.ceil(q / 100.0 * len(sorted_values))), 1)
    return sorted_values[rank - 1]


def freshness_text(registry: MetricsRegistry,
                   now: float | None = None) -> str:
    """Render the per-element staleness table behind
    ``repro obs freshness``.

    Three sections: an overview (element count, how many are stale at
    ``now``, total refreshes/run-opening updates), the staleness
    percentiles across elements (p50/p90/p99/max, simulated clock
    units), and the ten stalest elements with their raw ledger state.

    Args:
        now: Evaluation time on the simulated clock; defaults to the
            latest event the ledger has seen.

    Returns:
        The rendered table, or a one-line notice when the registry's
        ledger is empty.
    """
    ledger = registry.ledger
    if not ledger:
        return ("freshness: ledger is empty "
                "(run with --telemetry, or load a tape that has "
                "ledger lines)\n")
    snapshot = ledger.staleness_snapshot(now)
    staleness = sorted(seconds for _, seconds in snapshot)
    stale_count = sum(1 for seconds in staleness if seconds > 0.0)
    refreshes = sum(entry.refreshes
                    for entry in ledger.entries.values())
    stales = sum(entry.stales for entry in ledger.entries.values())
    eval_at = now if now is not None else ledger.last_event_time()
    sections = ["freshness overview\n" + _format_table(
        ["elements", "stale now", "refreshes", "stale runs", "now"],
        [(len(snapshot), stale_count, refreshes, stales,
          f"{eval_at:g}" if eval_at is not None else "-")])]
    sections.append("staleness percentiles (clock units)\n"
                    + _format_table(
                        ["p50", "p90", "p99", "max"],
                        [tuple(f"{_percentile(staleness, q):g}"
                               for q in (50.0, 90.0, 99.0, 100.0))]))
    stalest = sorted(snapshot, key=lambda pair: -pair[1])[:10]
    rows = []
    for label, seconds in stalest:
        entry = ledger.entries[label]
        rows.append((
            label, f"{seconds:g}",
            "-" if entry.refreshed_at is None
            else f"{entry.refreshed_at:g}",
            "-" if entry.stale_since is None
            else f"{entry.stale_since:g}",
            entry.refreshes, entry.stales))
    sections.append("stalest elements\n" + _format_table(
        ["element", "stale_s", "refreshed_at", "stale_since",
         "refreshes", "stale_runs"], rows))
    return "\n\n".join(sections) + "\n"
