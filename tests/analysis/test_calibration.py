"""Tests for repro.analysis.calibration — model fitting from logs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.calibration import (
    calibrate_setup,
    fit_gamma_rates,
    fit_zipf_theta,
)
from repro.errors import ValidationError
from repro.workloads.accesses import AccessSet, sample_access_times
from repro.workloads.distributions import (
    gamma_change_rates,
    zipf_probabilities,
)


class TestFitZipfTheta:
    @pytest.mark.parametrize("theta", [0.4, 0.8, 1.2])
    def test_recovers_known_skew(self, theta, rng):
        p = zipf_probabilities(300, theta)
        counts = rng.multinomial(300_000, p)
        fitted = fit_zipf_theta(counts, min_count=20)
        assert fitted == pytest.approx(theta, abs=0.1)

    def test_uniform_profile_fits_near_zero(self, rng):
        counts = rng.multinomial(100_000, np.full(100, 0.01))
        assert fit_zipf_theta(counts, min_count=10) < 0.1

    def test_exactly_flat_counts_fit_zero(self):
        # Equal counts at every rank: slope 0 (up to float rounding
        # of the log covariances), θ ≈ 0.
        assert fit_zipf_theta(np.full(50, 100.0)) == pytest.approx(
            0.0, abs=1e-12)

    def test_order_invariant(self, rng):
        counts = rng.multinomial(50_000, zipf_probabilities(80, 1.0))
        shuffled = rng.permutation(counts)
        assert fit_zipf_theta(counts, min_count=10) == pytest.approx(
            fit_zipf_theta(shuffled, min_count=10))

    def test_validation(self):
        with pytest.raises(ValidationError):
            fit_zipf_theta(np.array([5.0, 3.0]))  # too few ranks
        with pytest.raises(ValidationError):
            fit_zipf_theta(np.array([-1.0, 2.0, 3.0, 4.0]))
        with pytest.raises(ValidationError):
            fit_zipf_theta(np.zeros(10))


class TestFitGammaRates:
    def test_recovers_known_moments(self, rng):
        rates = gamma_change_rates(100_000, mean=2.0, std_dev=1.5,
                                   rng=rng)
        fit = fit_gamma_rates(rates)
        assert fit.mean == pytest.approx(2.0, rel=0.03)
        assert fit.std_dev == pytest.approx(1.5, rel=0.03)
        assert fit.shape == pytest.approx((2.0 / 1.5) ** 2, rel=0.08)

    def test_shape_scale_consistency(self):
        fit = fit_gamma_rates(np.array([1.0, 2.0, 3.0, 4.0]))
        assert fit.shape * fit.scale == pytest.approx(fit.mean)

    def test_validation(self):
        with pytest.raises(ValidationError):
            fit_gamma_rates(np.array([1.0]))
        with pytest.raises(ValidationError):
            fit_gamma_rates(np.array([1.0, 0.0]))
        with pytest.raises(ValidationError):
            fit_gamma_rates(np.full(5, 2.0))  # zero spread


class TestCalibrateSetup:
    def test_roundtrip_through_synthetic_world(self, rng):
        """Calibrating on a synthetic world recovers its parameters."""
        true_theta, true_mean, true_std = 1.0, 2.0, 1.0
        n = 400
        p = zipf_probabilities(n, true_theta)
        accesses = sample_access_times(p, rate=200_000.0, horizon=1.0,
                                       rng=rng)
        rates = gamma_change_rates(n, mean=true_mean,
                                   std_dev=true_std, rng=rng)
        setup = calibrate_setup(accesses, rates, bandwidth=200.0,
                                min_count=20)
        assert setup.n_objects == n
        assert setup.theta == pytest.approx(true_theta, abs=0.15)
        assert setup.mean_change_rate == pytest.approx(true_mean,
                                                       rel=0.1)
        assert setup.update_std_dev == pytest.approx(true_std,
                                                     rel=0.1)
        assert setup.syncs_per_period == 200.0

    def test_calibrated_setup_drives_the_harness(self, rng):
        """The fitted setup plugs straight into build_catalog and the
        planners — the advertised what-if workflow."""
        from repro.core.freshener import PerceivedFreshener
        from repro.workloads.presets import build_catalog

        p = zipf_probabilities(100, 0.9)
        accesses = sample_access_times(p, rate=50_000.0, horizon=1.0,
                                       rng=rng)
        rates = gamma_change_rates(100, mean=2.0, std_dev=1.0, rng=rng)
        setup = calibrate_setup(accesses, rates, bandwidth=50.0,
                                min_count=10)
        catalog = build_catalog(setup, seed=1)
        plan = PerceivedFreshener().plan(catalog,
                                         setup.syncs_per_period)
        assert 0.0 < plan.perceived_freshness < 1.0

    def test_validation(self):
        accesses = AccessSet(times=np.empty(0),
                             elements=np.empty(0, dtype=np.int64))
        with pytest.raises(ValidationError):
            calibrate_setup(accesses, np.empty(0), bandwidth=1.0)
