"""Deterministic, seeded fault models for the sync path.

The paper's mirror assumes every synchronization succeeds instantly;
its own motivating deployments (large mirrors of remote, flaky
sources) do not.  This module describes *how* polls fail, as pure
probability models driven by an injected ``np.random.Generator`` —
the same seeded-generator discipline the rest of the simulator obeys
(freshlint FL001), so a seed reproduces the exact fault trace.

Vocabulary:

* :class:`PollOutcome` — the typed result of one poll attempt
  (``ok | timeout | error | unreachable``).
* :class:`FaultModel` — a stochastic outcome source for one attempt:
  :class:`IIDFaultModel` (per-attempt i.i.d. loss),
  :class:`GilbertElliottFaultModel` (bursty two-state Markov loss),
  :class:`LatencyFaultModel` (latency draws against a timeout).
* :class:`OutageWindow` — a timed, deterministic shard outage: the
  named elements are ``unreachable`` for the window's duration.
* :class:`FaultPlan` — the composition the simulator consumes:
  outage windows first (no randomness consumed), then each model in
  order; the first non-``ok`` outcome wins.

A quiet plan (no models, no outages) is a *true no-op*: the sync
layer bypasses it entirely and consumes no random draws, so results
are bit-identical to a fault-free run.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "FaultModel",
    "FaultPlan",
    "GilbertElliottFaultModel",
    "IIDFaultModel",
    "LatencyFaultModel",
    "OutageWindow",
    "PollOutcome",
]


class PollOutcome(str, Enum):
    """The typed result of one poll attempt over the sync channel."""

    #: The poll reached the source and returned its current version.
    OK = "ok"
    #: The transfer started but exceeded its deadline (bandwidth was
    #: burned; the copy did not refresh).  Retryable.
    TIMEOUT = "timeout"
    #: The source answered with an error (bandwidth was burned; the
    #: copy did not refresh).  Retryable.
    ERROR = "error"
    #: The source could not be reached at all (fast failure, no
    #: bandwidth burned).  Not retryable — outages end on their own
    #: schedule, not on the retry policy's.
    UNREACHABLE = "unreachable"

    @property
    def is_failure(self) -> bool:
        """Whether the attempt failed to refresh the copy."""
        return self is not PollOutcome.OK

    @property
    def is_retryable(self) -> bool:
        """Whether a retry policy may immediately try again."""
        return self in (PollOutcome.TIMEOUT, PollOutcome.ERROR)


class FaultModel(ABC):
    """A stochastic source of poll outcomes for single attempts.

    Implementations must be deterministic given the injected
    generator: every random decision draws from ``rng`` and nothing
    else, so a seeded run replays the identical fault trace.
    """

    @abstractmethod
    def outcome(self, element: int, time: float,
                rng: np.random.Generator) -> PollOutcome:
        """Draw the outcome of one poll attempt.

        Args:
            element: Element index being polled.
            time: Simulated clock time of the attempt, in period
                units.
            rng: Seeded generator; the only source of randomness.

        Returns:
            The attempt's :class:`PollOutcome`.
        """


class IIDFaultModel(FaultModel):
    """Each attempt independently fails with a fixed probability.

    Args:
        failure_probability: Per-attempt failure probability in
            ``[0, 1]`` (dimensionless).
        failure: The outcome reported on failure (``ERROR`` by
            default; ``TIMEOUT`` for deadline-style loss).
    """

    def __init__(self, failure_probability: float, *,
                 failure: PollOutcome = PollOutcome.ERROR) -> None:
        if not 0.0 <= failure_probability <= 1.0:
            raise ValidationError(
                "failure_probability must be in [0, 1], got "
                f"{failure_probability}")
        if not failure.is_failure:
            raise ValidationError(
                "failure outcome must be a failure, got "
                f"{failure.value!r}")
        self._p = failure_probability
        self._failure = failure

    @property
    def failure_probability(self) -> float:
        """Per-attempt failure probability (dimensionless)."""
        return self._p

    @property
    def failure_outcome(self) -> PollOutcome:
        """The outcome reported when an attempt fails."""
        return self._failure

    def outcome(self, element: int, time: float,
                rng: np.random.Generator) -> PollOutcome:
        """Draw one i.i.d. attempt outcome (consumes one draw)."""
        if rng.random() < self._p:
            return self._failure
        return PollOutcome.OK


class GilbertElliottFaultModel(FaultModel):
    """Bursty loss: a per-element two-state (good/bad) Markov chain.

    The classic Gilbert–Elliott channel: each element carries a
    hidden state that flips between *good* and *bad* on every
    attempt, and the attempt is lost with the state's loss
    probability.  Long bad sojourns produce the correlated failure
    bursts that i.i.d. loss cannot.

    The chain advances on poll attempts (not on clock time), which
    keeps the trace exactly reproducible under any schedule.

    Args:
        p_good_to_bad: Per-attempt transition probability out of the
            good state, in ``[0, 1]`` (dimensionless).
        p_bad_to_good: Per-attempt transition probability out of the
            bad state, in ``[0, 1]`` (dimensionless).
        loss_good: Failure probability while good (dimensionless).
        loss_bad: Failure probability while bad (dimensionless).
        failure: The outcome reported on failure.
    """

    def __init__(self, p_good_to_bad: float, p_bad_to_good: float, *,
                 loss_good: float = 0.0, loss_bad: float = 1.0,
                 failure: PollOutcome = PollOutcome.ERROR) -> None:
        for name, value in (("p_good_to_bad", p_good_to_bad),
                            ("p_bad_to_good", p_bad_to_good),
                            ("loss_good", loss_good),
                            ("loss_bad", loss_bad)):
            if not 0.0 <= value <= 1.0:
                raise ValidationError(
                    f"{name} must be in [0, 1], got {value}")
        if not failure.is_failure:
            raise ValidationError(
                "failure outcome must be a failure, got "
                f"{failure.value!r}")
        self._p_gb = p_good_to_bad
        self._p_bg = p_bad_to_good
        self._loss = (loss_good, loss_bad)
        self._failure = failure
        self._bad: dict[int, bool] = {}

    @property
    def p_good_to_bad(self) -> float:
        """Per-attempt transition probability out of good."""
        return self._p_gb

    @property
    def p_bad_to_good(self) -> float:
        """Per-attempt transition probability out of bad."""
        return self._p_bg

    @property
    def loss_good(self) -> float:
        """Failure probability while good (dimensionless)."""
        return self._loss[0]

    @property
    def loss_bad(self) -> float:
        """Failure probability while bad (dimensionless)."""
        return self._loss[1]

    @property
    def failure_outcome(self) -> PollOutcome:
        """The outcome reported when an attempt fails."""
        return self._failure

    def chain_states(self, n_elements: int) -> np.ndarray:
        """The per-element hidden state as a dense bool array.

        An element the chain has never polled is in the good state,
        so absent dict entries and False entries are interchangeable.

        Args:
            n_elements: Catalog size; element ids must be < this.

        Returns:
            ``bad`` flags, shape ``(n_elements,)``, dtype bool.
        """
        bad = np.zeros(n_elements, dtype=bool)
        for element, state in self._bad.items():
            if state:
                bad[element] = True
        return bad

    def set_chain_states(self, bad: np.ndarray) -> None:
        """Commit a dense per-element state array back into the chain.

        Only bad elements are stored — the reference path treats a
        missing entry as good, so dropping False entries is
        behaviorally identical and keeps the dict minimal.

        Args:
            bad: ``bad`` flags, shape ``(n_elements,)``.
        """
        self._bad = {element: True
                     for element in np.flatnonzero(bad).tolist()}

    def outcome(self, element: int, time: float,
                rng: np.random.Generator) -> PollOutcome:
        """Advance the element's chain one step and draw the loss.

        Consumes exactly two draws per attempt (transition, loss).
        """
        bad = self._bad.get(element, False)
        flip = rng.random() < (self._p_bg if bad else self._p_gb)
        if flip:
            bad = not bad
        self._bad[element] = bad
        if rng.random() < self._loss[1 if bad else 0]:
            return self._failure
        return PollOutcome.OK


class LatencyFaultModel(FaultModel):
    """Exponential per-attempt latency draws against a deadline.

    Each attempt's service latency is drawn ``Exponential(mean)``;
    attempts slower than the timeout are reported ``TIMEOUT`` (the
    transfer ran — and burned bandwidth — but delivered nothing).

    Args:
        mean_latency: Mean attempt latency, in period units, > 0.
        timeout: Deadline per attempt, in period units, > 0.
    """

    def __init__(self, mean_latency: float, timeout: float) -> None:
        if mean_latency <= 0.0:
            raise ValidationError(
                f"mean_latency must be > 0, got {mean_latency}")
        if timeout <= 0.0:
            raise ValidationError(f"timeout must be > 0, got {timeout}")
        self._mean = mean_latency
        self._timeout = timeout

    def outcome(self, element: int, time: float,
                rng: np.random.Generator) -> PollOutcome:
        """Draw one latency and compare it to the deadline."""
        if rng.exponential(self._mean) > self._timeout:
            return PollOutcome.TIMEOUT
        return PollOutcome.OK


@dataclass(frozen=True)
class OutageWindow:
    """A deterministic shard outage: elements unreachable for a while.

    Attributes:
        start: Window start, in simulated clock time (period units).
        end: Window end (exclusive), in period units, > ``start``.
        elements: The element indices that are down for the window.
    """

    start: float
    end: float
    elements: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValidationError(
                f"outage window must have end > start, got "
                f"[{self.start}, {self.end})")
        object.__setattr__(self, "elements",
                           tuple(int(e) for e in self.elements))

    def covers(self, element: int, time: float) -> bool:
        """Whether ``element`` is down at simulated ``time``."""
        return (self.start <= time < self.end
                and element in self._element_set)

    @property
    def _element_set(self) -> frozenset[int]:
        # Cached on first use; frozen dataclasses route through
        # object.__setattr__.
        cached = self.__dict__.get("_elements_cached")
        if cached is None:
            cached = frozenset(self.elements)
            object.__setattr__(self, "_elements_cached", cached)
        return cached


@dataclass(frozen=True)
class FaultPlan:
    """The composed fault behavior of a sync channel.

    Outage windows are consulted first and consume no randomness;
    then each model draws in declaration order and the first
    non-``ok`` outcome wins (later models do not draw once an attempt
    has failed, keeping the per-attempt draw count bounded and the
    trace reproducible).

    Attributes:
        models: Stochastic per-attempt fault models, in draw order.
        outages: Deterministic timed outage windows.
    """

    models: tuple[FaultModel, ...] = ()
    outages: tuple[OutageWindow, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "models", tuple(self.models))
        object.__setattr__(self, "outages", tuple(self.outages))

    @property
    def is_quiet(self) -> bool:
        """True when the plan can never produce a failure.

        The simulator bypasses a quiet plan entirely — no random
        draws are consumed — so results are bit-identical to running
        with no plan at all.
        """
        return not self.models and not self.outages

    def outcome(self, element: int, time: float,
                rng: np.random.Generator) -> PollOutcome:
        """Draw the outcome of one poll attempt.

        Args:
            element: Element index being polled.
            time: Simulated clock time of the attempt (period units).
            rng: Seeded generator driving the stochastic models.

        Returns:
            The attempt's :class:`PollOutcome`.
        """
        for window in self.outages:
            if window.covers(element, time):
                return PollOutcome.UNREACHABLE
        for model in self.models:
            drawn = model.outcome(element, time, rng)
            if drawn.is_failure:
                return drawn
        return PollOutcome.OK

    def iid_profile(self) -> tuple[float, PollOutcome] | None:
        """The plan's stateless per-attempt loss profile, if it has one.

        A plan is *stateless per attempt* when its draws depend on
        nothing but the attempt itself: exactly one
        :class:`IIDFaultModel` (not a subclass), no outage windows,
        and a retryable failure outcome.  Such plans consume exactly
        one uniform draw per attempt with a fixed failure
        probability, which is what lets the vectorized faulted replay
        (:func:`repro.sim.fastpath.replay_fastpath_faulted`) pre-draw
        every outcome and stay bit-identical to the per-event loop.
        Gilbert–Elliott chains, latency draws, outage windows and
        multi-model compositions are stateful or variable-draw and
        return None.

        Returns:
            ``(failure_probability, failure_outcome)`` when the plan
            qualifies, else None.
        """
        if self.outages or len(self.models) != 1:
            return None
        model = self.models[0]
        if type(model) is not IIDFaultModel:
            return None
        if not model.failure_outcome.is_retryable:
            # An UNREACHABLE failure fast-fails without burning
            # bandwidth — different ledger semantics than the
            # retry/burn path the kernel vectorizes.
            return None
        return model.failure_probability, model.failure_outcome

    def ge_profile(self) -> GilbertElliottFaultModel | None:
        """The plan's single Gilbert–Elliott model, if that is all it is.

        The bursty analogue of :meth:`iid_profile`: exactly one
        :class:`GilbertElliottFaultModel` (not a subclass), no outage
        windows, and a retryable failure outcome.  Such plans consume
        exactly two uniform draws per attempt (transition, loss) plus
        one jitter draw per retry — a fixed per-attempt draw shape —
        which is what lets the scan-vectorized GE kernel
        (:func:`repro.sim.fastpath.resolve_ge_faults`) pre-draw the
        fault stream and stay bit-identical to the per-event loop.
        The chain state itself is *stateful across attempts*, but it
        is threaded through the kernel explicitly via
        :meth:`GilbertElliottFaultModel.chain_states`.

        Returns:
            The model when the plan qualifies, else None.
        """
        if self.outages or len(self.models) != 1:
            return None
        model = self.models[0]
        if type(model) is not GilbertElliottFaultModel:
            return None
        if not model.failure_outcome.is_retryable:
            return None
        return model

    @classmethod
    def quiet(cls) -> "FaultPlan":
        """The zero-fault plan (a guaranteed no-op)."""
        return cls()

    @classmethod
    def iid(cls, failure_probability: float, *,
            failure: PollOutcome = PollOutcome.ERROR) -> "FaultPlan":
        """A plan with a single i.i.d. loss model.

        Args:
            failure_probability: Per-attempt failure probability in
                ``[0, 1]`` (dimensionless).
            failure: Outcome reported on failure.

        Returns:
            The single-model :class:`FaultPlan`.
        """
        return cls(models=(IIDFaultModel(failure_probability,
                                         failure=failure),))

    @classmethod
    def bursty(cls, p_good_to_bad: float, p_bad_to_good: float, *,
               loss_good: float = 0.0, loss_bad: float = 1.0,
               failure: PollOutcome = PollOutcome.ERROR) -> "FaultPlan":
        """A plan with a single Gilbert–Elliott burst-loss model.

        Args:
            p_good_to_bad: Per-attempt transition probability out of
                the good state, in ``[0, 1]`` (dimensionless).
            p_bad_to_good: Per-attempt transition probability out of
                the bad state, in ``[0, 1]`` (dimensionless).
            loss_good: Failure probability while good.
            loss_bad: Failure probability while bad.
            failure: Outcome reported on failure.

        Returns:
            The single-model :class:`FaultPlan`.
        """
        return cls(models=(GilbertElliottFaultModel(
            p_good_to_bad, p_bad_to_good, loss_good=loss_good,
            loss_bad=loss_bad, failure=failure),))
