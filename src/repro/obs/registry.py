"""freshtrace core: the process-local metrics registry and gate.

The observability layer mirrors the runtime-contract design
(:mod:`repro.contracts`): a single process-global switch, off by
default, that instrumented hot paths consult before doing any work.
When telemetry is **disabled** every facade call costs one attribute
load and one branch — unmeasurable next to a real solve — so the
instrumentation stays woven through ``numerics``, ``core``, ``sim``
and ``runtime`` permanently.  When **enabled** (environment variable
``REPRO_TELEMETRY=1`` or :func:`enable_telemetry`), the shared
:class:`MetricsRegistry` accumulates:

* **counters** — monotone totals (solver iterations, syncs issued),
* **gauges** — last-written values (exit residuals, multipliers),
* **histograms** — fixed-bucket distributions (iterations per call),
* **spans** — nested wall-time timings via :func:`span`, and
* **events** — an append-only tape of structured records (per-period
  simulator series, contract violations, replan decisions).

Clock discipline: spans read ``time.perf_counter()`` — a *monotonic*
wall clock — and never ``time.time()``; solver and simulator metrics
carry only simulated-clock quantities.  freshlint rule FL009 polices
this.  The registry is process-local and not thread-safe by design
(the solver stack is single-threaded); see docs/OBSERVABILITY.md.

Example::

    REPRO_TELEMETRY=1 python -m repro table1   # instrumented run

    from repro.obs import telemetry, get_registry
    with telemetry():
        solve_core_problem(catalog, bandwidth=2.0)
    get_registry().counters["solver.calls"]
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.obs.ledger import FreshnessLedger

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_ELEMENTS",
    "MAX_EVENTS",
    "Histogram",
    "MetricsRegistry",
    "SpanHandle",
    "counter_add",
    "disable_telemetry",
    "element_label",
    "enable_telemetry",
    "event",
    "gauge_set",
    "get_registry",
    "ledger_refresh",
    "ledger_stale",
    "max_element_labels",
    "observe",
    "refresh_from_env",
    "reset_telemetry",
    "span",
    "telemetry",
    "telemetry_enabled",
]

_TRUTHY = {"1", "true", "yes", "on"}

#: Default cap on distinct per-index label values (element, shard, or
#: period) an event site may emit; indices at or beyond the cap
#: collapse into the single ``"overflow"`` bucket.  Override with the
#: environment variable ``REPRO_TELEMETRY_MAX_ELEMENTS`` (``0`` =
#: unlimited).
DEFAULT_MAX_ELEMENTS = 1024

#: Default histogram bucket upper bounds (dimensionless; tuned for
#: iteration counts — override per metric via ``observe(buckets=...)``).
DEFAULT_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
                                      100.0, 200.0, 500.0)

#: Event-tape cap: beyond this, events are dropped (and counted in the
#: ``obs.dropped_events`` counter) so a long telemetry-on soak cannot
#: exhaust memory.
MAX_EVENTS = 100_000


class Histogram:
    """A fixed-bucket histogram (Prometheus-style cumulative export).

    Attributes:
        buckets: Sorted upper bounds; observations above the last
            bound land in the implicit ``+Inf`` bucket.
        counts: Per-bucket observation counts, one entry per bound
            plus the ``+Inf`` overflow slot.
        total: Sum of observed values.
        count: Number of observations.
    """

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(float(b)
                                                       for b in buckets))
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (unit-less: whatever the metric is)."""
        value = float(value)
        slot = len(self.buckets)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                slot = index
                break
        self.counts[slot] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        running = 0
        out: List[Tuple[float, int]] = []
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    @property
    def mean(self) -> float:
        """Mean observed value (0 when empty)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Process-local store for counters, gauges, histograms and spans.

    Metric names are dotted lowercase paths (``waterfill.iterations``,
    ``sim.period.syncs``); exporters transform them per format.  All
    mutation goes through the record methods; the mapping attributes
    are read directly by exporters and tests.

    Attributes:
        counters: Metric name to monotone total.
        gauges: Metric name to last-written value.
        gauge_origins: Gauge name to the worker label whose write won
            a cross-process merge (absent for locally written gauges).
        histograms: Metric name to :class:`Histogram`.
        events: The append-only event tape (bounded by
            :data:`MAX_EVENTS`).
        span_totals: Span path to ``[count, total_seconds]``.
        ledger: The per-element :class:`~repro.obs.ledger.
            FreshnessLedger` refresh log.
        sinks: Attached streaming sinks (:mod:`repro.obs.sink`); each
            is offered every tape event.  Never pickled — a registry
            shipped across a process boundary arrives sink-less.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.gauge_origins: Dict[str, str] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.events: List[Dict[str, Any]] = []
        self.span_totals: Dict[str, List[float]] = {}
        self.ledger = FreshnessLedger()
        self.sinks: List[Any] = []
        self._span_stack: List[str] = []
        self._sequence = 0
        self._epoch = time.perf_counter()

    def __getstate__(self) -> Dict[str, Any]:
        # Sinks hold live sockets and are process-local by design;
        # a pickled registry (a worker shipping its telemetry home)
        # must not drag them along.
        state = self.__dict__.copy()
        state["sinks"] = []
        return state

    # -- recording -------------------------------------------------

    def counter_add(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` (same unit as the metric) to a counter."""
        self.counters[name] = self.counters.get(name, 0.0) + float(amount)

    def gauge_set(self, name: str, value: float) -> None:
        """Set a gauge to ``value`` (same unit as the metric)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float,
                buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        """Record ``value`` into a histogram (first call fixes buckets)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Histogram(buckets)
            self.histograms[name] = histogram
        histogram.observe(value)

    def event(self, kind: str, /, **fields: Any) -> None:
        """Append a structured record to the event tape.

        Args:
            kind: Event type slug (``sim.period``, ``span``,
                ``contract_violation``, ...).
            **fields: JSON-serializable payload.
        """
        if len(self.events) >= MAX_EVENTS:
            self.counter_add("obs.dropped_events")
            return
        self._sequence += 1
        record: Dict[str, Any] = {
            "seq": self._sequence,
            "t": time.perf_counter() - self._epoch,
            "kind": kind,
        }
        record.update(fields)
        self.events.append(record)
        if self.sinks:
            for sink in self.sinks:
                sink.offer_event(record)

    def span(self, name: str) -> "SpanHandle":
        """Open a nested wall-time span (use as a context manager).

        Elapsed time is measured with the monotonic
        ``time.perf_counter`` clock, in seconds.
        """
        return SpanHandle(self, name)

    def merge(self, other: "MetricsRegistry", *,
              worker: int | str | None = None) -> "MetricsRegistry":
        """Fold another registry (a worker's) into this one.

        Merge semantics, per metric family:

        * **counters** — summed (bit-exact for the integer-valued
          totals the simulator emits, whatever the merge order);
        * **histograms** — added per bucket; both registries must
          have observed with the same bucket bounds;
        * **span totals** — counts and total seconds summed;
        * **events** — appended in the other registry's tape order,
          tagged with a ``worker`` label and re-sequenced so ``seq``
          stays monotone on the merged tape (the
          :data:`MAX_EVENTS` bound still applies — overflow drops
          into ``obs.dropped_events``);
        * **gauges** — last write wins: the incoming value replaces
          the local one, and :attr:`gauge_origins` records which
          worker's write survived;
        * **ledger** — per-element entries fold order-independently
          (max timestamps, summed counts).

        Args:
            other: The registry to fold in (left untouched).
            worker: Label identifying the source — the task index in
                :func:`repro.parallel.parallel_map` — stamped on the
                merged events and gauge origins.  None merges
                unlabelled.

        Returns:
            ``self``, for chaining.
        """
        for name, value in other.counters.items():
            self.counter_add(name, value)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = Histogram(histogram.buckets)
                self.histograms[name] = mine
            elif mine.buckets != histogram.buckets:
                raise ValueError(
                    f"histogram {name!r} bucket mismatch: "
                    f"{mine.buckets} vs {histogram.buckets}")
            for slot, count in enumerate(histogram.counts):
                mine.counts[slot] += count
            mine.total += histogram.total
            mine.count += histogram.count
        for path, (count, total) in other.span_totals.items():
            totals = self.span_totals.get(path)
            if totals is None:
                self.span_totals[path] = [count, total]
            else:
                totals[0] += count
                totals[1] += total
        worker_label = None if worker is None else str(worker)
        for record in other.events:
            if len(self.events) >= MAX_EVENTS:
                self.counter_add("obs.dropped_events")
                continue
            merged = dict(record)
            self._sequence += 1
            merged["seq"] = self._sequence
            if worker_label is not None:
                merged["worker"] = worker_label
            self.events.append(merged)
        for name, value in other.gauges.items():
            self.gauges[name] = value
            origin = (worker_label if worker_label is not None
                      else other.gauge_origins.get(name))
            if origin is not None:
                self.gauge_origins[name] = origin
            else:
                self.gauge_origins.pop(name, None)
        self.ledger.merge(other.ledger)
        return self

    # -- introspection ---------------------------------------------

    def span_records(self) -> List[Dict[str, Any]]:
        """The completed span events, in completion order."""
        return [record for record in self.events
                if record["kind"] == "span"]

    def events_of_kind(self, kind: str) -> List[Dict[str, Any]]:
        """All tape records of one kind, in append order."""
        return [record for record in self.events
                if record["kind"] == kind]

    def _record_span(self, path: str, elapsed: float) -> None:
        totals = self.span_totals.get(path)
        if totals is None:
            self.span_totals[path] = [1.0, elapsed]
        else:
            totals[0] += 1.0
            totals[1] += elapsed
        self.event("span", path=path, elapsed_s=elapsed)


class SpanHandle:
    """One open span; records its wall time on exit.

    Spans nest through the registry's span stack: a span opened while
    another is active gets a ``/``-joined path (``manager.period/
    manager.plan``), which is how the exporters reconstruct the
    hierarchy.
    """

    __slots__ = ("_registry", "_name", "_start", "_path")

    def __init__(self, registry: MetricsRegistry, name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0
        self._path = name

    def __enter__(self) -> "SpanHandle":
        stack = self._registry._span_stack
        self._path = ("/".join((*stack, self._name)) if stack
                      else self._name)
        stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        stack = self._registry._span_stack
        if stack and stack[-1] == self._name:
            stack.pop()
        self._registry._record_span(self._path, elapsed)


class _NoOpSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_SPAN = _NoOpSpan()


def _max_elements_from_env() -> int:
    """The per-element label cap ``REPRO_TELEMETRY_MAX_ELEMENTS``.

    Unset or unparsable values fall back to
    :data:`DEFAULT_MAX_ELEMENTS`; ``0`` (or any non-positive value)
    means unlimited.
    """
    raw = os.environ.get("REPRO_TELEMETRY_MAX_ELEMENTS", "").strip()
    if not raw:
        return DEFAULT_MAX_ELEMENTS
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_MAX_ELEMENTS


class _State:
    """Single shared switch; attribute lookup is the entire off-cost."""

    __slots__ = ("enabled", "registry", "max_elements")

    def __init__(self) -> None:
        self.enabled = os.environ.get(
            "REPRO_TELEMETRY", "").strip().lower() in _TRUTHY
        self.registry = MetricsRegistry()
        self.max_elements = _max_elements_from_env()


_state = _State()


def telemetry_enabled() -> bool:
    """Whether instrumented hot paths currently record."""
    return _state.enabled


def enable_telemetry(registry: MetricsRegistry | None = None) -> None:
    """Turn telemetry on, optionally installing a fresh registry."""
    if registry is not None:
        _state.registry = registry
    _state.enabled = True


def disable_telemetry() -> None:
    """Turn telemetry off (the registry keeps its accumulated data)."""
    _state.enabled = False


def reset_telemetry() -> MetricsRegistry:
    """Install (and return) a fresh empty registry.

    The enabled/disabled switch is left untouched, so a CLI run can
    reset between commands without re-reading the environment.
    """
    _state.registry = MetricsRegistry()
    return _state.registry


def refresh_from_env() -> None:
    """Re-read ``REPRO_TELEMETRY`` and the per-element label cap
    (useful after monkeypatched env)."""
    _state.enabled = os.environ.get(
        "REPRO_TELEMETRY", "").strip().lower() in _TRUTHY
    _state.max_elements = _max_elements_from_env()


def max_element_labels() -> int:
    """The active per-element label cap (non-positive = unlimited)."""
    return _state.max_elements


def element_label(index: int) -> int | str:
    """Cap the cardinality of a per-index label.

    Event sites that tag records with an element, shard, or period
    index call this instead of emitting the raw index: indices below
    the cap pass through unchanged, everything else collapses into
    the single ``"overflow"`` bucket, so a catalog-scale faulted run
    (or an arbitrarily long soak's period series) adds at most
    ``cap + 1`` distinct label values to the tape however many
    indices it spans.  Paired emit sites (reference loop vs fastpath
    kernel) must both apply the cap, or the telemetry-parity tests
    diverge at index ``cap``.

    Args:
        index: The element, shard, or period index.

    Returns:
        ``index`` itself while under the cap, else ``"overflow"``.
    """
    cap = _state.max_elements
    index = int(index)
    if cap <= 0 or index < cap:
        return index
    return "overflow"


def get_registry() -> MetricsRegistry:
    """The currently installed registry (always exists, may be idle)."""
    return _state.registry


class telemetry:
    """Context manager enabling (or disabling) telemetry temporarily.

    ``with telemetry():`` records into a **fresh** registry inside the
    block and restores the previous switch state on exit (the registry
    stays installed so callers can read it afterwards).  Pass
    ``enabled=False`` to silence an instrumented region inside an
    otherwise telemetered process, or ``fresh=False`` to keep
    accumulating into the current registry.
    """

    def __init__(self, enabled: bool = True, *, fresh: bool = True) -> None:
        self._target = enabled
        self._fresh = fresh
        self._previous = False

    def __enter__(self) -> MetricsRegistry:
        self._previous = _state.enabled
        if self._target and self._fresh:
            reset_telemetry()
        _state.enabled = self._target
        return _state.registry

    def __exit__(self, *exc_info: object) -> None:
        _state.enabled = self._previous


# ---------------------------------------------------------------------------
# Facade: what the instrumented hot paths call.  Each function is one
# branch when telemetry is off.
# ---------------------------------------------------------------------------

def counter_add(name: str, amount: float = 1.0) -> None:
    """Add to a counter if telemetry is on (no-op branch otherwise)."""
    if _state.enabled:
        _state.registry.counter_add(name, amount)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge if telemetry is on (no-op branch otherwise)."""
    if _state.enabled:
        _state.registry.gauge_set(name, value)


def observe(name: str, value: float,
            buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
    """Histogram an observation if telemetry is on."""
    if _state.enabled:
        _state.registry.observe(name, value, buckets)


def event(kind: str, /, **fields: Any) -> None:
    """Append an event to the tape if telemetry is on."""
    if _state.enabled:
        _state.registry.event(kind, **fields)


def span(name: str) -> SpanHandle | _NoOpSpan:
    """A wall-time span when telemetry is on; a shared no-op when off."""
    if _state.enabled:
        return _state.registry.span(name)
    return _NOOP_SPAN


def ledger_refresh(element: int, time: float) -> None:
    """Record a successful sync of ``element`` at simulated ``time``.

    The element index is routed through :func:`element_label`, so the
    ledger shares the tape's cardinality cap.  One branch when
    telemetry is off.
    """
    if _state.enabled:
        _state.registry.ledger.record_refresh(element_label(element),
                                              time)


def ledger_stale(element: int, time: float) -> None:
    """Record an update that caught ``element`` fresh (opening a
    stale run) at simulated ``time``.  One branch when telemetry is
    off.
    """
    if _state.enabled:
        _state.registry.ledger.record_stale(element_label(element),
                                            time)


def iter_metric_names(registry: MetricsRegistry) -> Iterator[str]:
    """Every metric name in a registry, sorted, without duplicates."""
    seen = sorted(set(registry.counters) | set(registry.gauges)
                  | set(registry.histograms))
    yield from seen


def as_mapping(registry: MetricsRegistry) -> Mapping[str, Any]:
    """A plain-dict snapshot of scalars (for quick assertions/JSON)."""
    return {"counters": dict(registry.counters),
            "gauges": dict(registry.gauges)}
