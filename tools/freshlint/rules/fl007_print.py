"""FL007 — no ``print`` in library code.

``src/repro`` is imported by the simulator, the benchmark harness and
(per the ROADMAP) eventually long-running services; writing to stdout
from a solver corrupts machine-readable output (the CLI's JSON mode,
benchmark CSVs) and cannot be routed or silenced.  Entry-point scripts
(``cli.py``, ``__main__.py``, ``examples/``, ``benchmarks/``) are the
places that talk to humans.

Autofix: a plain ``print(a, b, ...)`` (positional args only) becomes
``logging.getLogger(__name__).info(...)`` — one argument passes
through unchanged, several become a lazily-formatted ``"%s %s"``
message matching print's space-separated output — and ``import
logging`` is inserted once if the module lacks it.  Calls using
``sep``/``end``/``file``/``flush`` or starred arguments change
semantics under any rewrite, so they are reported without a fix.
"""

from __future__ import annotations

import ast
from typing import Iterator

from freshlint.autofix import Fix, TextEdit
from freshlint.engine import ModuleContext, Violation
from freshlint.rules.base import Rule

__all__ = ["NoPrintInLibrary"]


def _imports_logging(tree: ast.Module) -> bool:
    """Whether the module's top level already imports ``logging``."""
    for node in tree.body:
        if isinstance(node, ast.Import) and any(
                alias.name.split(".")[0] == "logging"
                for alias in node.names):
            return True
        if isinstance(node, ast.ImportFrom) and \
                (node.module or "").split(".")[0] == "logging":
            return True
    return False


def _import_logging_edit(context: ModuleContext) -> TextEdit | None:
    """An insertion adding ``import logging``, or None if present.

    The insertion lands after the module docstring and any
    ``__future__`` imports (which must stay first), before everything
    else.
    """
    if _imports_logging(context.tree):
        return None
    line = 1
    for statement in context.tree.body:
        is_docstring = (isinstance(statement, ast.Expr)
                        and isinstance(statement.value, ast.Constant)
                        and isinstance(statement.value.value, str))
        is_future = (isinstance(statement, ast.ImportFrom)
                     and statement.module == "__future__")
        if not (is_docstring or is_future):
            break
        line = (statement.end_lineno or statement.lineno) + 1
    return TextEdit(line=line, col=0, end_line=line, end_col=0,
                    replacement="import logging\n")


def _print_fix(context: ModuleContext, node: ast.Call) -> Fix | None:
    """A ``print → logging`` rewrite, or None when semantics would
    change (keywords, starred args, unreadable spans)."""
    if node.keywords:
        return None
    if any(isinstance(arg, ast.Starred) for arg in node.args):
        return None
    if node.end_lineno is None or node.end_col_offset is None:
        return None
    segments = []
    for arg in node.args:
        segment = ast.get_source_segment(context.source, arg)
        if segment is None:
            return None
        segments.append(segment)
    logger = "logging.getLogger(__name__)"
    if not segments:
        call = f'{logger}.info("")'
    elif len(segments) == 1:
        call = f"{logger}.info({segments[0]})"
    else:
        template = " ".join(["%s"] * len(segments))
        call = f'{logger}.info("{template}", {", ".join(segments)})'
    edits = [TextEdit(line=node.lineno, col=node.col_offset,
                      end_line=node.end_lineno,
                      end_col=node.end_col_offset, replacement=call)]
    import_edit = _import_logging_edit(context)
    if import_edit is not None:
        edits.append(import_edit)
    return Fix(description="replace print() with "
                           "logging.getLogger(__name__).info()",
               edits=tuple(edits))


class NoPrintInLibrary(Rule):
    """Flag ``print(...)`` calls in importable library modules."""

    code = "FL007"
    name = "no-print-in-library"
    summary = "no print() in src/repro outside cli.py/__main__.py"

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        if not context.is_library or context.is_entry_point \
                or context.is_test:
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "print":
                yield self.violation(
                    context, node,
                    "print() in library code; return the value, raise, "
                    "or use the logging module so output stays routable",
                    fix=_print_fix(context, node))
