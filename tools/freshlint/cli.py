"""freshlint command-line interface.

Exit codes follow the usual linter convention: 0 clean, 1 violations
found (or remaining after ``--fix``), 2 usage error.

Beyond the per-file rules, the CLI fronts two engines:

* ``--seedflow`` additionally runs the project-wide RNG-provenance
  rules (FL011-FL014) over the whole file set at once;
* ``--fix`` applies every machine-applicable remediation in place
  (``--diff`` shows the rewrites as a unified diff instead of
  writing them).

``--json FILE`` writes the findings as a machine-readable artifact
(``-`` for stdout) — used by the CI lint job.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from freshlint.autofix import fix_file, unified_diff
from freshlint.engine import (
    LintConfig,
    Violation,
    iter_python_files,
    run_paths,
)
from freshlint.rules import ALL_RULES
from freshlint.seedflow import SEEDFLOW_RULES, run_seedflow

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="freshlint",
        description=("Domain-aware static analysis for the data-"
                     "freshening codebase (per-file rules FL001-FL010,"
                     " project-wide seedflow rules FL011-FL014)."),
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--select", metavar="CODES", default="",
                        help="comma-separated rule codes to run "
                             "exclusively (e.g. FL001,FL013)")
    parser.add_argument("--ignore", metavar="CODES", default="",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--seedflow", action="store_true",
                        help="also run the project-wide RNG-provenance"
                             " rules (FL011-FL014)")
    parser.add_argument("--fix", action="store_true",
                        help="apply machine-applicable fixes in place"
                             " (idempotent; exit 1 if violations "
                             "remain)")
    parser.add_argument("--diff", action="store_true",
                        help="with --fix semantics, print the rewrites"
                             " as a unified diff instead of writing")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write findings as a JSON artifact "
                             "('-' for stdout)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    return parser


def _parse_codes(raw: str) -> tuple[str, ...]:
    return tuple(code.strip().upper() for code in raw.split(",")
                 if code.strip())


def _violations_payload(violations: Sequence[Violation]) -> str:
    return json.dumps(
        [{"code": v.code, "path": str(v.path), "line": v.line,
          "column": v.column, "message": v.message}
         for v in violations],
        indent=2) + "\n"


def _write_json(target: str, violations: Sequence[Violation]) -> None:
    payload = _violations_payload(violations)
    if target == "-":
        sys.stdout.write(payload)
    else:
        Path(target).write_text(payload, encoding="utf-8")


def _run_fixes(paths: Sequence[str], config: LintConfig, *,
               dry_run: bool) -> tuple[list[Violation], int]:
    """Fix every file under ``paths``; returns (remaining, applied)."""
    remaining: list[Violation] = []
    applied = 0
    for path in iter_python_files(paths):
        original = path.read_text(encoding="utf-8")
        report = fix_file(path, config, write=not dry_run)
        applied += report.applied
        remaining.extend(report.remaining)
        if dry_run and report.changed:
            sys.stdout.write(unified_diff(original, report.new_source,
                                          path))
    return remaining, applied


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name:<28} {rule.summary}")
        for info in SEEDFLOW_RULES:
            print(f"{info.code}  {info.name:<28} {info.summary}")
        return 0

    known = {rule.code for rule in ALL_RULES}
    known |= {info.code for info in SEEDFLOW_RULES}
    select = _parse_codes(options.select)
    ignore = _parse_codes(options.ignore)
    unknown = (set(select) | set(ignore)) - known
    if unknown:
        parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    if options.diff and not options.fix:
        parser.error("--diff requires --fix")

    config = LintConfig(select=select, ignore=ignore)

    applied = 0
    if options.fix:
        violations, applied = _run_fixes(options.paths, config,
                                         dry_run=options.diff)
    else:
        violations = run_paths(options.paths, config)
    if options.seedflow:
        violations = violations + run_seedflow(options.paths, config)
        violations.sort(key=lambda v: (str(v.path), v.line, v.column,
                                       v.code))

    for violation in violations:
        print(violation.render())
    if options.json is not None:
        _write_json(options.json, violations)
    if not options.quiet:
        noun = "violation" if len(violations) == 1 else "violations"
        status = f"freshlint: {len(violations)} {noun}"
        if options.fix:
            verb = "previewed" if options.diff else "applied"
            status += f" remaining, {applied} fix(es) {verb}"
        print(status, file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
