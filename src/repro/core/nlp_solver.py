"""The Core Problem through a *generic* NLP solver (IMSL substitute).

The paper solved every optimization with the IMSL numerical
libraries, treating the objective as a black box.  That path is kept
alive here — backed by :class:`repro.numerics.optimize.
ProjectedGradientSolver` — for two reasons:

* it independently cross-checks the exact water-filling solver
  (their solutions agree to tight tolerance, which the test suite
  asserts), and
* it has the *generic-solver cost profile* the paper's scalability
  argument is built on: fine at hundreds of variables, rapidly
  intolerable beyond, which is what makes partitioning + clustering
  worthwhile.  The timing experiment (Figure 9) measures this path.
"""

from __future__ import annotations

import numpy as np

from repro.core.freshness import FixedOrderPolicy, FreshnessModel
from repro.core.solver import ScheduleSolution
from repro.errors import InfeasibleProblemError, ValidationError
from repro.numerics.optimize import ProjectedGradientSolver
from repro.workloads.catalog import Catalog

__all__ = ["solve_core_problem_nlp", "solve_weighted_problem_nlp"]

_DEFAULT_MODEL = FixedOrderPolicy()


def solve_weighted_problem_nlp(weights: np.ndarray,
                               change_rates: np.ndarray,
                               costs: np.ndarray, bandwidth: float, *,
                               model: FreshnessModel | None = None,
                               max_iterations: int = 2000,
                               tolerance: float = 1e-10,
                               ) -> ScheduleSolution:
    """Solve the weighted Core Problem by projected gradient ascent.

    Same contract as :func:`repro.core.solver.solve_weighted_problem`
    but through the generic NLP machinery.  Prefer the exact solver
    unless you are specifically exercising the paper's cost model.

    Args:
        weights: Nonnegative objective weights.
        change_rates: Poisson change rates ``λ ≥ 0``, in changes per
            period.
        costs: Strictly positive bandwidth cost per sync, in size
            units.
        bandwidth: Budget ``B > 0``, in size units per period.
        model: Freshness model (Fixed-Order by default).
        max_iterations: Gradient iteration budget.
        tolerance: Stationarity tolerance.

    Returns:
        A feasible, near-optimal :class:`ScheduleSolution` (its
        ``multiplier`` is the mean active-element marginal, the NLP
        analogue of μ).
    """
    weights = np.asarray(weights, dtype=float)
    change_rates = np.asarray(change_rates, dtype=float)
    costs = np.asarray(costs, dtype=float)
    if not (weights.shape == change_rates.shape == costs.shape):
        raise ValidationError("inputs must have matching shapes")
    if bandwidth <= 0.0:
        raise InfeasibleProblemError(
            f"bandwidth must be positive, got {bandwidth!r}")
    chosen = model if model is not None else _DEFAULT_MODEL

    def objective(freqs: np.ndarray) -> tuple[float, np.ndarray]:
        value = float(weights @ chosen.freshness(change_rates, freqs))
        grad = weights * chosen.derivative(change_rates, freqs)
        return value, grad

    solver = ProjectedGradientSolver(objective,
                                     max_iterations=max_iterations,
                                     tolerance=tolerance)
    result = solver.solve(costs, bandwidth)
    frequencies = result.x
    active = frequencies > 0.0
    if active.any():
        marginals = (weights * chosen.derivative(change_rates, frequencies)
                     / costs)
        multiplier = float(marginals[active].mean())
    else:
        multiplier = 0.0
    return ScheduleSolution(frequencies=frequencies, multiplier=multiplier,
                            bandwidth=float(costs @ frequencies),
                            objective=result.value,
                            iterations=result.iterations)


def solve_core_problem_nlp(catalog: Catalog, bandwidth: float, *,
                           model: FreshnessModel | None = None,
                           max_iterations: int = 2000,
                           tolerance: float = 1e-10) -> ScheduleSolution:
    """Core Problem for a catalog, through the generic NLP solver.

    Args:
        catalog: Workload description.
        bandwidth: Sync bandwidth budget per period.
        model: Freshness model (Fixed-Order by default).
        max_iterations: Gradient iteration budget.
        tolerance: Stationarity tolerance.

    Returns:
        A feasible, near-optimal :class:`ScheduleSolution`.
    """
    return solve_weighted_problem_nlp(catalog.access_probabilities,
                                      catalog.change_rates, catalog.sizes,
                                      bandwidth, model=model,
                                      max_iterations=max_iterations,
                                      tolerance=tolerance)
