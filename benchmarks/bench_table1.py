"""Table 1 — optimal sync frequencies for the five-element example.

Paper rows:
    (a) change freq   1     2     3     4     5
    (b) sync (P1)     1.15  1.36  1.35  1.14  0.00
    (c) sync (P2)     0.33  0.67  1.00  1.33  1.67
    (d) sync (P3)     1.68  1.83  1.49  0.00  0.00
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import table1
from repro.analysis.tables import format_table


def test_table1(benchmark, report):
    results = benchmark(table1)

    assert np.round(results["P1"], 2).tolist() == [1.15, 1.36, 1.35,
                                                   1.14, 0.00]
    assert np.round(results["P2"], 2).tolist() == [0.33, 0.67, 1.00,
                                                   1.33, 1.67]
    assert np.allclose(results["P3"], [1.685, 1.83, 1.49, 0.0, 0.0],
                       atol=0.01)

    headers = ["row"] + [f"e{i + 1}" for i in range(5)]
    rows = [["(a) change freq"]
            + [f"{v:g}" for v in results["change_rates"]]]
    paper = {"P1": "(b)", "P2": "(c)", "P3": "(d)"}
    for profile in ("P1", "P2", "P3"):
        rows.append([f"{paper[profile]} sync freq ({profile})"]
                    + [f"{v:.2f}" for v in results[profile]])
    report("table1", "Table 1 — optimal sync frequencies\n"
           + format_table(headers, rows))
