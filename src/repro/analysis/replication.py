"""Replication harness: simulation results with confidence intervals.

One simulated number is an anecdote; the paper's claims deserve
interval estimates.  :func:`replicate` runs any seeded scalar-valued
experiment K times and summarizes with a Student-t interval;
:func:`simulated_pf_interval` is the common case — the monitored
perceived freshness of a schedule — and additionally reports whether
the analytic prediction falls inside the interval (the dual-evaluator
agreement the paper verified by hand).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable

import numpy as np

from repro.core.metrics import perceived_freshness
from repro.errors import ValidationError
from repro.numerics.stats import ConfidenceInterval, mean_confidence_interval
from repro.parallel import parallel_map, seed_rng
from repro.sim.simulation import Simulation
from repro.workloads.catalog import Catalog

__all__ = ["ReplicatedEstimate", "replicate", "simulated_pf_interval"]


@dataclass(frozen=True)
class ReplicatedEstimate:
    """A replicated simulation estimate with its reference value.

    Attributes:
        interval: The replication-mean confidence interval.
        samples: The individual replication values.
        reference: The analytic prediction being validated (None if
            not applicable).
        agrees: Whether the reference lies inside the interval (None
            when there is no reference).
    """

    interval: ConfidenceInterval
    samples: np.ndarray
    reference: float | None = None

    @property
    def agrees(self) -> bool | None:
        """Whether the analytic reference falls inside the interval."""
        if self.reference is None:
            return None
        return self.interval.contains(self.reference)


def replicate(experiment: Callable[[int], float], *,
              n_replications: int, base_seed: int = 0,
              confidence: float = 0.95,
              reference: float | None = None,
              jobs: int = 1) -> ReplicatedEstimate:
    """Run a seeded experiment K times and summarize.

    Args:
        experiment: Maps a seed to a scalar outcome.  Must be
            picklable (a module-level function or a
            :func:`functools.partial` over one) when ``jobs != 1``.
        n_replications: Number of independent runs, >= 2.
        base_seed: Seeds used are ``base_seed .. base_seed+K−1``.
        confidence: Interval coverage.
        reference: Optional analytic value to validate.
        jobs: Worker processes for the replications; 1 (default)
            runs them serially in-process, bit-identically.

    Returns:
        The :class:`ReplicatedEstimate`.
    """
    if n_replications < 2:
        raise ValidationError(
            f"n_replications must be >= 2, got {n_replications}")
    samples = np.array([
        float(value) for value in parallel_map(
            experiment,
            range(base_seed, base_seed + n_replications),
            jobs=jobs, label="parallel.replicate")
    ])
    interval = mean_confidence_interval(samples, confidence=confidence)
    return ReplicatedEstimate(interval=interval, samples=samples,
                              reference=reference)


def _pf_replication(seed: int, *, catalog: Catalog,
                    frequencies: np.ndarray, n_periods: float,
                    request_rate: float) -> float:
    """One monitored-PF replication (module-level so it pickles)."""
    simulation = Simulation(catalog, frequencies,
                            request_rate=request_rate,
                            rng=seed_rng(seed))
    return simulation.run(
        n_periods=n_periods).monitored_perceived_freshness


def simulated_pf_interval(catalog: Catalog, frequencies: np.ndarray, *,
                          n_replications: int = 5,
                          n_periods: float = 50,
                          request_rate: float = 500.0,
                          base_seed: int = 0,
                          confidence: float = 0.95,
                          jobs: int = 1) -> ReplicatedEstimate:
    """Replicated monitored PF of a schedule, vs its analytic value.

    Args:
        catalog: Workload description.
        frequencies: The schedule to evaluate.
        n_replications: Independent simulation runs.
        n_periods: Periods per run.
        request_rate: Accesses per period.
        base_seed: First replication seed.
        confidence: Interval coverage.
        jobs: Worker processes for the replications (1 = serial,
            bit-identical; each worker reseeds from its own
            ``SeedSequence``, preserving CRN pairing).

    Returns:
        A :class:`ReplicatedEstimate` whose ``reference`` is the
        closed-form perceived freshness.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    run = partial(_pf_replication, catalog=catalog,
                  frequencies=frequencies, n_periods=n_periods,
                  request_rate=request_rate)
    return replicate(run, n_replications=n_replications,
                     base_seed=base_seed, confidence=confidence,
                     reference=perceived_freshness(catalog, frequencies),
                     jobs=jobs)
