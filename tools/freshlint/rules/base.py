"""Rule base class and shared AST helpers."""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from freshlint.engine import ModuleContext, Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from freshlint.autofix import Fix

__all__ = ["Rule", "function_params", "walk_functions"]


class Rule:
    """One lint rule.

    Subclasses set ``code`` (``FLxxx``), ``name`` (kebab-case slug)
    and ``summary`` (one line, shown by ``--list-rules``), and
    implement :meth:`check`.
    """

    code: str = "FL000"
    name: str = "abstract-rule"
    summary: str = ""

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        """Yield violations found in one module."""
        raise NotImplementedError

    def violation(self, context: ModuleContext, node: ast.AST,
                  message: str, *, fix: "Fix | None" = None
                  ) -> Violation:
        """Build a violation anchored at ``node``.

        ``fix`` optionally attaches a :class:`freshlint.autofix.Fix`
        so ``freshlint --fix`` can remediate the finding.
        """
        return Violation(code=self.code, path=context.path,
                         line=getattr(node, "lineno", 1),
                         column=getattr(node, "col_offset", 0),
                         message=message, fix=fix)


def function_params(node: ast.FunctionDef | ast.AsyncFunctionDef,
                    ) -> list[str]:
    """All parameter names of a function, ``self``/``cls`` excluded."""
    args = node.args
    names = [a.arg for a in (*args.posonlyargs, *args.args,
                             *args.kwonlyargs)]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return [n for n in names if n not in ("self", "cls")]


def walk_functions(tree: ast.Module) -> Iterator[ast.FunctionDef |
                                                 ast.AsyncFunctionDef]:
    """Yield every function/method definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
