"""End-to-end checks that the stack reports through the telemetry layer."""

from __future__ import annotations

import pytest

from repro import (
    AdaptiveMirrorManager,
    PartitionedFreshener,
    PerceivedFreshener,
    Simulation,
)
from repro.contracts import (
    check_sync_conservation,
    enable_contracts,
    refresh_from_env,
)
from repro.core import IncrementalSolver, solve_core_problem
from repro.errors import ContractViolationError
from repro.obs import registry as obs

from tests.conftest import random_catalog


@pytest.fixture
def catalog(rng):
    return random_catalog(rng, 40)


def test_solver_records_counters_span_and_event(catalog):
    with obs.telemetry() as registry:
        solution = solve_core_problem(catalog, 20.0)
    assert registry.counters["solver.calls"] == 1.0
    assert registry.counters["waterfill.calls"] >= 1.0
    assert registry.counters["solver.iterations"] >= 1.0
    assert registry.gauges["solver.multiplier"] == pytest.approx(
        solution.multiplier)
    assert registry.span_totals["solver.solve_weighted"][0] == 1
    (event,) = registry.events_of_kind("solver.solve")
    assert event["n_elements"] == catalog.n_elements
    assert registry.histograms["waterfill.iterations"].counts


def test_incremental_solver_distinguishes_cold_and_warm(catalog):
    with obs.telemetry() as registry:
        solver = IncrementalSolver()
        solver.solve(catalog, 20.0)
        solver.solve(catalog, 20.5)
    assert registry.counters["incremental.cold_solves"] == 1.0
    assert registry.counters["incremental.warm_hits"] == 1.0
    assert registry.gauges["incremental.last_multiplier"] > 0.0


def test_partitioned_plan_records_kmeans_iterations(catalog):
    with obs.telemetry() as registry:
        PartitionedFreshener(4, cluster_iterations=2).plan(catalog, 20.0)
    assert registry.counters["kmeans.iterations"] >= 1.0
    assert "kmeans.inertia" in registry.gauges


def test_kmeans_entry_point_records_run_and_span(rng):
    from repro.numerics.kmeans import kmeans

    points = rng.normal(size=(50, 2))
    labels = rng.integers(0, 3, size=50)
    with obs.telemetry() as registry:
        kmeans(points, labels, 3, iterations=4)
    assert registry.counters["kmeans.runs"] == 1.0
    assert "kmeans.run" in registry.span_totals


def test_simulation_emits_per_period_series_and_totals(catalog, rng):
    plan = PerceivedFreshener().plan(catalog, 20.0)
    with obs.telemetry() as registry:
        result = Simulation(catalog, plan.frequencies,
                            request_rate=200.0, rng=rng).run(n_periods=5)
    periods = registry.events_of_kind("sim.period")
    assert [event["period"] for event in periods] == [0, 1, 2, 3, 4]
    assert sum(event["syncs"] for event in periods) == result.n_syncs
    assert registry.counters["sim.runs"] == 1.0
    assert registry.counters["sim.syncs"] == result.n_syncs
    assert registry.gauges["sim.monitored_perceived_freshness"] == (
        pytest.approx(result.monitored_perceived_freshness))
    assert registry.span_totals["sim.run"][0] == 1
    (close,) = registry.events_of_kind("monitor.close")
    assert close["accesses"] == registry.counters["sim.accesses"]


def test_manager_periods_show_up_with_nested_spans(catalog, rng):
    with obs.telemetry() as registry:
        manager = AdaptiveMirrorManager(catalog, 20.0, request_rate=200.0,
                                        rng=rng)
        manager.run(2)
    assert registry.counters["manager.periods"] == 2.0
    assert registry.counters["manager.replans"] >= 1.0
    assert len(registry.events_of_kind("manager.period")) == 2
    nested = [path for path in registry.span_totals
              if path.startswith("manager.plan/")]
    assert "manager.plan/solver.solve_weighted" in nested


def test_contract_violations_land_on_the_event_tape():
    enable_contracts()
    try:
        with obs.telemetry() as registry:
            with pytest.raises(ContractViolationError):
                check_sync_conservation(500.0, 10.0, 20.0, 3.0,
                                        where="test")
        (event,) = registry.events_of_kind("contract_violation")
        assert event["where"] == "test"
        assert registry.counters["contracts.violations"] == 1.0
    finally:
        refresh_from_env()


def test_nothing_is_recorded_while_disabled(catalog, rng):
    obs.disable_telemetry()
    registry = obs.reset_telemetry()
    plan = PerceivedFreshener().plan(catalog, 20.0)
    Simulation(catalog, plan.frequencies, request_rate=100.0,
               rng=rng).run(n_periods=2)
    assert not registry.counters
    assert not registry.events
    assert not registry.span_totals
