"""Concrete synchronization schedules (the Fixed-Order policy in time).

The solvers produce per-element sync *frequencies*; a mirror needs
actual poll instants.  Under the Fixed-Order policy every element is
synchronized at evenly spaced instants — element i with frequency fᵢ
(per period of length T) is polled every T/fᵢ time units.  Phases are
staggered deterministically so the poll load is spread across the
period instead of bursting at t = 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.errors import ScheduleError

__all__ = ["PhasePolicy", "SyncSchedule"]


class PhasePolicy(str, Enum):
    """How the first sync of each element is offset within its interval."""

    #: All elements fire their first sync at t = 0 (bursty; useful in
    #: tests for predictability).
    ZERO = "zero"
    #: Element i starts at a deterministic fraction of its interval,
    #: spreading load evenly (golden-ratio low-discrepancy offsets).
    STAGGERED = "staggered"
    #: Phases are drawn uniformly at random in [0, interval).
    RANDOM = "random"


_GOLDEN = 0.6180339887498949


@dataclass(frozen=True)
class SyncSchedule:
    """A Fixed-Order synchronization schedule.

    Attributes:
        frequencies: Syncs per period for each element, ``f ≥ 0``.
        period_length: Length T of one sync period in clock time.
        phases: First-sync offset of each element, in clock time,
            within ``[0, interval)``; meaningless (0) for f = 0.
    """

    frequencies: np.ndarray
    period_length: float
    phases: np.ndarray

    def __post_init__(self) -> None:
        frequencies = np.asarray(self.frequencies, dtype=float)
        phases = np.asarray(self.phases, dtype=float)
        if frequencies.ndim != 1:
            raise ScheduleError("frequencies must be 1-D")
        if (frequencies < 0.0).any():
            raise ScheduleError("frequencies must be nonnegative")
        if self.period_length <= 0.0:
            raise ScheduleError(
                f"period_length must be > 0, got {self.period_length}")
        if phases.shape != frequencies.shape:
            raise ScheduleError("phases must match frequencies in shape")
        if (phases < 0.0).any():
            raise ScheduleError("phases must be nonnegative")
        frequencies = frequencies.copy()
        phases = phases.copy()
        frequencies.flags.writeable = False
        phases.flags.writeable = False
        object.__setattr__(self, "frequencies", frequencies)
        object.__setattr__(self, "phases", phases)

    @classmethod
    def from_frequencies(cls, frequencies: np.ndarray, *,
                         period_length: float = 1.0,
                         phase_policy: PhasePolicy | str =
                         PhasePolicy.STAGGERED,
                         rng: np.random.Generator | None = None,
                         ) -> "SyncSchedule":
        """Build a schedule from per-period frequencies.

        Args:
            frequencies: Syncs per period per element.
            period_length: Clock length of a period.
            phase_policy: How first-sync offsets are chosen.
            rng: Required for :attr:`PhasePolicy.RANDOM`.

        Returns:
            The schedule.

        Raises:
            ScheduleError: For invalid inputs or a missing ``rng``.
        """
        frequencies = np.asarray(frequencies, dtype=float)
        policy = (phase_policy if isinstance(phase_policy, PhasePolicy)
                  else PhasePolicy(str(phase_policy).lower()))
        with np.errstate(divide="ignore"):
            intervals = np.where(frequencies > 0.0,
                                 period_length / np.maximum(frequencies,
                                                            1e-300), 0.0)
        if policy is PhasePolicy.ZERO:
            phases = np.zeros_like(frequencies)
        elif policy is PhasePolicy.STAGGERED:
            n = frequencies.shape[0]
            fractions = (np.arange(n) * _GOLDEN) % 1.0
            phases = fractions * intervals
        else:
            if rng is None:
                raise ScheduleError("random phases require an rng")
            phases = rng.uniform(0.0, 1.0, size=frequencies.shape) * intervals
        return cls(frequencies=frequencies, period_length=period_length,
                   phases=phases)

    @property
    def n_elements(self) -> int:
        """Number of elements covered by the schedule."""
        return int(self.frequencies.shape[0])

    def intervals(self) -> np.ndarray:
        """Clock time between syncs per element (inf for f = 0)."""
        with np.errstate(divide="ignore"):
            return np.where(self.frequencies > 0.0,
                            self.period_length / np.maximum(
                                self.frequencies, 1e-300), np.inf)

    def sync_times(self, element: int, horizon: float) -> np.ndarray:
        """All sync instants of one element in ``[0, horizon)``.

        Args:
            element: Element index.
            horizon: End of the window, > 0.

        Returns:
            Sorted sync times (possibly empty).
        """
        if horizon <= 0.0:
            raise ScheduleError(f"horizon must be > 0, got {horizon}")
        f = float(self.frequencies[element])
        if f <= 0.0:
            return np.empty(0)
        interval = self.period_length / f
        start = float(self.phases[element])
        count = int(np.ceil(max(horizon - start, 0.0) / interval))
        times = start + interval * np.arange(count)
        return times[times < horizon]

    def _expand_events(self, first_k: np.ndarray, counts: np.ndarray,
                       active: np.ndarray, interval: np.ndarray,
                       phase: np.ndarray, start: float, end: float,
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Materialize sync instants for per-element k-index ranges.

        Event times are computed as ``phase + interval * k`` — the same
        float operations :meth:`sync_times` performs — so every caller
        produces bit-identical instants for the same (element, k) pair.
        """
        total = int(counts.sum())
        if total == 0:
            return np.empty(0), np.empty(0, dtype=np.int64)
        rep = np.repeat(np.arange(active.shape[0]), counts)
        block_start = np.cumsum(counts) - counts
        k = (np.arange(total, dtype=np.int64) - block_start[rep]
             + first_k[rep])
        times = phase[rep] + interval[rep] * k
        keep = times < end
        if start > 0.0:
            keep &= times >= start
        times = times[keep]
        elements = active[rep[keep]].astype(np.int64, copy=False)
        order = np.argsort(times, kind="stable")
        return times[order], elements[order]

    def _active_intervals(self) -> tuple[np.ndarray, np.ndarray,
                                         np.ndarray]:
        """Indices, true intervals and phases of schedulable elements."""
        finite = np.isfinite(self.intervals())
        active = np.flatnonzero((self.frequencies > 0.0) & finite)
        with np.errstate(over="ignore"):
            interval = self.period_length / self.frequencies[active]
        return active, interval, self.phases[active]

    def events_until(self, horizon: float) -> tuple[np.ndarray, np.ndarray]:
        """All sync events in ``[0, horizon)``, time-ordered.

        Vectorized across elements; output is bit-identical to
        concatenating :meth:`sync_times` per element and stable-sorting
        by time (ties keep element order).

        Args:
            horizon: End of the window, > 0.

        Returns:
            ``(times, elements)`` — parallel arrays sorted by time.
        """
        if horizon <= 0.0:
            raise ScheduleError(f"horizon must be > 0, got {horizon}")
        active, interval, phase = self._active_intervals()
        if active.size == 0:
            return np.empty(0), np.empty(0, dtype=np.int64)
        counts_f = np.ceil(np.maximum(horizon - phase, 0.0) / interval)
        if not np.isfinite(counts_f).all():
            raise ScheduleError("sync count overflows the horizon window")
        return self._expand_events(
            np.zeros(active.shape[0], dtype=np.int64),
            counts_f.astype(np.int64), active, interval, phase,
            0.0, horizon)

    def events_between(self, start: float, end: float
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Sync events in ``[start, end)`` — a streaming window.

        Lets an executor pull the schedule one slab at a time instead
        of materializing an unbounded horizon.  Only the window's own
        events are generated (plus a one-index guard band per element
        against division rounding at the boundaries), so cost is
        O(events in window), and adjacent windows partition the stream
        exactly: each event's time is computed with the same float
        operations in every window, then assigned by ``start <= t <
        end`` on that shared value.

        Args:
            start: Window start, >= 0.
            end: Window end, > ``start``.

        Returns:
            ``(times, elements)`` sorted by time within the window.
        """
        if start < 0.0:
            raise ScheduleError(f"start must be >= 0, got {start}")
        if end <= start:
            raise ScheduleError(
                f"end must exceed start, got [{start}, {end})")
        active, interval, phase = self._active_intervals()
        if active.size == 0:
            return np.empty(0), np.empty(0, dtype=np.int64)
        end_count = np.ceil(np.maximum(end - phase, 0.0) / interval) + 1.0
        if start > 0.0:
            first = np.maximum(
                np.floor((start - phase) / interval) - 1.0, 0.0)
        else:
            first = np.zeros(active.shape[0])
        counts_f = np.maximum(end_count - first, 0.0)
        if not np.isfinite(counts_f).all():
            raise ScheduleError("sync count overflows the window")
        return self._expand_events(
            first.astype(np.int64), counts_f.astype(np.int64),
            active, interval, phase, start, end)

    def syncs_per_period(self) -> float:
        """Total sync operations per period, ``Σ fᵢ``."""
        return float(self.frequencies.sum())

    def bandwidth_per_period(self, sizes: np.ndarray) -> float:
        """Total bandwidth per period, ``Σ sᵢ·fᵢ``."""
        sizes = np.asarray(sizes, dtype=float)
        if sizes.shape != self.frequencies.shape:
            raise ScheduleError("sizes must match frequencies in shape")
        return float(sizes @ self.frequencies)
