"""Unit tests for the seedflow project-wide rules (FL011-FL014).

Fixtures under ``tests/fixtures/freshlint`` are analyzed as
self-contained one-file projects under a widened config (everything
is library + kernel scope), so the rules fire regardless of where the
checkout lives.
"""

from __future__ import annotations

from pathlib import Path

from freshlint.engine import LintConfig
from freshlint.seedflow import (
    Provenance,
    analyze_function,
    build_project,
    run_seedflow,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "freshlint"

#: Everything is library + kernel scope; nothing is a test/entry point.
STRICT = LintConfig(entry_point_globs=(), test_globs=(),
                    library_globs=("*",), solver_globs=("*",),
                    clock_globs=("*",), kernel_globs=("*",))


def codes_in(fixture: str) -> list[str]:
    violations = run_seedflow([FIXTURES / fixture], STRICT)
    return [v.code for v in violations]


# ---------------------------------------------------------------------------
# FL011 — non-CRN RNG creation


def test_fl011_flags_raw_seed_creations() -> None:
    codes = codes_in("bad_fl011_raw_seed.py")
    # module-level, raw param seed, RandomState, derived int
    assert codes == ["FL011"] * 4


def test_fl011_clean_on_crn_discipline() -> None:
    assert codes_in("good_fl011_crn_seed.py") == []


def test_fl011_respects_entry_point_scope() -> None:
    exempt = LintConfig(entry_point_globs=("*",), test_globs=(),
                        library_globs=("*",), kernel_globs=("*",))
    violations = run_seedflow([FIXTURES / "bad_fl011_raw_seed.py"],
                              exempt)
    assert violations == []


# ---------------------------------------------------------------------------
# FL012 — RNG across process boundaries


def test_fl012_flags_rng_and_closure_crossings() -> None:
    codes = codes_in("bad_fl012_rng_to_pool.py")
    # direct parallel_map arg, partial closure, pool.submit
    assert codes == ["FL012"] * 3


def test_fl012_clean_when_only_seeds_cross() -> None:
    assert codes_in("good_fl012_seeds_to_pool.py") == []


# ---------------------------------------------------------------------------
# FL013 — paired draw divergence


def test_fl013_flags_conditional_and_unmatched_draws() -> None:
    violations = run_seedflow(
        [FIXTURES / "bad_fl013_diverging_pair.py"], STRICT)
    assert [v.code for v in violations] == ["FL013", "FL013"]
    messages = " | ".join(v.message for v in violations)
    assert "conditional draw '.random()'" in messages
    assert ".normal()" in messages


def test_fl013_clean_on_matched_pair() -> None:
    assert codes_in("good_fl013_matched_pair.py") == []


def test_fl013_reports_unresolvable_pair_target(
        tmp_path: Path) -> None:
    path = tmp_path / "orphan.py"
    path.write_text(
        "# seedflow: pair=nowhere.to.be.found\n"
        "def kernel(rng):\n"
        "    return rng.random()\n", encoding="utf-8")
    violations = run_seedflow([path], STRICT)
    assert [v.code for v in violations] == ["FL013"]
    assert "not found" in violations[0].message


def test_fl013_pragma_suppression(tmp_path: Path) -> None:
    path = tmp_path / "suppressed.py"
    path.write_text(
        "# seedflow: pair=reference\n"
        "def kernel(flags, rng):\n"
        "    if flags:\n"
        "        # deliberate divergence, documented here\n"
        "        rng.random()  # freshlint: disable=FL013\n"
        "    return 0.0\n"
        "\n"
        "\n"
        "def reference(flags, rng):\n"
        "    return rng.random()\n", encoding="utf-8")
    assert run_seedflow([path], STRICT) == []


# ---------------------------------------------------------------------------
# FL014 — kernel dtype discipline


def test_fl014_flags_loose_dtypes() -> None:
    codes = codes_in("bad_fl014_loose_dtypes.py")
    # untyped literal, dtype=object, astype(object), array_equal
    assert codes == ["FL014"] * 4


def test_fl014_clean_on_pinned_dtypes() -> None:
    assert codes_in("good_fl014_pinned_dtypes.py") == []


def test_fl014_only_applies_to_kernel_paths() -> None:
    non_kernel = LintConfig(entry_point_globs=(), test_globs=(),
                            library_globs=("*",), kernel_globs=())
    violations = run_seedflow(
        [FIXTURES / "bad_fl014_loose_dtypes.py"], non_kernel)
    assert violations == []


# ---------------------------------------------------------------------------
# project index and provenance internals


def test_project_indexes_pairs_and_methods(tmp_path: Path) -> None:
    path = tmp_path / "mod.py"
    path.write_text(
        "class Engine:\n"
        "    def step(self, rng):\n"
        "        return rng.random()\n"
        "\n"
        "\n"
        "# seedflow: pair=Engine.step\n"
        "def kernel(rng):\n"
        "    return rng.random()\n", encoding="utf-8")
    project = build_project([path], STRICT)
    assert "mod.Engine.step" in project.functions
    assert "mod.kernel" in project.functions
    assert [p.reference for p in project.pairs] == ["Engine.step"]
    resolved = project.function_for_dotted(project.pairs[0].reference)
    assert resolved is not None
    assert resolved.qualname == "mod.Engine.step"
    assert [info.qualname for info in project.methods_named("step")] \
        == ["mod.Engine.step"]


def test_provenance_flows_through_returns(tmp_path: Path) -> None:
    path = tmp_path / "flows.py"
    path.write_text(
        "import numpy as np\n"
        "\n"
        "\n"
        "def make_seed(entropy):\n"
        "    return np.random.SeedSequence(entropy)\n"
        "\n"
        "\n"
        "def make_rng(entropy):\n"
        "    return np.random.default_rng(make_seed(entropy))\n",
        encoding="utf-8")
    project = build_project([path], STRICT)
    memo: dict[str, object] = {}
    maker = project.functions["flows.make_rng"]
    summary = analyze_function(maker, project, memo)
    # The SeedSequence provenance crossed the call: no creation finding
    # and the function provably returns a CRN generator.
    assert summary.creations == []
    assert summary.returns is Provenance.CRN_RNG


def test_seedflow_reports_syntax_errors(tmp_path: Path) -> None:
    path = tmp_path / "broken.py"
    path.write_text("def oops(:\n", encoding="utf-8")
    violations = run_seedflow([path], STRICT)
    assert [v.code for v in violations] == ["FL999"]
