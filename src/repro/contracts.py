"""Runtime contracts: env-gated solver postcondition checks.

The static side of the correctness tooling (``tools/freshlint``)
enforces *source* discipline; this module enforces the *mathematical*
invariants the solver stack promises at runtime:

* allocations are nonnegative (``f ≥ 0``),
* the budget is feasible (``Σ cᵢ·fᵢ ≤ B`` within rtol),
* KKT stationarity holds at the reported multiplier (Equation 6's
  "same marginal locus" invariant),
* access profiles live on the probability simplex,
* partition labels form a valid assignment.

Contracts are **off by default** and enabled by setting the
environment variable ``REPRO_CONTRACTS`` to ``1``/``true``/``yes``/
``on`` before the process starts (or programmatically via
:func:`enable_contracts` / the :func:`contracts` context manager).
When disabled, a contracted function pays one attribute load and one
branch per call — unmeasurable next to any real solve — so the
decorators stay applied permanently in CI, soak tests, and any
deployment that wants belt-and-braces checking.

Example::

    REPRO_CONTRACTS=1 python -m pytest        # checked test run

    from repro.contracts import contracts
    with contracts():
        solution = solve_core_problem(catalog, bandwidth=2.0)

A failed contract raises :class:`repro.errors.ContractViolationError`
naming the function, the invariant, and the observed magnitude.
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import Any, Callable, Iterator, Mapping, TypeVar

import numpy as np

from repro.errors import ContractViolationError
from repro.obs import registry as _obs

__all__ = [
    "BUDGET_RTOL",
    "KKT_RTOL",
    "NONNEG_ATOL",
    "SIMPLEX_ATOL",
    "check_attempt_budget",
    "check_budget_feasible",
    "check_kkt_stationarity",
    "check_multiplier_in_bracket",
    "check_nonnegative",
    "check_partition_labels",
    "check_simplex",
    "check_sync_conservation",
    "contracts",
    "contracts_enabled",
    "disable_contracts",
    "enable_contracts",
    "postcondition",
]

_TRUTHY = {"1", "true", "yes", "on"}

#: Relative slack allowed on ``Σ cᵢ·fᵢ ≤ B``.
BUDGET_RTOL = 1e-8
#: Relative (to the multiplier scale) slack on the KKT residual.
KKT_RTOL = 1e-4
#: Absolute slack below zero tolerated in "nonnegative" vectors.
NONNEG_ATOL = 0.0
#: Absolute slack on ``Σ p = 1`` (matches Catalog validation).
SIMPLEX_ATOL = 1e-8

F = TypeVar("F", bound=Callable[..., Any])


class _State:
    """Single shared switch; attribute lookup is the entire off-cost."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = os.environ.get(
            "REPRO_CONTRACTS", "").strip().lower() in _TRUTHY


_state = _State()


def contracts_enabled() -> bool:
    """Whether contract checks currently run."""
    return _state.enabled


def enable_contracts() -> None:
    """Turn contract checking on for this process."""
    _state.enabled = True


def disable_contracts() -> None:
    """Turn contract checking off for this process."""
    _state.enabled = False


def refresh_from_env() -> None:
    """Re-read ``REPRO_CONTRACTS`` (useful after monkeypatched env)."""
    _state.enabled = os.environ.get(
        "REPRO_CONTRACTS", "").strip().lower() in _TRUTHY


class contracts:
    """Context manager enabling (or disabling) contracts temporarily.

    ``with contracts():`` enables checking inside the block and
    restores the previous state on exit; ``with contracts(False):``
    disables it, e.g. around a hot loop inside an otherwise checked
    process.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._target = enabled
        self._previous = False

    def __enter__(self) -> "contracts":
        self._previous = _state.enabled
        _state.enabled = self._target
        return self

    def __exit__(self, *exc_info: object) -> None:
        _state.enabled = self._previous


def _fail(func_name: str, invariant: str, detail: str) -> None:
    # Violations are telemetry events too, so a checked soak run's
    # JSONL tape shows contract failures next to the metrics that led
    # up to them (no-op unless REPRO_TELEMETRY is on).
    _obs.event("contract_violation", where=func_name,
               invariant=invariant, detail=detail)
    _obs.counter_add("contracts.violations")
    raise ContractViolationError(
        f"contract violated in {func_name}: {invariant} - {detail}")


# ---------------------------------------------------------------------------
# Invariant checks (usable directly, not only through decorators).
# ---------------------------------------------------------------------------

def check_nonnegative(values: np.ndarray, *, name: str = "values",
                      atol: float = NONNEG_ATOL,
                      where: str = "<direct>") -> None:
    """Assert every entry is ``≥ -atol``."""
    values = np.asarray(values)
    low = float(values.min(initial=0.0))
    if low < -atol:
        _fail(where, f"{name} >= 0",
              f"min({name}) = {low!r} (atol={atol!r})")


def check_budget_feasible(costs: np.ndarray, frequencies: np.ndarray,
                          bandwidth: float, *,
                          rtol: float = BUDGET_RTOL,
                          where: str = "<direct>") -> None:
    """Assert ``Σ cᵢ·fᵢ ≤ B·(1 + rtol)``.

    Units: ``frequencies`` in syncs per period, ``costs`` in size
    units per sync, ``bandwidth`` in size units per period.

    The Core Problem's constraint is an *upper* bound on consumed
    bandwidth: under-spend is legal (utilities can saturate, see
    :func:`repro.numerics.waterfill.waterfill`), over-spend never is.
    """
    spent = float(np.asarray(costs) @ np.asarray(frequencies))
    if spent > bandwidth * (1.0 + rtol):
        _fail(where, "budget feasibility Σc·f <= B",
              f"spent {spent!r} of budget {bandwidth!r} "
              f"(excess ratio {spent / bandwidth - 1.0:.3e}, "
              f"rtol={rtol!r})")


def check_simplex(probabilities: np.ndarray, *,
                  name: str = "access_probabilities",
                  atol: float = SIMPLEX_ATOL,
                  where: str = "<direct>") -> None:
    """Assert a vector is a probability distribution (``≥0``, ``Σ=1``)."""
    p = np.asarray(probabilities, dtype=float)
    check_nonnegative(p, name=name, atol=atol, where=where)
    total = float(p.sum())
    if abs(total - 1.0) > atol:
        _fail(where, f"{name} on the simplex",
              f"sum = {total!r} (atol={atol!r})")


def check_partition_labels(labels: np.ndarray, n_partitions: int, *,
                           where: str = "<direct>") -> None:
    """Assert labels form a valid assignment into ``[0, k)``."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        _fail(where, "labels are 1-D", f"got shape {labels.shape}")
    if labels.size == 0:
        return
    low, high = int(labels.min()), int(labels.max())
    if low < 0 or high >= n_partitions:
        _fail(where, f"labels in [0, {n_partitions})",
              f"observed range [{low}, {high}]")


def check_multiplier_in_bracket(multiplier: float,
                                bracket: tuple[float, float], *,
                                rtol: float = 1e-9,
                                where: str = "<direct>") -> None:
    """Assert a warm-started solve's μ landed inside its bracket.

    The incremental solver hands :func:`repro.numerics.waterfill.
    waterfill` a bracket ``(μ_lo, μ_hi)`` promised to satisfy
    ``cost(μ_lo) ≥ B ≥ cost(μ_hi)``; the cost curve is nonincreasing
    in μ, so the resolved multiplier must land inside (a μ outside
    means the reuse logic — or the allocator's monotonicity — broke).
    Quantities are dimensionless multipliers.
    """
    mu_lo, mu_hi = bracket
    slack = rtol * max(abs(mu_hi), 1.0)
    if not (mu_lo - slack) <= multiplier <= (mu_hi + slack):
        _fail(where, "warm-start multiplier inside its bracket",
              f"multiplier {multiplier!r} outside "
              f"[{mu_lo!r}, {mu_hi!r}] (rtol={rtol!r})")


def check_sync_conservation(consumed: float, planned_per_period: float,
                            n_periods: float, slack: float, *,
                            rtol: float = BUDGET_RTOL,
                            where: str = "<direct>") -> None:
    """Assert the simulator conserved its sync budget.

    Cumulative sync bandwidth consumed over the horizon must not
    exceed the schedule's planned spend, ``B·T``, plus a granularity
    ``slack``: a Fixed-Order schedule syncs element *i* at most
    ``⌈fᵢ·T⌉ ≤ fᵢ·T + 1`` times in ``T`` periods, so one extra sync
    per scheduled element (``Σ sᵢ`` over elements with ``fᵢ > 0``) is
    the exact worst case.  Units: ``consumed`` and ``slack`` in size
    units, ``planned_per_period`` in size units per period,
    ``n_periods`` in periods.
    """
    limit = (planned_per_period * n_periods + slack) * (1.0 + rtol)
    if consumed > limit:
        _fail(where, "sync conservation Σ consumed <= B·T + slack",
              f"consumed {consumed!r} exceeds {limit!r} "
              f"(B·T = {planned_per_period * n_periods!r}, "
              f"slack = {slack!r})")


def check_attempt_budget(attempted: float, budget_per_period: float,
                         n_periods: float, slack: float, *,
                         rtol: float = BUDGET_RTOL,
                         where: str = "<direct>") -> None:
    """Assert the sync channel never overdrew the attempt budget.

    Under fault injection every *attempt* — successful poll, failed
    poll, retry — burns bandwidth, so the Core Problem's constraint
    binds on attempts, not on successes: cumulative attempted
    bandwidth over the horizon must stay within ``B·T`` plus the
    Fixed-Order granularity ``slack`` (one extra scheduled sync per
    element, exactly as :func:`check_sync_conservation` allows).
    Units: ``attempted`` and ``slack`` in size units,
    ``budget_per_period`` in size units per period, ``n_periods`` in
    periods.
    """
    limit = (budget_per_period * n_periods + slack) * (1.0 + rtol)
    if attempted > limit:
        _fail(where,
              "attempt budget Σ attempted <= B·T + slack",
              f"attempted {attempted!r} exceeds {limit!r} "
              f"(B·T = {budget_per_period * n_periods!r}, "
              f"slack = {slack!r})")


def check_kkt_stationarity(residual: float, multiplier: float, *,
                           rtol: float = KKT_RTOL,
                           where: str = "<direct>") -> None:
    """Assert the stationarity residual is small at the μ scale.

    At a true optimum every active element's scaled marginal equals μ
    (paper Equation 6), so the residual tolerance scales with
    ``max(μ, 1)`` — the same convention the solver's property tests
    use.
    """
    limit = rtol * max(abs(multiplier), 1.0)
    if residual > limit:
        _fail(where, "KKT stationarity residual ~ 0",
              f"residual {residual!r} exceeds {limit!r} "
              f"(multiplier {multiplier!r}, rtol={rtol!r})")


# ---------------------------------------------------------------------------
# Decorator plumbing.
# ---------------------------------------------------------------------------

def postcondition(check: Callable[[Any, Mapping[str, Any]], None],
                  ) -> Callable[[F], F]:
    """Attach a postcondition to a function.

    While contracts are enabled, ``check(result, arguments)`` runs
    after each call, where ``arguments`` maps every parameter name to
    its value (defaults applied), however the caller spelled the call.
    When disabled, the wrapper costs one attribute load and one
    branch.  The wrapped function exposes the original as
    ``__wrapped__`` (so benchmarks can measure the undecorated path)
    and the check as ``__contract__``.
    """

    def decorate(func: F) -> F:
        signature = inspect.signature(func)

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = func(*args, **kwargs)
            if _state.enabled:
                bound = signature.bind(*args, **kwargs)
                bound.apply_defaults()
                check(result, bound.arguments)
            return result

        wrapper.__contract__ = check  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


def iter_contracted(namespace: dict[str, Any],
                    ) -> Iterator[tuple[str, Callable[..., Any]]]:
    """Yield ``(name, function)`` for contracted callables in a module
    namespace — introspection helper for the test tier."""
    for name, value in namespace.items():
        if callable(value) and hasattr(value, "__contract__"):
            yield name, value
