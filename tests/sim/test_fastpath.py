"""Equivalence suite: the vectorized kernel vs the reference loop.

The fastpath's contract is **bit-identity**, not statistical
agreement: for every fault-free tape, :func:`repro.sim.fastpath.
replay_fastpath` must return a :class:`SimulationResult` whose every
field — floats included — equals the reference loop's exactly.  These
tests drive both engines from identically seeded simulations across
presets, phase policies, object sizes, partial final periods and a
bursty (non-Poisson) update process, then diff the results bit for
bit.  A seeded hypothesis sweep over random catalogs guards the
corners no fixture thought of.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.freshener import GeneralFreshener, PerceivedFreshener
from repro.errors import ValidationError
from repro.faults.model import FaultPlan, IIDFaultModel
from repro.obs import registry as obs
from repro.sim.bursty import BurstyUpdateGenerator
from repro.sim.simulation import Simulation
from repro.workloads.catalog import Catalog
from repro.workloads.presets import ExperimentSetup, build_catalog

from tests.conftest import random_catalog


def bits(array: np.ndarray) -> np.ndarray:
    """Reinterpret a float array's bytes for exact comparison."""
    return np.ascontiguousarray(np.asarray(array, dtype=np.float64)
                                ).view(np.uint64)


def assert_bit_identical(fast, reference) -> None:
    """Every ``SimulationResult`` field must match exactly."""
    for field in dataclasses.fields(reference):
        a = getattr(fast, field.name)
        b = getattr(reference, field.name)
        if isinstance(b, float):
            assert bits(np.array([a])) == bits(np.array([b])), field.name
        elif isinstance(b, np.ndarray) and b.dtype.kind == "f":
            assert np.array_equal(bits(a), bits(b)), field.name
        elif isinstance(b, np.ndarray):
            assert np.array_equal(a, b), field.name
        else:
            assert a == b, field.name


def run_engine(catalog: Catalog, frequencies: np.ndarray, *,
               engine: str, seed: int, n_periods: float,
               request_rate: float = 80.0, **kwargs):
    """One simulation run with a per-call generator (same seed ⇒
    identical event streams, so the engines see the same tape)."""
    if "update_generator" in kwargs:
        kwargs = dict(kwargs)
        factory = kwargs.pop("update_generator")
        kwargs["update_generator"] = factory(catalog)
    sim = Simulation(catalog, frequencies, request_rate=request_rate,
                     rng=np.random.default_rng(seed), **kwargs)
    return sim.run(n_periods=n_periods, engine=engine)


def assert_engines_agree(catalog: Catalog, frequencies: np.ndarray, *,
                         seed: int, n_periods: float, **kwargs) -> None:
    fast = run_engine(catalog, frequencies, engine="fastpath",
                      seed=seed, n_periods=n_periods, **kwargs)
    reference = run_engine(catalog, frequencies, engine="reference",
                           seed=seed, n_periods=n_periods, **kwargs)
    assert_bit_identical(fast, reference)


@pytest.fixture
def preset_catalog():
    setup = ExperimentSetup(n_objects=40, updates_per_period=80.0,
                            syncs_per_period=20.0, theta=1.0,
                            update_std_dev=1.0)
    return build_catalog(setup, alignment="shuffled", seed=11)


class TestBitIdentity:
    @pytest.mark.parametrize("theta", [0.0, 1.0, 1.6])
    def test_preset_catalogs(self, theta):
        setup = ExperimentSetup(n_objects=50, updates_per_period=100.0,
                                syncs_per_period=25.0, theta=theta,
                                update_std_dev=1.0)
        catalog = build_catalog(setup, alignment="shuffled", seed=3)
        plan = PerceivedFreshener().plan(catalog, 25.0)
        assert_engines_agree(catalog, plan.frequencies, seed=17,
                             n_periods=10.0)

    @pytest.mark.parametrize("phase_policy", ["staggered", "zero"])
    def test_phase_policies(self, preset_catalog, phase_policy):
        plan = GeneralFreshener().plan(preset_catalog, 20.0)
        assert_engines_agree(preset_catalog, plan.frequencies, seed=5,
                             n_periods=6.0, phase_policy=phase_policy)

    def test_variable_sizes(self, sized_catalog):
        plan = PerceivedFreshener().plan(sized_catalog, 6.0)
        assert_engines_agree(sized_catalog, plan.frequencies, seed=23,
                             n_periods=12.0, request_rate=40.0)

    @pytest.mark.parametrize("n_periods", [0.75, 7.25, 1.0])
    def test_partial_final_periods(self, preset_catalog, n_periods):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        assert_engines_agree(preset_catalog, plan.frequencies, seed=31,
                             n_periods=n_periods)

    def test_non_unit_period_length(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        assert_engines_agree(preset_catalog, plan.frequencies, seed=41,
                             n_periods=5.5, period_length=2.5)

    def test_bursty_updates(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        assert_engines_agree(
            preset_catalog, plan.frequencies, seed=47, n_periods=8.0,
            update_generator=lambda catalog: BurstyUpdateGenerator(
                catalog, burstiness=0.7, cycle_length=2.0,
                rng=np.random.default_rng(99)))

    def test_zero_frequency_elements_idle(self, small_catalog):
        frequencies = np.array([4.0, 0.0, 2.0, 0.0, 1.0])
        assert_engines_agree(small_catalog, frequencies, seed=53,
                             n_periods=9.0, request_rate=30.0)

    def test_quiet_fault_plan_stays_on_fastpath(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        fast = run_engine(preset_catalog, plan.frequencies,
                          engine="auto", seed=61, n_periods=5.0,
                          fault_plan=FaultPlan.quiet())
        reference = run_engine(preset_catalog, plan.frequencies,
                               engine="reference", seed=61,
                               n_periods=5.0,
                               fault_plan=FaultPlan.quiet())
        assert_bit_identical(fast, reference)


class TestPropertyRandomCatalogs:
    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_catalogs_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, int(rng.integers(3, 40)),
                                 sized=bool(rng.integers(0, 2)))
        bandwidth = float(catalog.sizes.sum()
                          * rng.uniform(0.2, 2.0))
        plan = PerceivedFreshener().plan(catalog, bandwidth)
        assert_engines_agree(
            catalog, plan.frequencies, seed=seed,
            n_periods=float(rng.uniform(0.5, 9.0)),
            request_rate=float(rng.uniform(5.0, 120.0)))


class TestDispatch:
    def test_auto_faulted_falls_back_to_reference(self, preset_catalog):
        """With a non-quiet plan, auto must match a forced reference
        run draw for draw (the fault layer shares the stream RNG)."""
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        faults = FaultPlan(models=(IIDFaultModel(0.4),))
        auto = run_engine(preset_catalog, plan.frequencies,
                          engine="auto", seed=71, n_periods=5.0,
                          fault_plan=faults)
        reference = run_engine(preset_catalog, plan.frequencies,
                               engine="reference", seed=71,
                               n_periods=5.0, fault_plan=faults)
        assert auto.failed_polls > 0
        assert_bit_identical(auto, reference)

    def test_fastpath_engine_rejects_faults(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        faults = FaultPlan(models=(IIDFaultModel(0.9),))
        sim = Simulation(preset_catalog, plan.frequencies,
                         request_rate=40.0,
                         rng=np.random.default_rng(0),
                         fault_plan=faults)
        with pytest.raises(ValidationError):
            sim.run(n_periods=2.0, engine="fastpath")

    def test_unknown_engine_rejected(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        sim = Simulation(preset_catalog, plan.frequencies,
                         request_rate=40.0,
                         rng=np.random.default_rng(0))
        with pytest.raises(ValidationError):
            sim.run(n_periods=2.0, engine="turbo")


class TestTelemetryParity:
    """Both engines must emit the same period series and gauges."""

    @staticmethod
    def _tape(preset_catalog, engine: str, n_periods: float):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        with obs.telemetry() as registry:
            run_engine(preset_catalog, plan.frequencies, engine=engine,
                       seed=83, n_periods=n_periods)
        periods = [{k: v for k, v in record.items()
                    if k not in ("seq", "t")}
                   for record in registry.events_of_kind("sim.period")]
        return periods, dict(registry.counters), dict(registry.gauges)

    @pytest.mark.parametrize("n_periods", [6.0, 4.5])
    def test_period_series_match(self, preset_catalog, n_periods):
        fast_periods, fast_counters, fast_gauges = self._tape(
            preset_catalog, "fastpath", n_periods)
        ref_periods, ref_counters, ref_gauges = self._tape(
            preset_catalog, "reference", n_periods)
        assert fast_periods == ref_periods
        assert fast_gauges == ref_gauges
        assert fast_counters.pop("sim.fastpath_runs") == 1.0
        assert fast_counters == ref_counters

    def test_fastpath_counter_increments(self, preset_catalog):
        plan = PerceivedFreshener().plan(preset_catalog, 20.0)
        with obs.telemetry() as registry:
            run_engine(preset_catalog, plan.frequencies, engine="auto",
                       seed=89, n_periods=3.0)
        assert registry.counters.get("sim.fastpath_runs") == 1.0
        spans = [record["path"]
                 for record in registry.span_records()]
        assert "sim.run" in spans
