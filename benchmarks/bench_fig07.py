"""Figure 7 — the big case: Table 3 scale (N = 500 000).

Paper claims reproduced as assertions: PF-partitioning is the clear
winner under shuffled change, and partitions beyond ~100 do not
appreciably improve the answer.  The paper could not verify the ideal
at this scale (its NLP package "runs for days"); the structured
water-filling solver can, so best_case is asserted as a true bound.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import figure7
from repro.analysis.tables import format_sweep


def test_figure7(benchmark, report):
    counts = np.array([20, 60, 100, 140, 200])
    sweep = benchmark.pedantic(
        lambda: figure7(partition_counts=counts), rounds=1, iterations=1)

    best = sweep.get("best_case").y
    pf = sweep.get("PF_PARTITIONING").y
    lam = sweep.get("LAMBDA_PARTITIONING").y
    p_over = sweep.get("P_OVER_LAMBDA_PARTITIONING").y

    for label in sweep.labels:
        if label != "best_case":
            assert (sweep.get(label).y <= best + 1e-8).all()
    # PF-partitioning dominates the non-access-aware sorts.
    assert (pf > lam).all()
    assert (pf > p_over).all()
    # Diminishing returns past ~100 partitions.
    gain_early = pf[2] - pf[0]   # 20 -> 100
    gain_late = pf[-1] - pf[2]   # 100 -> 200
    assert gain_early > gain_late

    report("figure07", format_sweep(sweep))
