"""Tests for repro.workloads.presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workloads.alignment import Alignment
from repro.workloads.presets import (
    BIG_SETUP,
    IDEAL_SETUP,
    TOY_BANDWIDTH,
    TOY_PROFILES,
    ExperimentSetup,
    build_catalog,
    toy_example_catalog,
)


class TestExperimentSetup:
    def test_table2_parameters(self):
        assert IDEAL_SETUP.n_objects == 500
        assert IDEAL_SETUP.updates_per_period == 1000.0
        assert IDEAL_SETUP.syncs_per_period == 250.0
        assert IDEAL_SETUP.update_std_dev == 1.0
        assert IDEAL_SETUP.mean_change_rate == pytest.approx(2.0)

    def test_table3_parameters(self):
        assert BIG_SETUP.n_objects == 500_000
        assert BIG_SETUP.updates_per_period == 1_000_000.0
        assert BIG_SETUP.syncs_per_period == 250_000.0
        assert BIG_SETUP.update_std_dev == 2.0
        assert BIG_SETUP.mean_change_rate == pytest.approx(2.0)

    def test_with_theta(self):
        altered = IDEAL_SETUP.with_theta(0.4)
        assert altered.theta == 0.4
        assert altered.n_objects == IDEAL_SETUP.n_objects

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValidationError):
            ExperimentSetup(n_objects=0, updates_per_period=1.0,
                            syncs_per_period=1.0, theta=0.0,
                            update_std_dev=1.0)
        with pytest.raises(ValidationError):
            ExperimentSetup(n_objects=10, updates_per_period=0.0,
                            syncs_per_period=1.0, theta=0.0,
                            update_std_dev=1.0)
        with pytest.raises(ValidationError):
            ExperimentSetup(n_objects=10, updates_per_period=1.0,
                            syncs_per_period=1.0, theta=-1.0,
                            update_std_dev=1.0)


class TestBuildCatalog:
    def test_dimensions_and_mean_rate(self, tiny_setup):
        catalog = build_catalog(tiny_setup, seed=0)
        assert catalog.n_elements == tiny_setup.n_objects
        assert catalog.change_rates.mean() == pytest.approx(
            tiny_setup.mean_change_rate, rel=0.4)

    def test_reproducible_by_seed(self, tiny_setup):
        first = build_catalog(tiny_setup, seed=5)
        second = build_catalog(tiny_setup, seed=5)
        assert np.array_equal(first.change_rates, second.change_rates)

    def test_different_seeds_differ(self, tiny_setup):
        first = build_catalog(tiny_setup, seed=1)
        second = build_catalog(tiny_setup, seed=2)
        assert not np.array_equal(first.change_rates, second.change_rates)

    def test_aligned_rates_descend_with_popularity(self, tiny_setup):
        catalog = build_catalog(tiny_setup, alignment=Alignment.ALIGNED,
                                seed=0)
        assert (np.diff(catalog.change_rates) <= 0.0).all()

    def test_reverse_rates_ascend_with_popularity(self, tiny_setup):
        catalog = build_catalog(tiny_setup, alignment=Alignment.REVERSE,
                                seed=0)
        assert (np.diff(catalog.change_rates) >= 0.0).all()

    def test_theta_override(self, tiny_setup):
        catalog = build_catalog(tiny_setup, seed=0, theta=0.0)
        assert np.allclose(catalog.access_probabilities,
                           1.0 / tiny_setup.n_objects)

    def test_sizes_sampled_when_requested(self, tiny_setup):
        catalog = build_catalog(tiny_setup, seed=0, size_shape=1.1)
        assert not catalog.has_uniform_sizes

    def test_size_alignment_defaults_to_rate_alignment(self, tiny_setup):
        catalog = build_catalog(tiny_setup, alignment=Alignment.ALIGNED,
                                seed=0, size_shape=2.0)
        assert (np.diff(catalog.sizes) <= 0.0).all()

    def test_size_alignment_override(self, tiny_setup):
        catalog = build_catalog(tiny_setup, alignment=Alignment.ALIGNED,
                                seed=0, size_shape=2.0,
                                size_alignment=Alignment.REVERSE)
        assert (np.diff(catalog.sizes) >= 0.0).all()

    def test_accepts_generator_as_seed(self, tiny_setup):
        catalog = build_catalog(tiny_setup,
                                seed=np.random.default_rng(42))
        assert catalog.n_elements == tiny_setup.n_objects


class TestToyExample:
    def test_profiles_are_distributions(self):
        for profile in TOY_PROFILES.values():
            assert profile.sum() == pytest.approx(1.0)

    def test_bandwidth(self):
        assert TOY_BANDWIDTH == 5.0

    def test_p1_uniform(self):
        catalog = toy_example_catalog("P1")
        assert np.allclose(catalog.access_probabilities, 0.2)
        assert np.array_equal(catalog.change_rates, [1, 2, 3, 4, 5])

    def test_p2_hottest_change_most(self):
        catalog = toy_example_catalog("P2")
        # P2: access probability rises with change rate.
        assert (np.diff(catalog.access_probabilities) > 0.0).all()

    def test_p3_hottest_change_least(self):
        catalog = toy_example_catalog("P3")
        assert (np.diff(catalog.access_probabilities) < 0.0).all()

    def test_rejects_unknown_profile(self):
        with pytest.raises(ValidationError, match="unknown toy profile"):
            toy_example_catalog("P4")
