"""User profiles: specification, aggregation, and learning.

Profiles are the "application-aware" half of the paper: a declarative
statement of how interesting each mirrored element is, aggregated
across users into the master profile the scheduler optimizes for.
"""

from repro.profiles.aggregation import aggregate_profiles, profile_divergence
from repro.profiles.learning import ProfileLearner, estimate_profile
from repro.profiles.profile import UserProfile

__all__ = [
    "aggregate_profiles",
    "estimate_profile",
    "profile_divergence",
    "ProfileLearner",
    "UserProfile",
]
