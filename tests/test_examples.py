"""Smoke tests: every shipped example must run end to end.

Examples are documentation that executes; a broken example is a
broken promise.  Each test runs the example's ``main()`` with stdout
captured and checks for its headline output.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        output = run_example("quickstart", capsys)
        assert "Sync frequencies" in output
        assert "PF technique" in output
        assert "simulated" in output

    def test_stock_ticker(self, capsys):
        output = run_example("stock_ticker", capsys)
        assert "profile-blind starvation" in output
        assert "quote lookups saw a fresh price" in output

    def test_web_mirror(self, capsys):
        output = run_example("web_mirror", capsys)
        assert "warm-up estimation" in output
        assert "exact optimum, true" in output

    def test_capacity_planning(self, capsys):
        output = run_example("capacity_planning", capsys)
        assert "smallest budget meeting the SLO" in output
        assert "underprovisioned" in output

    @pytest.mark.slow
    def test_profile_learning(self, capsys):
        output = run_example("profile_learning", capsys)
        assert "recovered" in output

    @pytest.mark.slow
    def test_adaptive_mirror(self, capsys):
        output = run_example("adaptive_mirror", capsys)
        assert "user interest flips" in output
        assert "post-drift oracle" in output

    @pytest.mark.slow
    def test_calibrate_from_logs(self, capsys):
        output = run_example("calibrate_from_logs", capsys)
        assert "calibrated: theta" in output
        assert "what-if" in output
