"""Statistical laws connecting the simulator to the analytic model.

These are the deep integration properties: the simulator must obey
the closed forms the schedulers optimize — not just for optimal
schedules (covered in tests/sim) but for *arbitrary* ones.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.freshness import fixed_order_freshness
from repro.core.metrics import element_freshness
from repro.sim.simulation import Simulation
from repro.workloads.catalog import Catalog

from tests.conftest import random_catalog

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


def simulate(catalog, frequencies, seed, *, periods=150,
             request_rate=40.0):
    sim = Simulation(catalog, frequencies, request_rate=request_rate,
                     rng=np.random.default_rng(seed))
    return sim.run(n_periods=periods)


class TestDefinitionFourEquivalence:
    """Access-scored PF ≈ time-averaged PF ≈ Σ pᵢ F̄ᵢ (PASTA)."""

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_arbitrary_schedules(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 8)
        frequencies = rng.uniform(0.0, 3.0, size=8)
        result = simulate(catalog, frequencies, seed)
        analytic = float(catalog.access_probabilities
                         @ element_freshness(catalog, frequencies))
        assert result.monitored_time_perceived == pytest.approx(
            analytic, abs=0.05)
        assert result.monitored_perceived_freshness == pytest.approx(
            analytic, abs=0.06)

    def test_per_element_closed_form(self):
        """Each element's observed time-average matches F̄(λ, f)."""
        catalog = Catalog(
            access_probabilities=np.array([0.25, 0.25, 0.25, 0.25]),
            change_rates=np.array([0.5, 1.0, 2.0, 4.0]))
        frequencies = np.array([1.0, 1.0, 1.0, 1.0])
        result = simulate(catalog, frequencies, seed=3, periods=800,
                          request_rate=10.0)
        expected = fixed_order_freshness(catalog.change_rates,
                                         frequencies)
        assert np.allclose(result.element_time_freshness, expected,
                           atol=0.04)

    def test_access_weighted_equals_profile_weighted(self):
        """Accesses sample elements by p, so the access-average of
        per-element freshness reproduces the p-weighted average even
        under a very skewed profile."""
        catalog = Catalog(
            access_probabilities=np.array([0.85, 0.1, 0.05]),
            change_rates=np.array([3.0, 1.0, 0.2]))
        frequencies = np.array([1.5, 0.5, 0.0])
        result = simulate(catalog, frequencies, seed=9, periods=400,
                          request_rate=100.0)
        analytic = float(catalog.access_probabilities
                         @ element_freshness(catalog, frequencies))
        assert result.monitored_perceived_freshness == pytest.approx(
            analytic, abs=0.02)


class TestConservationLaws:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_sync_count_matches_schedule(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 6)
        frequencies = rng.uniform(0.5, 4.0, size=6)
        periods = 50
        result = simulate(catalog, frequencies, seed, periods=periods,
                          request_rate=5.0)
        expected = frequencies.sum() * periods
        # Deterministic fixed-order schedule: off by at most one sync
        # per element from phase truncation.
        assert abs(result.n_syncs - expected) <= 6

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_bandwidth_usage_matches_sizes(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 6, sized=True)
        frequencies = rng.uniform(0.5, 3.0, size=6)
        periods = 40
        result = simulate(catalog, frequencies, seed, periods=periods,
                          request_rate=5.0)
        expected = float(catalog.sizes @ frequencies) * periods
        assert result.bandwidth_used == pytest.approx(
            expected, rel=0.05)

    def test_wasted_polls_match_detection_probability(self):
        """A poll at interval I finds a change with probability
        1 − e^(−λI); the wasted fraction must match its complement."""
        catalog = Catalog(access_probabilities=np.array([1.0]),
                          change_rates=np.array([1.0]))
        frequencies = np.array([2.0])  # I = 0.5, waste = e^{-0.5}
        result = simulate(catalog, frequencies, seed=5, periods=2000,
                          request_rate=2.0)
        assert result.wasted_sync_fraction == pytest.approx(
            np.exp(-0.5), abs=0.03)


class TestStochasticOrdering:
    def test_more_bandwidth_is_fresher_in_simulation(self):
        rng = np.random.default_rng(4)
        catalog = random_catalog(rng, 10)
        slow = simulate(catalog, np.full(10, 0.2), seed=11,
                        periods=200)
        fast = simulate(catalog, np.full(10, 2.0), seed=11,
                        periods=200)
        assert fast.monitored_time_perceived > \
            slow.monitored_time_perceived

    def test_faster_changing_world_is_staler(self):
        rng = np.random.default_rng(6)
        base = random_catalog(rng, 10)
        calm = simulate(base, np.ones(10), seed=13, periods=200)
        volatile_catalog = base.with_change_rates(
            4.0 * base.change_rates)
        volatile = simulate(volatile_catalog, np.ones(10), seed=13,
                            periods=200)
        assert calm.monitored_time_perceived > \
            volatile.monitored_time_perceived


class TestAgeClosedForm:
    """The simulator's age integral must obey Ā(λ, f) —
    an independent check on docs/THEORY.md §4."""

    def test_single_element_age_matches_formula(self):
        from repro.core.age import fixed_order_age

        catalog = Catalog(access_probabilities=np.array([1.0]),
                          change_rates=np.array([2.0]))
        result = simulate(catalog, np.array([2.0]), seed=0,
                          periods=2000, request_rate=2.0)
        expected = fixed_order_age(np.array([2.0]),
                                   np.array([2.0]))[0]
        assert result.monitored_perceived_age == pytest.approx(
            expected, rel=0.1)

    def test_per_element_ages_match(self):
        from repro.core.age import fixed_order_age

        catalog = Catalog(
            access_probabilities=np.full(4, 0.25),
            change_rates=np.array([0.5, 1.0, 2.0, 4.0]))
        frequencies = np.full(4, 1.0)
        result = simulate(catalog, frequencies, seed=2, periods=1500,
                          request_rate=4.0)
        expected = fixed_order_age(catalog.change_rates, frequencies)
        assert np.allclose(result.element_time_age, expected,
                           rtol=0.15, atol=0.01)

    def test_age_optimal_schedule_achieves_its_objective(self):
        from repro.core.age import solve_min_age_problem

        rng = np.random.default_rng(3)
        catalog = random_catalog(rng, 6)
        solution = solve_min_age_problem(catalog, 3.0)
        result = simulate(catalog, solution.frequencies, seed=4,
                          periods=1200, request_rate=10.0)
        assert result.monitored_perceived_age == pytest.approx(
            solution.objective, rel=0.15)

    def test_unsynced_element_age_grows_with_horizon(self):
        catalog = Catalog(access_probabilities=np.array([1.0]),
                          change_rates=np.array([5.0]))
        short = simulate(catalog, np.array([0.0]), seed=5,
                         periods=20, request_rate=2.0)
        long = simulate(catalog, np.array([0.0]), seed=5,
                        periods=200, request_rate=2.0)
        # With no syncs, age at time t is ≈ t − first-update; its time
        # average grows ~linearly with the horizon.
        assert long.monitored_perceived_age > \
            5.0 * short.monitored_perceived_age
