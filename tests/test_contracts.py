"""Tests for the runtime-contract layer (``repro.contracts``).

Covers: the env gate and its default-off behavior, the check helpers,
the ``postcondition`` decorator (argument binding, ``__wrapped__``),
end-to-end contract enforcement on the real solver stack — including
a deliberately infeasible allocation that must raise — and the
near-zero-overhead promise when contracts are off.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import contracts as C
from repro.contracts import (
    ContractViolationError,
    check_budget_feasible,
    check_kkt_stationarity,
    check_multiplier_in_bracket,
    check_nonnegative,
    check_partition_labels,
    check_simplex,
    check_sync_conservation,
    contracts,
    contracts_enabled,
    disable_contracts,
    enable_contracts,
    iter_contracted,
    postcondition,
)
from repro.core import solver as solver_module
from repro.core.solver import solve_core_problem, solve_weighted_problem
from repro.numerics.waterfill import waterfill
from repro.workloads import Catalog


def random_catalog(rng: np.random.Generator, n: int, *,
                   sized: bool = False) -> Catalog:
    weights = rng.uniform(0.01, 1.0, size=n)
    rates = rng.uniform(0.05, 8.0, size=n)
    sizes = rng.uniform(0.2, 5.0, size=n) if sized else None
    return Catalog(access_probabilities=weights / weights.sum(),
                   change_rates=rates, sizes=sizes)


@pytest.fixture(autouse=True)
def _contracts_off_between_tests():
    """Leave the process-global switch the way we found it."""
    previous = contracts_enabled()
    yield
    C._state.enabled = previous


# ---------------------------------------------------------------------------
# the gate


def test_contracts_are_off_by_default() -> None:
    # Tier-1 runs without REPRO_CONTRACTS; the import-time default
    # must be off so production callers never pay for checking.
    import os

    if os.environ.get("REPRO_CONTRACTS", "").strip().lower() in \
            {"1", "true", "yes", "on"}:
        pytest.skip("suite is running with REPRO_CONTRACTS enabled")
    assert not contracts_enabled()


def test_enable_disable_round_trip() -> None:
    enable_contracts()
    assert contracts_enabled()
    disable_contracts()
    assert not contracts_enabled()


def test_context_manager_restores_previous_state() -> None:
    disable_contracts()
    with contracts():
        assert contracts_enabled()
        with contracts(False):
            assert not contracts_enabled()
        assert contracts_enabled()
    assert not contracts_enabled()


def test_refresh_from_env(monkeypatch: pytest.MonkeyPatch) -> None:
    monkeypatch.setenv("REPRO_CONTRACTS", "yes")
    C.refresh_from_env()
    assert contracts_enabled()
    monkeypatch.setenv("REPRO_CONTRACTS", "0")
    C.refresh_from_env()
    assert not contracts_enabled()


# ---------------------------------------------------------------------------
# check helpers


def test_check_nonnegative() -> None:
    check_nonnegative(np.array([0.0, 1.0, 2.0]))
    with pytest.raises(ContractViolationError, match="min"):
        check_nonnegative(np.array([1.0, -1e-9]))


def test_check_budget_feasible_is_an_upper_bound() -> None:
    costs = np.array([1.0, 2.0])
    check_budget_feasible(costs, np.array([0.5, 0.25]), 1.0)
    # Under-spend is legal (utilities can saturate).
    check_budget_feasible(costs, np.array([0.1, 0.0]), 1.0)
    with pytest.raises(ContractViolationError, match="budget"):
        check_budget_feasible(costs, np.array([1.0, 1.0]), 1.0)


def test_check_simplex() -> None:
    check_simplex(np.array([0.25, 0.25, 0.5]))
    with pytest.raises(ContractViolationError, match="simplex"):
        check_simplex(np.array([0.3, 0.3]))
    with pytest.raises(ContractViolationError):
        check_simplex(np.array([1.5, -0.5]))


def test_check_partition_labels() -> None:
    check_partition_labels(np.array([0, 2, 1, 1]), 3)
    check_partition_labels(np.array([], dtype=int), 3)
    with pytest.raises(ContractViolationError, match="labels"):
        check_partition_labels(np.array([0, 3]), 3)
    with pytest.raises(ContractViolationError, match="labels"):
        check_partition_labels(np.array([[0, 1]]), 3)


def test_check_kkt_stationarity_scales_with_multiplier() -> None:
    check_kkt_stationarity(1e-6, 0.5)
    check_kkt_stationarity(5e-3, 100.0)  # residual small at μ scale
    with pytest.raises(ContractViolationError, match="stationarity"):
        check_kkt_stationarity(1e-2, 0.5)


def test_check_multiplier_in_bracket() -> None:
    check_multiplier_in_bracket(0.5, (0.1, 1.0))
    check_multiplier_in_bracket(0.1, (0.1, 1.0))  # endpoints included
    check_multiplier_in_bracket(1.0 + 1e-12, (0.1, 1.0))  # rtol slack
    with pytest.raises(ContractViolationError, match="bracket"):
        check_multiplier_in_bracket(1.5, (0.1, 1.0))
    with pytest.raises(ContractViolationError, match="bracket"):
        check_multiplier_in_bracket(0.05, (0.1, 1.0))


def test_check_sync_conservation_allows_granularity_slack() -> None:
    # 10 size units/period over 20 periods + 3 units of ceil slack.
    check_sync_conservation(200.0, 10.0, 20.0, 3.0)
    check_sync_conservation(203.0, 10.0, 20.0, 3.0)  # exactly at limit
    with pytest.raises(ContractViolationError, match="conservation"):
        check_sync_conservation(204.0, 10.0, 20.0, 3.0)


def test_simulation_runs_clean_under_conservation_contract(rng) -> None:
    from repro.core.freshener import PerceivedFreshener
    from repro.sim.simulation import Simulation

    catalog = random_catalog(rng, 30)
    plan = PerceivedFreshener().plan(catalog, bandwidth=20.0)
    enable_contracts()
    simulation = Simulation(catalog, plan.frequencies,
                            request_rate=50.0,
                            rng=np.random.default_rng(7))
    result = simulation.run(n_periods=10)
    assert result.bandwidth_used <= 20.0 * 10.0 + catalog.sizes.sum()


def test_incremental_warm_solve_checks_bracket(rng) -> None:
    from repro.core.incremental import IncrementalSolver

    catalog = random_catalog(rng, 40)
    enable_contracts()
    incremental = IncrementalSolver()
    cold = incremental.solve(catalog, 10.0)
    warm = incremental.solve(catalog, 10.0)  # reuses the μ bracket
    assert incremental.warm_hits == 1
    assert warm.multiplier == pytest.approx(cold.multiplier, rel=1e-6)


# ---------------------------------------------------------------------------
# the decorator


def test_postcondition_binds_arguments_any_spelling() -> None:
    seen: list[dict] = []

    def check(result: float, arguments: dict) -> None:
        seen.append(dict(arguments))
        if result < 0:
            raise ContractViolationError("negative")

    @postcondition(check)
    def scale(value: float, factor: float = 2.0) -> float:
        return value * factor

    with contracts():
        assert scale(3.0) == 6.0
        with pytest.raises(ContractViolationError):
            scale(value=3.0, factor=-1.0)
    # Defaults applied; keyword and positional spellings both bound.
    assert seen[0] == {"value": 3.0, "factor": 2.0}
    assert seen[1] == {"value": 3.0, "factor": -1.0}


def test_postcondition_raises_only_when_enabled() -> None:
    @postcondition(lambda result, arguments: (_ for _ in ()).throw(
        ContractViolationError("always")))
    def f() -> int:
        return 1

    disable_contracts()
    assert f() == 1
    with contracts():
        with pytest.raises(ContractViolationError):
            f()


def test_postcondition_exposes_wrapped_and_contract() -> None:
    assert hasattr(solve_weighted_problem, "__wrapped__")
    assert hasattr(solve_weighted_problem, "__contract__")
    assert solve_weighted_problem.__name__ == "solve_weighted_problem"


def test_iter_contracted_finds_solver_entry_points() -> None:
    names = {name for name, _ in iter_contracted(vars(solver_module))}
    assert {"solve_core_problem", "solve_weighted_problem"} <= names


def test_contract_violation_is_assertion_and_repro_error() -> None:
    from repro.errors import ReproError

    assert issubclass(ContractViolationError, AssertionError)
    assert issubclass(ContractViolationError, ReproError)


# ---------------------------------------------------------------------------
# end-to-end on the real solver stack


def test_real_solves_satisfy_their_contracts(rng) -> None:
    catalog = random_catalog(rng, 200, sized=True)
    with contracts():
        solution = solve_core_problem(catalog, bandwidth=25.0)
    assert solution.frequencies.min() >= 0.0


def test_waterfill_contract_catches_lying_allocator() -> None:
    """A deliberately infeasible allocation must raise when checked.

    The allocator reports a cost curve consistent with the budget but
    returns a negative allocation — exactly the class of silent
    corruption the contract layer exists to catch.
    """

    def lying_allocate_at(mu: float) -> tuple[np.ndarray, float]:
        return np.array([1.0 / mu, -0.5]), 1.0 / mu

    with contracts():
        with pytest.raises(ContractViolationError, match="allocations"):
            waterfill(lying_allocate_at, budget=1.0, mu_max=16.0)

    # Unchecked, the same lie sails through (and would corrupt the
    # caller) - demonstrating the off path does not validate.
    disable_contracts()
    result = waterfill(lying_allocate_at, budget=1.0, mu_max=16.0)
    assert result.allocations.min() < 0.0


def test_infeasible_solution_object_raises_under_check() -> None:
    """Feed the solver's own contract an over-budget solution."""
    check = solve_weighted_problem.__contract__
    weights = np.array([0.5, 0.5])
    rates = np.array([1.0, 2.0])
    costs = np.array([1.0, 1.0])
    good = solve_weighted_problem(weights, rates, costs, 1.0)
    bogus = solver_module.ScheduleSolution(
        frequencies=good.frequencies * 10.0,
        multiplier=good.multiplier,
        bandwidth=good.bandwidth * 10.0,
        objective=good.objective,
        iterations=good.iterations,
    )
    arguments = {"weights": weights, "change_rates": rates,
                 "costs": costs, "bandwidth": 1.0, "model": None}
    with pytest.raises(ContractViolationError, match="budget"):
        check(bogus, arguments)


def test_partition_and_clustering_contracts_pass_end_to_end(rng) -> None:
    from repro.core.clustering import refine_partitions
    from repro.core.partitioning import partition_catalog

    catalog = random_catalog(rng, 120)
    with contracts():
        assignment = partition_catalog(catalog, n_partitions=6,
                                       strategy="p-over-lambda")
        steps = refine_partitions(catalog, 10.0, assignment,
                                  iterations=3)
    assert steps


# ---------------------------------------------------------------------------
# overhead


def test_disabled_contracts_overhead_is_negligible() -> None:
    """Off-path wrapper cost must be irrelevant at solver call grain.

    Strategy (robust to CI noise): measure the per-call cost of the
    wrapper vs the raw function on a no-op-sized solve, then compare
    that against the measured cost of one real 1e5-element solve.  The
    wrapper adds one attribute load + branch per *call*, and tier-1
    makes O(1) solver calls per solve, so the relative regression on a
    real workload is wrapper_cost / solve_cost - orders of magnitude
    below the 2% acceptance bar.
    """
    disable_contracts()

    rng = np.random.default_rng(7)
    n = 100_000
    weights = rng.uniform(0.01, 1.0, size=n)
    catalog = Catalog(access_probabilities=weights / weights.sum(),
                      change_rates=rng.uniform(0.05, 8.0, size=n),
                      sizes=rng.uniform(0.2, 5.0, size=n))

    # One real solve at catalog scale, decorated vs undecorated.
    start = time.perf_counter()
    solve_core_problem(catalog, bandwidth=50_000.0)
    decorated = time.perf_counter() - start

    start = time.perf_counter()
    solve_core_problem.__wrapped__(catalog, bandwidth=50_000.0)
    undecorated = time.perf_counter() - start

    # Per-call wrapper overhead, measured on a trivial function so the
    # difference is the wrapper itself.
    @postcondition(lambda result, arguments: None)
    def identity(x: int) -> int:
        return x

    calls = 20_000
    start = time.perf_counter()
    for _ in range(calls):
        identity.__wrapped__(1)
    raw = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(calls):
        identity(1)
    wrapped = time.perf_counter() - start
    per_call = max(0.0, (wrapped - raw) / calls)

    solve_time = max(decorated, undecorated)
    # The wrapper's per-call cost must be far below 2% of a real solve.
    assert per_call < 0.02 * solve_time, (
        f"wrapper overhead {per_call:.2e}s vs solve {solve_time:.3f}s")
    # And the decorated solve itself must not regress measurably
    # beyond timing noise (generous 25% guard; the real bound is the
    # per-call assertion above).
    assert decorated <= undecorated * 1.25 + 0.05
