"""Imports beta at module level — the single forward edge."""

from good_fl008_pkg import beta

__all__ = ["double"]


def double(value: float) -> float:
    """Twice ``value`` (dimensionless)."""
    return beta.identity(value) * 2.0
