"""Calibrate the paper's models to your own logs, then run what-ifs.

A mirror operator has two artifacts: a request log and a poll history.
This example closes the full loop:

1. *Pretend production*: simulate a hidden "real" mirror for a while,
   recording the request log and per-poll change bits — the only
   things an operator actually has.
2. *Estimate*: change rates from the censored poll history
   (bias-reduced Cho/Garcia-Molina estimator).
3. *Calibrate*: fit the paper's workload model — Zipf θ from the log,
   gamma (mean, σ) from the estimated rates — into an
   `ExperimentSetup`.
4. *What-if*: use the calibrated setup to answer a question the
   production system cannot: how much perceived freshness would a
   bigger budget buy?  (The calibrated synthetic sweep is compared
   against the hidden truth to show the calibration is trustworthy.)

Run:  python examples/calibrate_from_logs.py
"""

from __future__ import annotations

import numpy as np

from repro import PerceivedFreshener, build_catalog, perceived_freshness
from repro.analysis.calibration import calibrate_setup
from repro.estimation import bias_reduced_rate_estimate
from repro.sim import Simulation
from repro.workloads import AccessSet, ExperimentSetup

HIDDEN_TRUTH = ExperimentSetup(n_objects=300, updates_per_period=600.0,
                               syncs_per_period=150.0, theta=1.1,
                               update_std_dev=1.2)
OBSERVATION_PERIODS = 60


def observe_production(catalog, rng):
    """Run the 'real' mirror and collect the operator's two artifacts."""
    uniform = np.full(catalog.n_elements,
                      HIDDEN_TRUTH.syncs_per_period / catalog.n_elements)
    result = Simulation(catalog, uniform, request_rate=2000.0,
                        rng=rng).run(n_periods=OBSERVATION_PERIODS)
    elements = np.repeat(np.arange(catalog.n_elements),
                         result.access_counts)
    log = AccessSet(times=np.arange(elements.size, dtype=float),
                    elements=elements)
    return (log, result.poll_counts.astype(float),
            result.changed_poll_counts.astype(float), uniform[0])


def main() -> None:
    rng = np.random.default_rng(23)
    truth = build_catalog(HIDDEN_TRUTH, alignment="shuffled", seed=6)
    log, polls, changes, poll_frequency = observe_production(truth, rng)
    print(f"observed {len(log)} requests and {int(polls.sum())} polls "
          f"over {OBSERVATION_PERIODS} periods")

    # Operator-side estimation: rates from censored poll outcomes.
    # Elements whose polls never saw a change estimate to exactly 0;
    # floor them at half the smallest detectable rate (one change in
    # all polls) — "rarely changing", not "never changing".
    interval = 1.0 / poll_frequency
    rates = bias_reduced_rate_estimate(polls, changes, interval)
    with np.errstate(invalid="ignore", divide="ignore"):
        detection_floor = np.where(
            polls > 0.5,
            -np.log((polls - 0.5) / (polls + 0.5)) / interval,
            HIDDEN_TRUTH.mean_change_rate)
    rates = np.maximum(rates, 0.5 * detection_floor)
    setup = calibrate_setup(log, rates,
                            bandwidth=HIDDEN_TRUTH.syncs_per_period,
                            min_count=20)
    print(f"calibrated: theta = {setup.theta:.2f} "
          f"(truth {HIDDEN_TRUTH.theta}), mean rate = "
          f"{setup.mean_change_rate:.2f} "
          f"(truth {HIDDEN_TRUTH.mean_change_rate:.2f}), sigma = "
          f"{setup.update_std_dev:.2f} "
          f"(truth {HIDDEN_TRUTH.update_std_dev})")

    # What-if sweep on the calibrated synthetic world vs hidden truth.
    planner = PerceivedFreshener()
    print()
    print("what-if: optimal PF vs bandwidth multiplier")
    print("  multiplier   calibrated-world   hidden-truth")
    for multiplier in (0.5, 1.0, 2.0, 4.0):
        budget = multiplier * HIDDEN_TRUTH.syncs_per_period
        synthetic = build_catalog(setup, alignment="shuffled", seed=99)
        predicted = planner.plan(synthetic, budget).perceived_freshness
        actual = perceived_freshness(
            truth, planner.plan(truth, budget).frequencies)
        print(f"  {multiplier:10.1f}   {predicted:16.4f}   "
              f"{actual:12.4f}")
    print()
    print("the calibrated world tracks the true bandwidth/freshness "
          "curve without touching production.  (Predictions run a "
          "few points optimistic: polling every other period censors "
          "the fast tail of the rate distribution — poll faster "
          "during calibration to tighten them.)")


if __name__ == "__main__":
    main()
