"""Tests for repro.estimation.sampling and repro.estimation.ttl."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.estimation.sampling import SamplingRefreshPolicy
from repro.estimation.ttl import (
    expected_fresh_probability,
    rate_from_ttl,
    ttl_for_confidence,
)


class TestSamplingRefreshPolicy:
    def make_policy(self, rng, servers=4, per_server=25, sample=3):
        server_of = np.repeat(np.arange(servers), per_server)
        return SamplingRefreshPolicy(server_of, sample_size=sample,
                                     rng=rng), server_of

    def test_round_refreshes_within_budget(self, rng):
        policy, server_of = self.make_policy(rng)
        stale = np.zeros(server_of.size, dtype=bool)
        result = policy.plan_round(stale, budget=40)
        assert result.refreshed.size <= 40
        assert np.unique(result.refreshed).size == result.refreshed.size

    def test_sampled_elements_included_in_refresh(self, rng):
        policy, server_of = self.make_policy(rng)
        stale = np.ones(server_of.size, dtype=bool)
        result = policy.plan_round(stale, budget=30)
        assert set(result.sampled.tolist()) <= set(
            result.refreshed.tolist())

    def test_greedy_prefers_high_change_server(self, rng):
        policy, server_of = self.make_policy(rng, servers=2,
                                             per_server=50, sample=5)
        # Server 1 fully stale, server 0 fully fresh.
        stale = server_of == 1
        result = policy.plan_round(stale, budget=30)
        assert result.change_ratios[1] > result.change_ratios[0]
        extra = np.setdiff1d(result.refreshed, result.sampled)
        # All non-sample budget goes to the stale server.
        assert (server_of[extra] == 1).all()

    def test_change_ratio_estimates_sensible(self, rng):
        policy, server_of = self.make_policy(rng, servers=1,
                                             per_server=200, sample=50)
        stale = np.zeros(200, dtype=bool)
        stale[:100] = True  # half stale
        result = policy.plan_round(stale, budget=60)
        assert result.change_ratios[0] == pytest.approx(0.5, abs=0.2)

    def test_rejects_budget_below_sample_cost(self, rng):
        policy, server_of = self.make_policy(rng, servers=4, sample=3)
        stale = np.zeros(server_of.size, dtype=bool)
        with pytest.raises(ValidationError):
            policy.plan_round(stale, budget=5)

    def test_rejects_bad_construction(self, rng):
        with pytest.raises(ValidationError):
            SamplingRefreshPolicy(np.empty(0, dtype=int), sample_size=1,
                                  rng=rng)
        with pytest.raises(ValidationError):
            SamplingRefreshPolicy(np.array([0, 2]), sample_size=1,
                                  rng=rng)  # server 1 empty
        with pytest.raises(ValidationError):
            SamplingRefreshPolicy(np.array([0]), sample_size=0, rng=rng)

    def test_rejects_wrong_staleness_shape(self, rng):
        policy, _ = self.make_policy(rng)
        with pytest.raises(ValidationError):
            policy.plan_round(np.zeros(3, dtype=bool), budget=50)


class TestTtl:
    def test_survival_curve(self):
        p = expected_fresh_probability(np.array([2.0]), age=0.5)
        assert p == pytest.approx(np.exp(-1.0))

    def test_survival_at_zero_age_is_one(self):
        assert expected_fresh_probability(np.array([5.0]), 0.0) == 1.0

    def test_static_element_always_fresh(self):
        assert expected_fresh_probability(np.array([0.0]), 100.0) == 1.0

    def test_ttl_for_confidence_roundtrip(self):
        rates = np.array([0.5, 2.0, 8.0])
        ttls = ttl_for_confidence(rates, confidence=0.7)
        survived = expected_fresh_probability(rates, 1.0)  # placeholder
        for rate, ttl in zip(rates, ttls):
            assert np.exp(-rate * ttl) == pytest.approx(0.7)
        assert survived.shape == rates.shape

    def test_ttl_infinite_for_static(self):
        ttls = ttl_for_confidence(np.array([0.0]), confidence=0.5)
        assert np.isinf(ttls[0])

    def test_rate_from_ttl_roundtrip(self):
        rates = np.array([0.3, 1.0, 4.0])
        ttls = ttl_for_confidence(rates, confidence=0.5)
        recovered = rate_from_ttl(ttls, confidence=0.5)
        assert np.allclose(recovered, rates)

    def test_rate_from_infinite_ttl_is_zero(self):
        rates = rate_from_ttl(np.array([np.inf]))
        assert rates[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            expected_fresh_probability(np.array([-1.0]), 1.0)
        with pytest.raises(ValidationError):
            expected_fresh_probability(np.array([1.0]), -1.0)
        with pytest.raises(ValidationError):
            ttl_for_confidence(np.array([1.0]), confidence=1.0)
        with pytest.raises(ValidationError):
            ttl_for_confidence(np.array([1.0]), confidence=0.0)
        with pytest.raises(ValidationError):
            rate_from_ttl(np.array([0.0]))
        with pytest.raises(ValidationError):
            rate_from_ttl(np.array([1.0]), confidence=2.0)
