"""Good: retry loop with injected rng, sleep callable, and clock."""

from __future__ import annotations

__all__ = ["retry_with_backoff"]


def retry_with_backoff(operation, *, max_retries: int, rng, sleep,
                       clock):
    """Deterministic decorrelated-jitter retries, fully injected.

    Args:
        operation: Zero-argument callable to attempt.
        max_retries: Attempts beyond the first, >= 0.
        rng: Seeded ``numpy.random.Generator`` for jitter draws.
        sleep: Callable consuming a delay in seconds (simulated or
            real — the caller decides).
        clock: Zero-argument monotonic clock, in seconds.
    """
    delay = 0.01
    started = clock()
    for attempt in range(max_retries + 1):
        try:
            return operation()
        except OSError:
            if attempt == max_retries:
                raise
            delay = float(rng.uniform(0.01, 3.0 * delay))
            sleep(delay)
    raise OSError(f"unreachable after {clock() - started}s")
