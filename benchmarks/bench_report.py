"""The one-command reproduction report, as a benchmark.

Running the benchmark harness leaves a current REPORT.md at the repo
root — the document a reviewer reads next to the paper — and asserts
that every section passes its claim checks.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.report import write_report

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_reproduction_report(benchmark):
    sections = benchmark.pedantic(
        lambda: write_report(REPO_ROOT / "REPORT.md", quick=True),
        rounds=1, iterations=1)
    failures = [section.title for section in sections
                if not section.passed]
    assert not failures, f"report sections failed: {failures}"
    assert (REPO_ROOT / "REPORT.md").exists()
