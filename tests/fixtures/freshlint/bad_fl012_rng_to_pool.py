"""FL012 fixture: RNG objects crossing process boundaries."""

from concurrent.futures import ProcessPoolExecutor
from functools import partial

from repro.parallel import parallel_map, seed_rng


def run_shared_stream(specs, seed):
    rng = seed_rng(seed)
    return parallel_map(specs, rng)  # rng pickled into every worker


def run_closure(specs, seed):
    rng = seed_rng(seed)
    task = partial(_simulate, rng)  # partial captures the rng ...
    return parallel_map(specs, task)  # ... and crosses the boundary


def run_executor(jobs, rng: "np.random.Generator"):
    with ProcessPoolExecutor() as pool:
        return [pool.submit(_simulate, rng, job) for job in jobs]


def _simulate(rng, job):
    return rng.random() + job
