"""FL002 — no exact equality against nonzero float literals.

The solver pipeline is float arithmetic end-to-end: freshness values,
KKT multipliers, budgets.  Comparing those with ``==``/``!=`` against
a nonzero literal is almost always a latent bug — use a tolerance
(``math.isclose``, ``np.isclose``, or an explicit rtol) instead.

Comparisons against literal ``0.0`` are *allowed* by design: the
solvers assign exact zeros structurally (``np.zeros_like``, masked
stores), never compute near-zeros into them, so ``f == 0.0`` is a
well-defined "was never allocated" sentinel (see ``core/age.py`` and
``core/freshness.py``).  Test files are exempt — pinning exact
regression values is their job.
"""

from __future__ import annotations

import ast
from typing import Iterator

from freshlint.engine import ModuleContext, Violation
from freshlint.rules.base import Rule

__all__ = ["FloatEqualityComparison"]


def _nonzero_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        value = node.value
        return isinstance(value, float) and value != 0.0
    if isinstance(node, ast.UnaryOp) and isinstance(node.operand,
                                                   ast.Constant):
        value = node.operand.value
        return isinstance(value, float) and value != 0.0
    return False


class FloatEqualityComparison(Rule):
    """Flag ``==``/``!=`` with a nonzero float literal operand."""

    code = "FL002"
    name = "float-equality"
    summary = ("==/!= against a nonzero float literal outside tests; "
               "use a tolerance comparison")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        if context.is_test:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _nonzero_float_literal(left) or \
                        _nonzero_float_literal(right):
                    yield self.violation(
                        context, node,
                        "exact ==/!= against a nonzero float literal; "
                        "solver quantities carry rounding error - "
                        "compare with math.isclose/np.isclose or an "
                        "explicit tolerance (exact-zero sentinels are "
                        "exempt)")
                    break
