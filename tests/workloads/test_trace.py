"""Tests for repro.workloads.trace — workload persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workloads.accesses import AccessSet
from repro.workloads.catalog import Catalog
from repro.workloads.trace import (
    catalog_from_json,
    catalog_to_json,
    load_access_set,
    load_catalog,
    save_access_set,
    save_catalog,
)

from tests.conftest import random_catalog


class TestCatalogNpz:
    def test_roundtrip(self, tmp_path, rng):
        catalog = random_catalog(rng, 20, sized=True)
        path = tmp_path / "catalog.npz"
        save_catalog(catalog, path)
        loaded = load_catalog(path)
        assert np.array_equal(loaded.access_probabilities,
                              catalog.access_probabilities)
        assert np.array_equal(loaded.change_rates,
                              catalog.change_rates)
        assert np.array_equal(loaded.sizes, catalog.sizes)

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, change_rates=np.ones(2))
        with pytest.raises(ValidationError, match="missing arrays"):
            load_catalog(path)

    def test_corrupted_contents_fail_validation(self, tmp_path):
        path = tmp_path / "corrupt.npz"
        np.savez(path, access_probabilities=np.array([0.9, 0.9]),
                 change_rates=np.ones(2), sizes=np.ones(2))
        with pytest.raises(ValidationError):
            load_catalog(path)


class TestCatalogJson:
    def test_roundtrip(self, rng):
        catalog = random_catalog(rng, 7, sized=True)
        loaded = catalog_from_json(catalog_to_json(catalog))
        assert np.allclose(loaded.access_probabilities,
                           catalog.access_probabilities)
        assert np.allclose(loaded.change_rates, catalog.change_rates)
        assert np.allclose(loaded.sizes, catalog.sizes)

    def test_rejects_invalid_json(self):
        with pytest.raises(ValidationError, match="invalid catalog JSON"):
            catalog_from_json("{not json")

    def test_rejects_non_object(self):
        with pytest.raises(ValidationError, match="must be an object"):
            catalog_from_json("[1, 2, 3]")

    def test_rejects_missing_fields(self):
        with pytest.raises(ValidationError, match="missing fields"):
            catalog_from_json('{"change_rates": [1.0]}')

    def test_rejects_invalid_values(self):
        document = ('{"access_probabilities": [0.9, 0.9], '
                    '"change_rates": [1.0, 1.0], "sizes": [1.0, 1.0]}')
        with pytest.raises(ValidationError):
            catalog_from_json(document)

    def test_json_is_plain_text(self, small_catalog):
        document = catalog_to_json(small_catalog)
        assert '"version"' in document
        assert '"change_rates"' in document


class TestAccessSetNpz:
    def test_roundtrip(self, tmp_path):
        accesses = AccessSet(times=np.array([0.0, 0.5, 2.0]),
                             elements=np.array([2, 0, 2]))
        path = tmp_path / "log.npz"
        save_access_set(accesses, path)
        loaded = load_access_set(path)
        assert np.array_equal(loaded.times, accesses.times)
        assert np.array_equal(loaded.elements, accesses.elements)

    def test_empty_roundtrip(self, tmp_path):
        accesses = AccessSet(times=np.empty(0),
                             elements=np.empty(0, dtype=np.int64))
        path = tmp_path / "empty.npz"
        save_access_set(accesses, path)
        assert len(load_access_set(path)) == 0

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, times=np.array([0.0]))
        with pytest.raises(ValidationError, match="missing array"):
            load_access_set(path)

    def test_corrupted_order_rejected(self, tmp_path):
        path = tmp_path / "unsorted.npz"
        np.savez(path, times=np.array([2.0, 1.0]),
                 elements=np.array([0, 1]))
        with pytest.raises(ValidationError):
            load_access_set(path)


class TestEndToEnd:
    def test_saved_catalog_plans_identically(self, tmp_path, rng):
        from repro.core.freshener import PerceivedFreshener
        catalog = random_catalog(rng, 15)
        path = tmp_path / "c.npz"
        save_catalog(catalog, path)
        original = PerceivedFreshener().plan(catalog, 6.0)
        reloaded = PerceivedFreshener().plan(load_catalog(path), 6.0)
        assert np.allclose(original.frequencies, reloaded.frequencies)
