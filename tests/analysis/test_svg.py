"""Tests for the SVG chart writer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.series import Series, SweepResult
from repro.analysis.svg import sweep_to_svg, write_svg
from repro.errors import ValidationError


def make_sweep():
    x = np.array([1.0, 2.0, 3.0, 4.0])
    return SweepResult(
        name="demo", x_label="k", y_label="pf",
        series=(Series(label="alpha", x=x,
                       y=np.array([0.1, 0.3, 0.35, 0.4])),
                Series(label="beta", x=x,
                       y=np.array([0.4, 0.3, 0.2, 0.15]))))


class TestSweepToSvg:
    def test_well_formed_document(self):
        svg = sweep_to_svg(make_sweep())
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_contains_labels_and_legend(self):
        svg = sweep_to_svg(make_sweep())
        assert "demo" in svg
        assert "alpha" in svg and "beta" in svg
        assert ">k</text>" in svg
        assert "pf" in svg

    def test_one_polyline_per_series(self):
        svg = sweep_to_svg(make_sweep())
        assert svg.count("<polyline") == 2

    def test_markers_per_point(self):
        svg = sweep_to_svg(make_sweep())
        assert svg.count("<circle") == 8

    def test_infinite_points_split_segments(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        sweep = SweepResult(
            name="gap", x_label="x", y_label="y",
            series=(Series(label="s", x=x,
                           y=np.array([1.0, 2.0, np.inf, 3.0, 4.0])),))
        svg = sweep_to_svg(sweep)
        # The infinity splits the curve into two polylines.
        assert svg.count("<polyline") == 2
        assert svg.count("<circle") == 4

    def test_constant_series_renders(self):
        sweep = SweepResult(
            name="flat", x_label="x", y_label="y",
            series=(Series(label="c", x=np.array([1.0, 2.0]),
                           y=np.array([5.0, 5.0])),))
        svg = sweep_to_svg(sweep)
        assert "<polyline" in svg

    def test_validation(self):
        with pytest.raises(ValidationError):
            sweep_to_svg(make_sweep(), width=10, height=10)
        empty = SweepResult(name="empty", x_label="x", y_label="y",
                            series=())
        with pytest.raises(ValidationError):
            sweep_to_svg(empty)
        all_inf = SweepResult(
            name="inf", x_label="x", y_label="y",
            series=(Series(label="s", x=np.array([1.0]),
                           y=np.array([np.inf])),))
        with pytest.raises(ValidationError):
            sweep_to_svg(all_inf)

    def test_coordinates_inside_canvas(self):
        import re
        svg = sweep_to_svg(make_sweep(), width=400, height=300)
        for match in re.finditer(r'cx="([\d.]+)" cy="([\d.]+)"', svg):
            cx, cy = float(match.group(1)), float(match.group(2))
            assert 0.0 <= cx <= 400.0
            assert 0.0 <= cy <= 300.0


class TestWriteSvg:
    def test_writes_file(self, tmp_path):
        path = tmp_path / "chart.svg"
        write_svg(make_sweep(), path)
        text = path.read_text()
        assert text.startswith("<svg")

    def test_real_experiment_renders(self, tmp_path):
        from repro.analysis.experiments import figure1
        write_svg(figure1(), tmp_path / "fig1.svg")
        assert (tmp_path / "fig1.svg").stat().st_size > 1000
