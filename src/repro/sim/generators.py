"""Workload generators feeding the simulator (Figure 4's two inputs).

* :class:`UpdateGenerator` drives the source: each element is updated
  by an independent Poisson process at its catalog change rate
  (rates are per *period*; the generator converts to clock time).
* :class:`RequestGenerator` drives the mirror: a Poisson stream of
  user accesses whose element choice follows the master profile.

Both produce bulk :class:`~repro.sim.events.EventStream` tapes for a
whole horizon — statistically identical to step-by-step generation
but far faster, and trivially reproducible from a seed.

Both also expose a raw ``draw_window(start, end)`` primitive for the
streaming slab pipeline: it performs exactly the draws ``generate``
would for a window of the same length (Poisson counts, then uniform
instants, then — for requests — one uniform per element pick), but
returns plain arrays without the per-stream sort so the caller can
fuse the cross-kind merge into a single stable argsort.  Element
picks use precomputed-CDF ``searchsorted`` sampling, which consumes
the identical ``rng.random`` variates ``rng.choice(p=...)`` would and
returns the identical indices — verified bit-for-bit — while hoisting
the O(n) CDF build out of the per-call path.

``draw_window_sorted(start, end)`` is the streaming fast path proper:
it produces each window already time-ordered in O(n) — exponential
spacings give the Poisson arrival instants as ready-made order
statistics, and a shuffled multiset of per-element counts replaces
both ``np.repeat``-then-sort and per-event CDF lookups.  The result
is *statistically* identical to ``draw_window`` plus a stable sort
(exactly, not approximately — superposition and order-statistics
identities, no discretization), but consumes a different rng stream,
so slabbed and one-shot horizons agree in distribution rather than
bit for bit.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ValidationError
from repro.sim.events import EventKind, EventStream
from repro.workloads.catalog import Catalog

__all__ = ["UpdateGenerator", "RequestGenerator"]


def _repeat_arange_into(counts: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Fill ``out`` with ``np.repeat(np.arange(len(counts)), counts)``.

    Writes block starts and integrates instead of materializing the
    arange + repeat intermediates, so a reused arena buffer absorbs
    the whole expansion (zero-count elements stack their start marks,
    which the cumulative sum turns into the skipped ids).
    """
    out[:] = 0
    if out.shape[0]:
        starts = np.cumsum(counts[:-1])
        np.add.at(out, starts[starts < out.shape[0]], 1)
        np.cumsum(out, out=out)
    return out


class UpdateGenerator:
    """Poisson update processes for every element of a catalog.

    Args:
        catalog: Supplies per-element change rates (per period).
        period_length: Clock length of one period.
        rng: Seeded generator.
    """

    def __init__(self, catalog: Catalog, *, period_length: float = 1.0,
                 rng: np.random.Generator) -> None:
        if period_length <= 0.0:
            raise ValidationError(
                f"period_length must be > 0, got {period_length}")
        self._rates = catalog.change_rates / period_length  # per clock unit
        self._rng = rng

    def draw_window(self, start: float, end: float, *,
                    rng: np.random.Generator | None = None,
                    arena: Any = None,
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Raw update draws for ``[start, end)`` — unsorted.

        A Poisson process with rate r over a window of length H has
        Poisson(r·H) events at i.i.d. uniform instants; sampling that
        way is exact and vectorizes across elements.  Draw order is
        the canonical one: per-element Poisson counts, then one
        uniform instant per event, element-major.

        Args:
            start: Window start in clock time.
            end: Window end, > ``start``.
            rng: Generator to draw from (defaults to the constructor
                rng; streaming slabs pass per-slab spawn children).
            arena: Optional :class:`~repro.sim.fastpath.ReplayArena`;
                when given, the element-id expansion reuses its
                scratch buffer instead of allocating.

        Returns:
            ``(times, elements)`` — unsorted float64/int64 arrays.
        """
        if end <= start:
            raise ValidationError(
                f"window end must exceed start, got [{start}, {end})")
        rng = self._rng if rng is None else rng
        counts = rng.poisson(self._rates * (end - start))
        total = int(counts.sum())
        if arena is None:
            elements = np.repeat(np.arange(self._rates.shape[0],
                                           dtype=np.int64), counts)
        else:
            elements = _repeat_arange_into(
                counts, arena.take("gen_update_elements", total, np.int64))
        times = rng.uniform(start, end, size=total)
        return times, elements

    def draw_window_sorted(self, start: float, end: float, *,
                           rng: np.random.Generator | None = None,
                           arena: Any = None,
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Update draws for ``[start, end)`` with *sorted* times, O(n).

        Statistically identical to :meth:`draw_window` followed by a
        stable time sort, but never sorts: the superposed process's
        arrival instants are uniform order statistics, which
        normalized exponential spacings produce already ordered, and
        conditioned on the per-element counts the element labels in
        time order are a uniformly shuffled multiset.  Draw order is
        the canonical *streaming* one: per-element Poisson counts,
        one multiset shuffle, then N+1 exponential spacings — a
        different stream from :meth:`draw_window`, so the two windows
        agree in distribution, not bit for bit.

        Args:
            start: Window start in clock time.
            end: Window end, > ``start``.
            rng: Generator to draw from (defaults to the constructor
                rng; streaming slabs pass per-slab spawn children).
            arena: Optional :class:`~repro.sim.fastpath.ReplayArena`;
                when given, the element-id expansion reuses its
                scratch buffer instead of allocating.

        Returns:
            ``(times, elements)`` — sorted float64 times and int64
            element ids.
        """
        if end <= start:
            raise ValidationError(
                f"window end must exceed start, got [{start}, {end})")
        rng = self._rng if rng is None else rng
        counts = rng.poisson(self._rates * (end - start))
        total = int(counts.sum())
        if arena is None:
            elements = np.repeat(np.arange(self._rates.shape[0],
                                           dtype=np.int64), counts)
        else:
            elements = _repeat_arange_into(
                counts, arena.take("gen_update_elements", total, np.int64))
        rng.shuffle(elements)
        spans = np.cumsum(rng.standard_exponential(total + 1))
        times = spans[:total]
        times *= (end - start) / spans[total]
        times += start
        return times, elements

    def generate(self, horizon: float) -> EventStream:
        """All update events in ``[0, horizon)``.

        Args:
            horizon: Clock length of the simulated window, > 0.

        Returns:
            A time-sorted UPDATE stream.
        """
        if horizon <= 0.0:
            raise ValidationError(f"horizon must be > 0, got {horizon}")
        times, elements = self.draw_window(0.0, horizon)
        order = np.argsort(times, kind="stable")
        return EventStream(kind=EventKind.UPDATE, times=times[order],
                           elements=elements[order])


class RequestGenerator:
    """Poisson user-request stream following the master profile.

    Args:
        catalog: Supplies the master profile.
        rate: Total accesses per clock unit, > 0.
        rng: Seeded generator.
    """

    def __init__(self, catalog: Catalog, *, rate: float,
                 rng: np.random.Generator) -> None:
        if rate <= 0.0:
            raise ValidationError(f"rate must be > 0, got {rate}")
        self._probabilities = catalog.access_probabilities
        # Precompute the sampling CDF once: searchsorted over it with
        # uniform variates reproduces rng.choice(p=...) draw-for-draw
        # (numpy builds this identical normalized cumsum per call).
        cdf = np.cumsum(self._probabilities)
        cdf /= cdf[-1]
        self._cdf = cdf
        self._pvals = self._probabilities / self._probabilities.sum()
        self._rate = rate
        self._rng = rng

    def draw_window(self, start: float, end: float, *,
                    rng: np.random.Generator | None = None,
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Raw access draws for ``[start, end)`` — times sorted.

        Draw order is canonical: one Poisson count, the uniform
        instants, then one uniform per element pick (consumed by the
        precomputed-CDF ``searchsorted``, matching ``rng.choice``).

        Args:
            start: Window start in clock time.
            end: Window end, > ``start``.
            rng: Generator to draw from (defaults to the constructor
                rng; streaming slabs pass per-slab spawn children).

        Returns:
            ``(times, elements)`` — float64 sorted times and the
            int64 elements accessed at them.
        """
        if end <= start:
            raise ValidationError(
                f"window end must exceed start, got [{start}, {end})")
        rng = self._rng if rng is None else rng
        count = int(rng.poisson(self._rate * (end - start)))
        times = np.sort(rng.uniform(start, end, size=count))
        elements = self._cdf.searchsorted(rng.random(count), side="right")
        return times, elements.astype(np.int64, copy=False)

    def draw_window_sorted(self, start: float, end: float, *,
                           rng: np.random.Generator | None = None,
                           arena: Any = None,
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Access draws for ``[start, end)`` with *sorted* times, O(n).

        Statistically identical to :meth:`draw_window` (whose uniform
        instants are sorted anyway), but replaces the per-event CDF
        binary search — random access into an O(catalog) array, the
        hot spot at 10⁶ elements — with one multinomial split of the
        Poisson count across the profile plus a multiset shuffle,
        and draws the instants pre-ordered via exponential spacings.
        Draw order is the canonical streaming one: one Poisson count,
        the multinomial split, one shuffle, then the spacings — a
        different stream from :meth:`draw_window`, so the two windows
        agree in distribution, not bit for bit.

        Args:
            start: Window start in clock time.
            end: Window end, > ``start``.
            rng: Generator to draw from (defaults to the constructor
                rng; streaming slabs pass per-slab spawn children).
            arena: Optional :class:`~repro.sim.fastpath.ReplayArena`;
                when given, the element-id expansion reuses its
                scratch buffer instead of allocating.

        Returns:
            ``(times, elements)`` — sorted float64 times and int64
            element ids.
        """
        if end <= start:
            raise ValidationError(
                f"window end must exceed start, got [{start}, {end})")
        rng = self._rng if rng is None else rng
        count = int(rng.poisson(self._rate * (end - start)))
        counts = rng.multinomial(count, self._pvals)
        if arena is None:
            elements = np.repeat(np.arange(self._pvals.shape[0],
                                           dtype=np.int64), counts)
        else:
            elements = _repeat_arange_into(
                counts, arena.take("gen_access_elements", count,
                                   np.int64))
        rng.shuffle(elements)
        spans = np.cumsum(rng.standard_exponential(count + 1))
        times = spans[:count]
        times *= (end - start) / spans[count]
        times += start
        return times, elements

    def generate(self, horizon: float) -> EventStream:
        """All access events in ``[0, horizon)``.

        Args:
            horizon: Clock length of the simulated window, > 0.

        Returns:
            A time-sorted ACCESS stream.
        """
        if horizon <= 0.0:
            raise ValidationError(f"horizon must be > 0, got {horizon}")
        times, elements = self.draw_window(0.0, horizon)
        return EventStream(kind=EventKind.ACCESS, times=times,
                           elements=elements)
