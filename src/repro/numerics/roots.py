"""Scalar root finding used by the freshening solvers.

These routines are deliberately small and dependency-free: the exact
Core-Problem solver only ever needs to find roots of smooth monotone
functions on known brackets, so plain bisection plus a guarded Newton
step is both robust and fast.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConvergenceError, ValidationError

__all__ = ["bisect", "newton_bisect_increasing"]

#: Default absolute tolerance on the root location.
DEFAULT_XTOL = 1e-12
#: Default maximum number of iterations for the iterative solvers.
DEFAULT_MAXITER = 200


def bisect(func: Callable[[float], float], lo: float, hi: float, *,
           xtol: float = DEFAULT_XTOL,
           maxiter: int = DEFAULT_MAXITER) -> float:
    """Find a root of ``func`` on ``[lo, hi]`` by bisection.

    ``func(lo)`` and ``func(hi)`` must have opposite signs (either may
    be zero, in which case that endpoint is returned immediately).

    Args:
        func: Continuous scalar function.
        lo: Lower bracket endpoint.
        hi: Upper bracket endpoint, strictly greater than ``lo``.
        xtol: Stop when the bracket width falls below this value.
        maxiter: Hard cap on bisection steps.

    Returns:
        The midpoint of the final bracket.

    Raises:
        ValidationError: If the bracket is invalid or does not straddle
            a sign change.
        ConvergenceError: If ``maxiter`` steps do not shrink the
            bracket below ``xtol``.
    """
    if not lo < hi:
        raise ValidationError(f"invalid bracket: lo={lo!r} must be < hi={hi!r}")
    f_lo = func(lo)
    f_hi = func(hi)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if (f_lo > 0.0) == (f_hi > 0.0):
        raise ValidationError(
            f"func must change sign on bracket: f({lo})={f_lo}, f({hi})={f_hi}"
        )
    for _ in range(maxiter):
        mid = 0.5 * (lo + hi)
        if hi - lo < xtol:
            return mid
        f_mid = func(mid)
        if f_mid == 0.0:
            return mid
        if (f_mid > 0.0) == (f_hi > 0.0):
            hi, f_hi = mid, f_mid
        else:
            lo, f_lo = mid, f_mid
    raise ConvergenceError(
        f"bisection did not converge below xtol={xtol} in {maxiter} steps",
        iterations=maxiter, residual=hi - lo,
    )


def newton_bisect_increasing(
    func: Callable[[float], float],
    deriv: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    xtol: float = DEFAULT_XTOL,
    maxiter: int = DEFAULT_MAXITER,
) -> float:
    """Root of a strictly increasing ``func`` via safeguarded Newton.

    Newton steps are taken when they land inside the current bracket;
    otherwise the step falls back to bisection.  Because ``func`` is
    strictly increasing the bracket is maintained exactly.

    Args:
        func: Strictly increasing continuous function with
            ``func(lo) <= 0 <= func(hi)``.
        deriv: Derivative of ``func``.
        lo: Lower bracket endpoint.
        hi: Upper bracket endpoint.
        xtol: Absolute tolerance on the root.
        maxiter: Iteration cap.

    Returns:
        The located root.

    Raises:
        ValidationError: If the bracket does not straddle the root.
        ConvergenceError: If the iteration cap is exhausted.
    """
    if not lo < hi:
        raise ValidationError(f"invalid bracket: lo={lo!r} must be < hi={hi!r}")
    f_lo = func(lo)
    f_hi = func(hi)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if f_lo > 0.0 or f_hi < 0.0:
        raise ValidationError(
            "increasing func must satisfy func(lo) <= 0 <= func(hi): "
            f"f({lo})={f_lo}, f({hi})={f_hi}"
        )
    x = 0.5 * (lo + hi)
    for _ in range(maxiter):
        f_x = func(x)
        if f_x == 0.0 or hi - lo < xtol:
            return x
        if f_x > 0.0:
            hi = x
        else:
            lo = x
        d_x = deriv(x)
        if d_x > 0.0:
            step = x - f_x / d_x
        else:
            step = lo - 1.0  # force bisection fallback
        if lo < step < hi:
            x = step
        else:
            x = 0.5 * (lo + hi)
    raise ConvergenceError(
        f"newton/bisection did not converge below xtol={xtol} in "
        f"{maxiter} steps", iterations=maxiter, residual=hi - lo,
    )
