"""Tests for repro.core.selection — profile-driven mirror selection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import (
    SelectionStrategy,
    plan_selected_mirror,
    select_mirror,
)
from repro.core.solver import solve_core_problem
from repro.errors import ValidationError
from repro.workloads.catalog import Catalog

from tests.conftest import random_catalog


class TestSelectionStrategyCoerce:
    def test_accepts_strings(self):
        assert SelectionStrategy.coerce("interest") is \
            SelectionStrategy.INTEREST
        assert SelectionStrategy.coerce("INTEREST-PER-SIZE") is \
            SelectionStrategy.INTEREST_PER_SIZE

    def test_rejects_unknown(self):
        with pytest.raises(ValidationError):
            SelectionStrategy.coerce("alphabetical")


class TestSelectMirror:
    def test_interest_takes_hottest(self, small_catalog):
        indices = select_mirror(small_catalog, capacity=2.0,
                                strategy="interest")
        # Capacity 2 with unit sizes: the two hottest elements.
        assert set(indices.tolist()) == {0, 1}

    def test_capacity_respected(self, sized_catalog):
        indices = select_mirror(sized_catalog, capacity=3.0,
                                strategy="interest-per-size")
        assert sized_catalog.sizes[indices].sum() <= 3.0

    def test_oversized_items_skipped_not_blocking(self):
        catalog = Catalog(
            access_probabilities=np.array([0.9, 0.1]),
            change_rates=np.ones(2),
            sizes=np.array([10.0, 1.0]))
        indices = select_mirror(catalog, capacity=2.0,
                                strategy="interest")
        # The huge hot object does not fit; the small one still does.
        assert indices.tolist() == [1]

    def test_interest_per_size_prefers_density(self):
        catalog = Catalog(
            access_probabilities=np.array([0.5, 0.5]),
            change_rates=np.ones(2),
            sizes=np.array([4.0, 1.0]))
        indices = select_mirror(catalog, capacity=1.0,
                                strategy="interest-per-size")
        assert indices.tolist() == [1]

    def test_random_requires_rng(self, small_catalog):
        with pytest.raises(ValidationError):
            select_mirror(small_catalog, capacity=2.0,
                          strategy="random")

    def test_achievable_requires_bandwidth(self, small_catalog):
        with pytest.raises(ValidationError):
            select_mirror(small_catalog, capacity=2.0,
                          strategy="achievable")

    def test_achievable_discounts_hopeless_elements(self):
        # Two equally hot objects; one changes so fast the reference
        # bandwidth cannot keep it remotely fresh.
        catalog = Catalog(
            access_probabilities=np.array([0.5, 0.5]),
            change_rates=np.array([1000.0, 1.0]))
        indices = select_mirror(catalog, capacity=1.0,
                                strategy="achievable", bandwidth=2.0)
        assert indices.tolist() == [1]

    def test_rejects_bad_capacity(self, small_catalog):
        with pytest.raises(ValidationError):
            select_mirror(small_catalog, capacity=0.0)

    def test_full_capacity_takes_everything(self, small_catalog):
        indices = select_mirror(small_catalog, capacity=5.0,
                                strategy="interest")
        assert sorted(indices.tolist()) == [0, 1, 2, 3, 4]


class TestPlanSelectedMirror:
    def test_unselected_elements_get_zero(self, small_catalog):
        selection = plan_selected_mirror(small_catalog, capacity=2.0,
                                         bandwidth=2.0,
                                         strategy="interest")
        outside = np.setdiff1d(np.arange(5), selection.indices)
        assert (selection.frequencies[outside] == 0.0).all()

    def test_bandwidth_spent_within_selection(self, sized_catalog):
        selection = plan_selected_mirror(sized_catalog, capacity=4.0,
                                         bandwidth=3.0)
        spent = float(sized_catalog.sizes @ selection.frequencies)
        assert spent == pytest.approx(3.0, rel=1e-6)

    def test_full_capacity_matches_core_problem(self, small_catalog):
        selection = plan_selected_mirror(small_catalog, capacity=5.0,
                                         bandwidth=3.0,
                                         strategy="interest")
        exact = solve_core_problem(small_catalog, 3.0)
        assert selection.perceived_freshness == pytest.approx(
            exact.objective, abs=1e-9)

    def test_coverage_bounds_pf(self, small_catalog):
        selection = plan_selected_mirror(small_catalog, capacity=2.0,
                                         bandwidth=3.0,
                                         strategy="interest")
        assert selection.perceived_freshness <= \
            selection.covered_interest + 1e-12

    def test_space_used_reported(self, sized_catalog):
        selection = plan_selected_mirror(sized_catalog, capacity=4.0,
                                         bandwidth=3.0)
        assert selection.space_used == pytest.approx(
            sized_catalog.sizes[selection.indices].sum())
        assert selection.space_used <= 4.0

    @given(st.floats(min_value=1.0, max_value=20.0),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_greedy_interest_beats_random(self, capacity, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 25)
        greedy = plan_selected_mirror(catalog, capacity, bandwidth=5.0,
                                      strategy="interest")
        random_pick = plan_selected_mirror(
            catalog, capacity, bandwidth=5.0, strategy="random",
            rng=np.random.default_rng(seed + 1))
        assert greedy.covered_interest >= \
            random_pick.covered_interest - 1e-9

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_more_capacity_never_hurts(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 20, sized=True)
        small = plan_selected_mirror(catalog, capacity=5.0,
                                     bandwidth=4.0,
                                     strategy="interest-per-size")
        large = plan_selected_mirror(catalog, capacity=15.0,
                                     bandwidth=4.0,
                                     strategy="interest-per-size")
        assert large.covered_interest >= small.covered_interest - 1e-9
