"""Figure 10 — optimal sync resource distribution under object sizes.

N = 500, B = 250, uniform access, change rate and size aligned.
Paper claims reproduced as assertions:

* with Pareto sizes the optimum performs far more syncs for the same
  total bandwidth (small objects are cheap to refresh);
* sync resources go to the pages with the lowest change rates;
* the size-aware optimum (paper: PF 0.586) beats the uniform-size
  world's optimum (paper: PF 0.312) and the size-blind schedule
  executed in the sized world.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import figure10
from repro.analysis.tables import format_table


def test_figure10(benchmark, report):
    results = benchmark.pedantic(figure10, rounds=1, iterations=1)

    freq = results["frequency"]
    uniform_syncs = freq.get("Uniform Size Distribution").y
    pareto_syncs = freq.get("Pareto_Shape (a) = 1.1").y
    # More syncs for the same bandwidth under Pareto sizes.
    assert pareto_syncs.sum() > 2.0 * uniform_syncs.sum()
    # Fastest-changing objects (index 0) get nothing; slow ones do.
    assert uniform_syncs[0] == 0.0
    assert uniform_syncs[-1] > 0.0

    bw = results["bandwidth"]
    totals = [series.y.sum() for series in bw.series]
    assert np.isclose(totals[0], totals[1], rtol=1e-6)

    assert results["pf_size_aware"] > results["pf_uniform_world"]
    assert results["pf_size_aware"] >= \
        results["pf_blind_in_sized_world"] - 1e-9
    # The uniform-size world's optimum reproduces the paper's 0.312.
    assert 0.25 < results["pf_uniform_world"] < 0.40

    rows = [
        ("uniform-size optimum (paper 0.312)",
         results["pf_uniform_world"]),
        ("size-aware optimum (paper 0.586)",
         results["pf_size_aware"]),
        ("size-blind schedule in sized world",
         results["pf_blind_in_sized_world"]),
        ("total syncs, uniform sizes", float(uniform_syncs.sum())),
        ("total syncs, Pareto sizes", float(pareto_syncs.sum())),
        ("total bandwidth (both)", float(totals[0])),
    ]
    report("figure10", "Figure 10 — sync resources under object sizes\n"
           + format_table(["quantity", "value"], rows))
