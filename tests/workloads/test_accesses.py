"""Tests for repro.workloads.accesses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workloads.accesses import AccessSet, sample_access_times


class TestAccessSet:
    def test_valid_access_set(self):
        accesses = AccessSet(times=np.array([0.0, 1.0, 1.0, 2.0]),
                             elements=np.array([0, 1, 0, 2]))
        assert len(accesses) == 4

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValidationError, match="nondecreasing"):
            AccessSet(times=np.array([1.0, 0.5]),
                      elements=np.array([0, 1]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            AccessSet(times=np.array([0.0]), elements=np.array([0, 1]))

    def test_rejects_negative_elements(self):
        with pytest.raises(ValidationError):
            AccessSet(times=np.array([0.0]), elements=np.array([-1]))

    def test_empty_access_set_allowed(self):
        accesses = AccessSet(times=np.empty(0), elements=np.empty(0,
                                                                  dtype=int))
        assert len(accesses) == 0

    def test_access_counts(self):
        accesses = AccessSet(times=np.array([0.0, 1.0, 2.0]),
                             elements=np.array([2, 0, 2]))
        counts = accesses.access_counts(4)
        assert np.array_equal(counts, [1, 0, 2, 0])

    def test_access_counts_rejects_out_of_range(self):
        accesses = AccessSet(times=np.array([0.0]),
                             elements=np.array([5]))
        with pytest.raises(ValidationError, match="references element"):
            accesses.access_counts(3)

    def test_empirical_probabilities(self):
        accesses = AccessSet(times=np.array([0.0, 1.0, 2.0, 3.0]),
                             elements=np.array([0, 0, 0, 1]))
        p = accesses.empirical_probabilities(2)
        assert p == pytest.approx([0.75, 0.25])

    def test_empirical_probabilities_rejects_empty(self):
        accesses = AccessSet(times=np.empty(0),
                             elements=np.empty(0, dtype=int))
        with pytest.raises(ValidationError):
            accesses.empirical_probabilities(2)

    def test_arrays_immutable(self):
        accesses = AccessSet(times=np.array([0.0]),
                             elements=np.array([0]))
        with pytest.raises(ValueError):
            accesses.times[0] = 5.0


class TestSampleAccessTimes:
    def test_times_sorted_within_horizon(self, rng):
        accesses = sample_access_times(np.array([0.5, 0.5]), rate=100.0,
                                       horizon=2.0, rng=rng)
        assert (np.diff(accesses.times) >= 0.0).all()
        assert accesses.times.min() >= 0.0
        assert accesses.times.max() < 2.0

    def test_count_near_expectation(self, rng):
        accesses = sample_access_times(np.array([1.0]), rate=1000.0,
                                       horizon=10.0, rng=rng)
        assert len(accesses) == pytest.approx(10_000, rel=0.05)

    def test_element_distribution_follows_profile(self, rng):
        p = np.array([0.7, 0.2, 0.1])
        accesses = sample_access_times(p, rate=2000.0, horizon=10.0,
                                       rng=rng)
        empirical = accesses.empirical_probabilities(3)
        assert np.allclose(empirical, p, atol=0.02)

    def test_rejects_bad_parameters(self, rng):
        with pytest.raises(ValidationError):
            sample_access_times(np.array([1.0]), rate=0.0, horizon=1.0,
                                rng=rng)
        with pytest.raises(ValidationError):
            sample_access_times(np.array([1.0]), rate=1.0, horizon=0.0,
                                rng=rng)

    def test_reproducible(self):
        p = np.array([0.3, 0.7])
        first = sample_access_times(p, rate=50.0, horizon=1.0,
                                    rng=np.random.default_rng(1))
        second = sample_access_times(p, rate=50.0, horizon=1.0,
                                     rng=np.random.default_rng(1))
        assert np.array_equal(first.times, second.times)
        assert np.array_equal(first.elements, second.elements)
