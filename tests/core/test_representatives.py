"""Tests for repro.core.representatives — the Transformed Problem."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioning import (
    PartitionAssignment,
    PartitioningStrategy,
    partition_catalog,
)
from repro.core.representatives import (
    build_representatives,
    solve_transformed_problem,
)
from repro.core.solver import solve_core_problem
from repro.errors import ValidationError
from repro.workloads.catalog import Catalog

from tests.conftest import random_catalog


class TestBuildRepresentatives:
    def test_means_are_partition_means(self, small_catalog):
        labels = np.array([0, 0, 1, 1, 1])
        assignment = PartitionAssignment(labels=labels, n_partitions=2)
        problem = build_representatives(small_catalog, assignment)
        p = small_catalog.access_probabilities
        lam = small_catalog.change_rates
        assert problem.counts.tolist() == [2.0, 3.0]
        assert problem.mean_probabilities[0] == pytest.approx(
            p[:2].mean())
        assert problem.mean_change_rates[1] == pytest.approx(
            lam[2:].mean())

    def test_weights_and_costs(self, sized_catalog):
        labels = np.array([0, 1, 0, 1, 0])
        assignment = PartitionAssignment(labels=labels, n_partitions=2)
        problem = build_representatives(sized_catalog, assignment)
        # weights are n_k * mean p = sum of p in partition.
        p = sized_catalog.access_probabilities
        assert problem.weights[0] == pytest.approx(p[[0, 2, 4]].sum())
        s = sized_catalog.sizes
        assert problem.costs[1] == pytest.approx(s[[1, 3]].sum())

    def test_empty_partition_harmless(self, small_catalog):
        labels = np.zeros(5, dtype=int)
        assignment = PartitionAssignment(labels=labels, n_partitions=3)
        problem = build_representatives(small_catalog, assignment)
        assert problem.counts.tolist() == [5.0, 0.0, 0.0]
        assert problem.weights[1] == 0.0

    def test_rejects_size_mismatch(self, small_catalog):
        assignment = PartitionAssignment(labels=np.zeros(3, dtype=int),
                                         n_partitions=1)
        with pytest.raises(ValidationError):
            build_representatives(small_catalog, assignment)


class TestSolveTransformedProblem:
    def test_n_partitions_equals_n_recovers_exact_solution(self,
                                                           small_catalog):
        """With one element per partition the heuristic IS the optimum."""
        assignment = partition_catalog(small_catalog, 5,
                                       PartitioningStrategy.PF)
        problem = build_representatives(small_catalog, assignment)
        transformed = solve_transformed_problem(problem, 3.0)
        exact = solve_core_problem(small_catalog, 3.0)
        expanded = transformed.frequencies[assignment.labels]
        assert np.allclose(np.sort(expanded),
                           np.sort(exact.frequencies), atol=1e-6)

    def test_bandwidth_respected(self, small_catalog):
        assignment = partition_catalog(small_catalog, 2,
                                       PartitioningStrategy.PF)
        problem = build_representatives(small_catalog, assignment)
        solution = solve_transformed_problem(problem, 3.0)
        consumed = float(problem.costs @ solution.frequencies)
        assert consumed == pytest.approx(3.0, rel=1e-8)

    def test_single_partition_spreads_uniformly(self, small_catalog):
        assignment = partition_catalog(small_catalog, 1,
                                       PartitioningStrategy.PF)
        problem = build_representatives(small_catalog, assignment)
        solution = solve_transformed_problem(problem, 5.0)
        # One representative, budget 5 over 5 identical elements.
        assert solution.frequencies[0] == pytest.approx(1.0)

    def test_identical_elements_lossless_at_any_k(self):
        catalog = Catalog(access_probabilities=np.full(6, 1.0 / 6.0),
                          change_rates=np.full(6, 2.0))
        exact = solve_core_problem(catalog, 6.0)
        assignment = partition_catalog(catalog, 2,
                                       PartitioningStrategy.PF)
        problem = build_representatives(catalog, assignment)
        solution = solve_transformed_problem(problem, 6.0)
        expanded = solution.frequencies[assignment.labels]
        assert np.allclose(expanded, exact.frequencies, atol=1e-8)

    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_heuristic_never_beats_optimum(self, k, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(rng, 30)
        bandwidth = 15.0
        exact = solve_core_problem(catalog, bandwidth)
        assignment = partition_catalog(catalog, k,
                                       PartitioningStrategy.PF)
        problem = build_representatives(catalog, assignment)
        solution = solve_transformed_problem(problem, bandwidth)
        from repro.core.metrics import perceived_freshness
        heuristic = perceived_freshness(
            catalog, solution.frequencies[assignment.labels])
        assert heuristic <= exact.objective + 1e-8
