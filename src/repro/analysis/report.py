"""One-command reproduction report.

:func:`generate_report` runs every reproduced experiment (at full or
quick scale) and renders a single Markdown document — the artifact a
reviewer reads next to the paper.  Each section carries the paper's
claim, the regenerated rows, and a PASS/FAIL verdict from the same
shape assertions the benchmark harness enforces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.analysis import experiments, sensitivity
from repro.analysis.series import SweepResult
from repro.analysis.tables import format_sweep, format_table
from repro.workloads.presets import ExperimentSetup

__all__ = ["ReportSection", "generate_report", "write_report"]

_QUICK_IDEAL = ExperimentSetup(n_objects=200, updates_per_period=400.0,
                               syncs_per_period=100.0, theta=1.0,
                               update_std_dev=1.0)
_QUICK_BIG = ExperimentSetup(n_objects=20_000,
                             updates_per_period=40_000.0,
                             syncs_per_period=10_000.0, theta=1.0,
                             update_std_dev=2.0)


@dataclass(frozen=True)
class ReportSection:
    """One experiment's entry in the report.

    Attributes:
        title: Section heading (e.g. ``"Figure 3 — ideal case"``).
        claim: The paper claim being checked.
        body: The regenerated table(s).
        passed: Whether the shape assertions held.
        seconds: Wall time to produce the section.
    """

    title: str
    claim: str
    body: str
    passed: bool
    seconds: float


def _section(title: str, claim: str,
             runner: Callable[[], tuple[str, bool]]) -> ReportSection:
    start = time.perf_counter()
    try:
        body, passed = runner()
    except Exception as error:  # surface, don't abort the report
        body = f"ERROR: {error!r}"
        passed = False
    return ReportSection(title=title, claim=claim, body=body,
                         passed=passed,
                         seconds=time.perf_counter() - start)


def _sweep_body(sweeps: list[SweepResult]) -> str:
    return "\n\n".join(f"```\n{format_sweep(sweep)}\n```"
                       for sweep in sweeps)


def generate_report(*, quick: bool = True,
                    seed: int = 0) -> list[ReportSection]:
    """Run every experiment and collect report sections.

    Args:
        quick: Use reduced scales (seconds per section).  Full scale
            matches the paper's setups (minutes for the big case).
        seed: Workload seed used throughout.

    Returns:
        The ordered report sections.
    """
    ideal = _QUICK_IDEAL if quick else None
    big = _QUICK_BIG if quick else None
    n_seeds = 1 if quick else 3
    sections: list[ReportSection] = []

    def run_table1() -> tuple[str, bool]:
        results = experiments.table1()
        rows = [["change freq"] + [f"{v:g}" for v in
                                   results["change_rates"]]]
        for profile in ("P1", "P2", "P3"):
            rows.append([profile] + [f"{v:.2f}"
                                     for v in results[profile]])
        passed = (np.round(results["P1"], 2).tolist()
                  == [1.15, 1.36, 1.35, 1.14, 0.00])
        headers = ["row"] + [f"e{i}" for i in range(1, 6)]
        return f"```\n{format_table(headers, rows)}\n```", passed

    sections.append(_section(
        "Table 1 — toy-example optimal frequencies",
        "Exact reproduction of the paper's printed frequencies.",
        run_table1))

    def run_figure3() -> tuple[str, bool]:
        kwargs = {"n_seeds": n_seeds, "base_seed": seed}
        if ideal is not None:
            kwargs["setup"] = ideal
        results = experiments.figure3(**kwargs)
        passed = True
        for sweep in results.values():
            pf = sweep.get("PF_TECHNIQUE").y
            gf = sweep.get("GF_TECHNIQUE").y
            passed &= bool(abs(pf[0] - gf[0]) < 1e-9)
            passed &= bool((pf >= gf - 1e-9).all())
        passed &= bool(
            results["aligned"].get("GF_TECHNIQUE").y[-1] < 0.1)
        return _sweep_body(list(results.values())), passed

    sections.append(_section(
        "Figure 3 — PF vs GF across interest skew",
        "PF = GF at θ = 0; PF dominates; aligned GF collapses to ~0.",
        run_figure3))

    def run_figure5() -> tuple[str, bool]:
        counts = (np.array([5, 20, 60, 200])
                  if quick else np.array([10, 50, 100, 200, 500]))
        kwargs = {"partition_counts": counts, "seed": seed}
        if ideal is not None:
            kwargs["setup"] = ideal
        results = experiments.figure5(**kwargs)
        passed = True
        for sweep in results.values():
            best = sweep.get("best_case").y
            for label in sweep.labels:
                if label != "best_case":
                    passed &= bool(
                        (sweep.get(label).y <= best + 1e-8).all())
        shuffled = results["shuffled"]
        passed &= bool(shuffled.get("PF_PARTITIONING").y[1]
                       > shuffled.get("LAMBDA_PARTITIONING").y[1])
        return _sweep_body(list(results.values())), passed

    sections.append(_section(
        "Figure 5 — partitioning techniques",
        "All techniques approach best_case with k; λ-sort trails "
        "under shuffled change.",
        run_figure5))

    def run_figure7() -> tuple[str, bool]:
        counts = np.array([20, 60, 100, 200])
        kwargs = {"partition_counts": counts, "seed": seed}
        if big is not None:
            kwargs["setup"] = big
        sweep = experiments.figure7(**kwargs)
        pf = sweep.get("PF_PARTITIONING").y
        lam = sweep.get("LAMBDA_PARTITIONING").y
        passed = bool((pf > lam).all())
        return _sweep_body([sweep]), passed

    sections.append(_section(
        "Figure 7 — the big case",
        "PF-partitioning wins at catalog scale; returns diminish "
        "past ~100 partitions.",
        run_figure7))

    def run_figure8() -> tuple[str, bool]:
        kwargs = {"partition_counts": np.array([10, 40, 100]),
                  "iteration_counts": (0, 1, 5), "seed": seed}
        if quick:
            kwargs["setup"] = _QUICK_BIG
        sweep = experiments.figure8(**kwargs)
        zero = sweep.get("0 iterations").y
        five = sweep.get("5 iterations").y
        passed = bool((five >= zero - 0.02).all()
                      and five[0] > zero[0])
        return _sweep_body([sweep]), passed

    sections.append(_section(
        "Figure 8 — k-means refinement",
        "A few clustering iterations lift coarse partitionings "
        "substantially.",
        run_figure8))

    def run_figure10() -> tuple[str, bool]:
        results = experiments.figure10(seed=seed)
        rows = [
            ("uniform-size optimum (paper 0.312)",
             results["pf_uniform_world"]),
            ("size-aware optimum (paper 0.586)",
             results["pf_size_aware"]),
            ("size-blind schedule in sized world",
             results["pf_blind_in_sized_world"]),
        ]
        passed = (results["pf_size_aware"]
                  > results["pf_uniform_world"])
        body = format_table(["quantity", "value"], rows)
        return f"```\n{body}\n```", passed

    sections.append(_section(
        "Figure 10 — object sizes",
        "Size-aware optimum beats the size-blind world (paper: "
        "0.586 vs 0.312).",
        run_figure10))

    def run_figure11() -> tuple[str, bool]:
        counts = np.array([5, 25, 100]) if quick else None
        kwargs = {"partition_counts": counts, "seed": seed}
        if ideal is not None:
            kwargs["setup"] = ideal
        sweep = experiments.figure11(**kwargs)
        fba = sweep.get("FIXED BANDWIDTH (FBA)").y
        ffa = sweep.get("FIXED FREQUENCY (FFA)").y
        passed = bool((fba >= ffa - 1e-9).all())
        return _sweep_body([sweep]), passed

    sections.append(_section(
        "Figure 11 — FBA vs FFA",
        "Fixed-bandwidth allocation always outperforms "
        "fixed-frequency under variable sizes.",
        run_figure11))

    def run_baselines() -> tuple[str, bool]:
        kwargs = {"seed": seed}
        if ideal is not None:
            kwargs["setup"] = ideal
        sweep = sensitivity.baseline_comparison(**kwargs)
        pf = sweep.get("PF_OPTIMAL").y
        passed = all(bool((pf >= sweep.get(label).y - 1e-9).all())
                     for label in ("GF_OPTIMAL", "UNIFORM",
                                   "PROPORTIONAL"))
        return _sweep_body([sweep]), passed

    sections.append(_section(
        "Extension — baseline policy ladder",
        "PF-optimal tops GF, uniform and proportional at every skew.",
        run_baselines))

    def run_adaptive() -> tuple[str, bool]:
        kwargs = {"seed": seed, "n_periods": 8 if quick else 15}
        if ideal is not None:
            kwargs["setup"] = ideal
        sweep = sensitivity.adaptive_convergence(**kwargs)
        adaptive = sweep.get("adaptive manager").y
        oracle = sweep.get("oracle").y[0]
        passed = bool(adaptive[-1] > 0.8 * oracle)
        return _sweep_body([sweep]), passed

    sections.append(_section(
        "Extension — adaptive runtime convergence",
        "The observe/estimate/replan loop approaches the oracle from "
        "zero knowledge.",
        run_adaptive))

    return sections


def write_report(path: str | Path, *, quick: bool = True,
                 seed: int = 0) -> list[ReportSection]:
    """Generate the report and write it as Markdown.

    Args:
        path: Destination file.
        quick: Reduced scales (see :func:`generate_report`).
        seed: Workload seed.

    Returns:
        The sections that were written.
    """
    sections = generate_report(quick=quick, seed=seed)
    lines = ["# Reproduction report — Scalable Application-Aware "
             "Data Freshening (ICDE 2003)", ""]
    scale = "quick (reduced) scale" if quick else "paper scale"
    passed = sum(section.passed for section in sections)
    lines.append(f"Run at {scale}, seed {seed}: "
                 f"**{passed}/{len(sections)} sections PASS**.")
    lines.append("")
    for section in sections:
        verdict = "PASS" if section.passed else "FAIL"
        lines.append(f"## {section.title}  —  {verdict} "
                     f"({section.seconds:.1f}s)")
        lines.append("")
        lines.append(f"*Claim:* {section.claim}")
        lines.append("")
        lines.append(section.body)
        lines.append("")
    Path(path).write_text("\n".join(lines))
    return sections
