"""Tests for repro.profiles.aggregation and learning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.profiles.aggregation import aggregate_profiles, profile_divergence
from repro.profiles.learning import ProfileLearner, estimate_profile
from repro.profiles.profile import UserProfile
from repro.workloads.accesses import AccessSet


class TestAggregateProfiles:
    def test_equal_users_average(self):
        first = UserProfile(probabilities=np.array([1.0, 0.0]))
        second = UserProfile(probabilities=np.array([0.0, 1.0]))
        master = aggregate_profiles([first, second])
        assert master.probabilities == pytest.approx([0.5, 0.5])

    def test_importance_weights_users(self):
        # The paper: "profiles can be weighted... (e.g., generals)".
        general = UserProfile(probabilities=np.array([1.0, 0.0]),
                              importance=3.0)
        private = UserProfile(probabilities=np.array([0.0, 1.0]))
        master = aggregate_profiles([general, private])
        assert master.probabilities == pytest.approx([0.75, 0.25])

    def test_single_profile_identity(self):
        profile = UserProfile(probabilities=np.array([0.3, 0.7]))
        master = aggregate_profiles([profile])
        assert master.probabilities == pytest.approx([0.3, 0.7])

    def test_master_named(self):
        profile = UserProfile(probabilities=np.array([1.0]))
        assert aggregate_profiles([profile]).name == "master"

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            aggregate_profiles([])

    def test_rejects_size_mismatch(self):
        first = UserProfile(probabilities=np.array([1.0]))
        second = UserProfile(probabilities=np.array([0.5, 0.5]))
        with pytest.raises(ValidationError):
            aggregate_profiles([first, second])

    def test_accepts_generator(self):
        master = aggregate_profiles(
            UserProfile(probabilities=np.array([0.5, 0.5]))
            for _ in range(3))
        assert master.probabilities == pytest.approx([0.5, 0.5])


class TestProfileDivergence:
    def test_zero_for_identical(self):
        profile = UserProfile(probabilities=np.array([0.2, 0.8]))
        assert profile_divergence(profile, profile) == 0.0

    def test_one_for_disjoint(self):
        first = UserProfile(probabilities=np.array([1.0, 0.0]))
        second = UserProfile(probabilities=np.array([0.0, 1.0]))
        assert profile_divergence(first, second) == pytest.approx(1.0)

    def test_symmetric(self):
        first = UserProfile(probabilities=np.array([0.7, 0.3]))
        second = UserProfile(probabilities=np.array([0.2, 0.8]))
        assert profile_divergence(first, second) == pytest.approx(
            profile_divergence(second, first))

    def test_rejects_mismatched_sizes(self):
        first = UserProfile(probabilities=np.array([1.0]))
        second = UserProfile(probabilities=np.array([0.5, 0.5]))
        with pytest.raises(ValidationError):
            profile_divergence(first, second)


class TestEstimateProfile:
    def test_smoothed_estimate(self):
        accesses = AccessSet(times=np.array([0.0, 1.0, 2.0]),
                             elements=np.array([0, 0, 1]))
        profile = estimate_profile(accesses, 3, smoothing=1.0)
        assert profile.probabilities == pytest.approx(
            [3.0 / 6.0, 2.0 / 6.0, 1.0 / 6.0])

    def test_unsmoothed_is_empirical(self):
        accesses = AccessSet(times=np.array([0.0, 1.0, 2.0, 3.0]),
                             elements=np.array([0, 0, 1, 1]))
        profile = estimate_profile(accesses, 2, smoothing=0.0)
        assert profile.probabilities == pytest.approx([0.5, 0.5])

    def test_rejects_empty_without_smoothing(self):
        accesses = AccessSet(times=np.empty(0),
                             elements=np.empty(0, dtype=int))
        with pytest.raises(ValidationError):
            estimate_profile(accesses, 2, smoothing=0.0)

    def test_rejects_negative_smoothing(self):
        accesses = AccessSet(times=np.empty(0),
                             elements=np.empty(0, dtype=int))
        with pytest.raises(ValidationError):
            estimate_profile(accesses, 2, smoothing=-1.0)


class TestProfileLearner:
    def test_estimate_uniform_before_observations(self):
        learner = ProfileLearner(4, smoothing=1.0)
        assert np.allclose(learner.estimate().probabilities, 0.25)

    def test_learns_observed_skew(self):
        learner = ProfileLearner(3, smoothing=0.0)
        learner.observe(np.array([0, 0, 0, 1]))
        assert learner.estimate().probabilities == pytest.approx(
            [0.75, 0.25, 0.0])

    def test_decay_forgets_old_interest(self):
        learner = ProfileLearner(2, decay=0.1, smoothing=0.0)
        learner.observe(np.array([0] * 100))
        learner.end_period()
        learner.end_period()
        learner.observe(np.array([1] * 10))
        estimate = learner.estimate()
        # Element 1's recent interest dominates the decayed history.
        assert estimate.probabilities[1] > estimate.probabilities[0]

    def test_no_decay_keeps_counts(self):
        learner = ProfileLearner(2, decay=1.0, smoothing=0.0)
        learner.observe(np.array([0, 1]))
        learner.end_period()
        assert learner.estimate().probabilities == pytest.approx(
            [0.5, 0.5])

    def test_observe_access_set(self):
        learner = ProfileLearner(2, smoothing=0.0)
        accesses = AccessSet(times=np.array([0.0, 1.0]),
                             elements=np.array([1, 1]))
        learner.observe_access_set(accesses)
        assert learner.total_observed == 2
        assert learner.estimate().probabilities == pytest.approx(
            [0.0, 1.0])

    def test_empty_observation_is_noop(self):
        learner = ProfileLearner(2)
        learner.observe(np.empty(0, dtype=int))
        assert learner.total_observed == 0

    def test_rejects_out_of_range_elements(self):
        learner = ProfileLearner(2)
        with pytest.raises(ValidationError):
            learner.observe(np.array([2]))
        with pytest.raises(ValidationError):
            learner.observe(np.array([-1]))

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValidationError):
            ProfileLearner(0)
        with pytest.raises(ValidationError):
            ProfileLearner(2, decay=0.0)
        with pytest.raises(ValidationError):
            ProfileLearner(2, decay=1.5)
        with pytest.raises(ValidationError):
            ProfileLearner(2, smoothing=-0.5)

    def test_rejects_estimate_with_nothing(self):
        learner = ProfileLearner(2, smoothing=0.0)
        with pytest.raises(ValidationError):
            learner.estimate()

    def test_converges_to_true_profile(self, rng):
        true = np.array([0.5, 0.3, 0.15, 0.05])
        learner = ProfileLearner(4, decay=1.0, smoothing=1.0)
        learner.observe(rng.choice(4, size=20_000, p=true))
        estimate = learner.estimate().probabilities
        assert np.allclose(estimate, true, atol=0.02)
