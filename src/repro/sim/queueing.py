"""A physical bandwidth model: syncs through a single shared link.

The paper (and :class:`~repro.sim.simulation.Simulation`) idealizes
bandwidth as a *rate cap*: any schedule with ``Σ sᵢfᵢ ≤ B`` executes
each sync instantaneously at its planned instant.  A real mirror
pulls objects through a link of finite capacity: a sync of an object
of size s occupies the link for ``s / capacity`` time units, and
syncs that arrive while the link is busy wait in FIFO order.

:class:`SyncLink` replays a schedule's sync requests through that
queue and reports

* per-sync **lateness** (completion minus planned instant),
* link **utilization** (busy fraction), and
* the **completion-time schedule** — which can be fed back into the
  freshness monitor to measure how much queueing delay actually costs
  (the answer, verified in tests: nothing noticeable while
  utilization stays below 1, which is exactly what the planner's
  budget constraint guarantees — and catastrophe beyond it).

This closes the loop on the paper's modeling assumption: the rate-cap
abstraction is *valid* precisely because the optimal schedules it
produces keep the physical link stable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

__all__ = ["LinkReplayResult", "SyncLink"]


@dataclass(frozen=True)
class LinkReplayResult:
    """Outcome of replaying sync requests through the link.

    Attributes:
        request_times: Planned sync instants (input, sorted).
        start_times: When each transfer actually started.
        completion_times: When each transfer finished.
        elements: Element index per sync.
        utilization: Fraction of the horizon the link was busy.
        mean_lateness: Mean of (completion − planned).
        max_lateness: Worst-case lateness.
        backlog_at_end: Transfers still queued/in flight at the
            horizon (they are completed past it and included above).
    """

    request_times: np.ndarray
    start_times: np.ndarray
    completion_times: np.ndarray
    elements: np.ndarray
    utilization: float
    mean_lateness: float
    max_lateness: float
    backlog_at_end: int


class SyncLink:
    """A FIFO single-server link with finite transfer capacity.

    Args:
        capacity: Bandwidth units the link moves per clock unit, > 0.
            A schedule consuming ``Σsᵢfᵢ = B`` bandwidth per period of
            length T needs ``capacity ≥ B/T`` for stability.
    """

    def __init__(self, capacity: float) -> None:
        if capacity <= 0.0:
            raise SimulationError(
                f"capacity must be > 0, got {capacity}")
        self._capacity = capacity

    @property
    def capacity(self) -> float:
        """Bandwidth units per clock unit."""
        return self._capacity

    def replay(self, request_times: np.ndarray, elements: np.ndarray,
               sizes: np.ndarray, *, horizon: float) -> LinkReplayResult:
        """Run sync requests through the queue.

        Args:
            request_times: Planned sync instants, nondecreasing.
            elements: Element index per request.
            sizes: Object size per *element* (indexed by element).
            horizon: End of the observation window (> 0); lateness and
                utilization are reported against it.

        Returns:
            The :class:`LinkReplayResult`.

        Raises:
            SimulationError: On malformed inputs.
        """
        request_times = np.asarray(request_times, dtype=float)
        elements = np.asarray(elements, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=float)
        if request_times.shape != elements.shape:
            raise SimulationError(
                "request_times and elements must have equal length")
        if request_times.size and (np.diff(request_times) < 0.0).any():
            raise SimulationError("request times must be nondecreasing")
        if horizon <= 0.0:
            raise SimulationError(f"horizon must be > 0, got {horizon}")
        if elements.size and (elements.min() < 0
                              or elements.max() >= sizes.shape[0]):
            raise SimulationError("element index outside sizes array")
        if (sizes <= 0.0).any():
            raise SimulationError("sizes must be strictly positive")

        durations = sizes[elements] / self._capacity
        start_times = np.empty_like(request_times)
        completion_times = np.empty_like(request_times)
        # FIFO single server: each transfer starts at
        # max(arrival, previous completion) — a simple O(n) scan.
        free_at = 0.0
        busy_time = 0.0
        for index in range(request_times.shape[0]):
            start = max(request_times[index], free_at)
            start_times[index] = start
            free_at = start + durations[index]
            completion_times[index] = free_at
            busy_time += durations[index]

        lateness = completion_times - request_times
        backlog = int((completion_times > horizon).sum())
        return LinkReplayResult(
            request_times=request_times,
            start_times=start_times,
            completion_times=completion_times,
            elements=elements,
            utilization=min(busy_time / horizon, 1.0),
            mean_lateness=float(lateness.mean()) if lateness.size else 0.0,
            max_lateness=float(lateness.max()) if lateness.size else 0.0,
            backlog_at_end=backlog,
        )

    def required_capacity(self, frequencies: np.ndarray,
                          sizes: np.ndarray, *,
                          period_length: float = 1.0) -> float:
        """Minimum stable capacity for a schedule.

        Args:
            frequencies: Syncs per period per element.
            sizes: Object sizes.
            period_length: Clock length of a period.

        Returns:
            ``Σsᵢfᵢ / T`` — offered load in bandwidth units per clock
            unit; the link is stable iff its capacity exceeds this.
        """
        frequencies = np.asarray(frequencies, dtype=float)
        sizes = np.asarray(sizes, dtype=float)
        if frequencies.shape != sizes.shape:
            raise SimulationError(
                "frequencies and sizes must have equal length")
        return float(sizes @ frequencies) / period_length
