"""Intra-partition bandwidth allocation: FFA vs FBA (paper §5.3).

The Transformed Problem yields one sync frequency fₖ per partition.
Spreading it over the partition's members can be done two ways:

* **Fixed Frequency Allocation (FFA)** — every member is synced at
  the same frequency fₖ.  Correct when all objects have the same
  size; with variable sizes it hands large objects a disproportionate
  bandwidth share.
* **Fixed Bandwidth Allocation (FBA)** — every member receives the
  same *bandwidth* bₖ = s̄ₖ·fₖ, so member j is synced at bₖ/sⱼ:
  smaller objects get more refreshes for the same cost.  The paper
  shows FBA always beats FFA under variable sizes (Figure 11).

Both policies consume exactly the partition's bandwidth share
``nₖ·s̄ₖ·fₖ``, so the budget is preserved.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.core.partitioning import PartitionAssignment
from repro.core.representatives import RepresentativeProblem
from repro.errors import ValidationError
from repro.workloads.catalog import Catalog

__all__ = ["AllocationPolicy", "expand_partition_frequencies"]


class AllocationPolicy(str, Enum):
    """How a partition's bandwidth is divided among its members."""

    FIXED_FREQUENCY = "ffa"
    FIXED_BANDWIDTH = "fba"

    @classmethod
    def coerce(cls, value: "AllocationPolicy | str") -> "AllocationPolicy":
        """Accept either a member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            options = ", ".join(member.value for member in cls)
            raise ValidationError(
                f"unknown allocation policy {value!r}; expected one of: "
                f"{options}") from exc


def expand_partition_frequencies(catalog: Catalog,
                                 problem: RepresentativeProblem,
                                 partition_frequencies: np.ndarray,
                                 policy: AllocationPolicy | str,
                                 ) -> np.ndarray:
    """Turn per-partition frequencies into per-element frequencies.

    Args:
        catalog: Workload description (supplies member sizes).
        problem: The representatives the frequencies were solved for.
        partition_frequencies: fₖ per partition in syncs per period,
            shape ``(k,)``.
        policy: FFA or FBA.

    Returns:
        Per-element sync frequencies, shape ``(N,)``.  Total bandwidth
        ``Σ sⱼ·fⱼ`` equals ``Σₖ nₖ·s̄ₖ·fₖ`` under either policy.
    """
    policy = AllocationPolicy.coerce(policy)
    partition_frequencies = np.asarray(partition_frequencies, dtype=float)
    assignment: PartitionAssignment = problem.assignment
    if partition_frequencies.shape != (problem.n_partitions,):
        raise ValidationError(
            f"expected {problem.n_partitions} partition frequencies, got "
            f"shape {partition_frequencies.shape}")
    if (partition_frequencies < 0.0).any():
        raise ValidationError("partition frequencies must be nonnegative")
    labels = assignment.labels
    if policy is AllocationPolicy.FIXED_FREQUENCY:
        return partition_frequencies[labels].copy()
    # FBA: member j of partition k gets bandwidth s̄ₖ·fₖ, hence
    # frequency (s̄ₖ·fₖ)/sⱼ.
    member_bandwidth = (problem.mean_sizes * partition_frequencies)[labels]
    return member_bandwidth / catalog.sizes
