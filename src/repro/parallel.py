"""Parallel experiment executor: deterministic fan-out over tasks.

Every sweep, replication harness and chaos arm in the analysis layer
reduces to *map a pure seeded function over a list of specs*.
:func:`parallel_map` is that map.  With ``jobs=1`` (the default) it
runs inline — no pool, no pickling, bit-identical to the serial list
comprehension it replaces.  With ``jobs>1`` it fans the tasks out to
a spawned :class:`~concurrent.futures.ProcessPoolExecutor` and
returns results **in input order**, so callers observe the same
structure either way.

Determinism contract (common random numbers):

* Task functions must derive their randomness from an explicit
  per-task seed — never from shared mutable state.  :func:`seed_rng`
  builds the per-task generator from its own
  :class:`numpy.random.SeedSequence`; ``default_rng(SeedSequence(s))``
  draws the identical stream as ``default_rng(s)``, so results are
  bit-identical whether a task runs in the parent or in a worker.
* Tasks and their return values must be picklable for ``jobs>1``
  (module-level functions, ``functools.partial`` over them, frozen
  dataclasses).

Telemetry (when enabled, in the parent): every call opens a span
(``label``), bumps ``parallel.tasks`` by the task count, sets
``parallel.jobs`` to the effective worker count, and records each
task's in-worker wall time into the ``parallel.task_seconds``
histogram, in seconds.

Worker telemetry is **captured, not lost**: when the parent has
telemetry on, each worker task runs inside a fresh
:func:`repro.obs.registry.telemetry` registry that is pickled back
with the result and folded into the parent through
:meth:`~repro.obs.registry.MetricsRegistry.merge` — in input order,
tagged ``worker=<task index>`` — so a ``--jobs N`` run reports the
same counter totals as the serial run, bit-for-bit.  The ``jobs=1``
inline path records straight into the parent registry, unchanged.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from multiprocessing import get_context
from typing import Callable, Iterable, List, Tuple, TypeVar

import numpy as np

from repro.errors import ValidationError
from repro.obs import registry as obs

__all__ = ["parallel_map", "resolve_jobs", "seed_rng"]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value to a worker count.

    Args:
        jobs: Requested workers; ``None`` or ``0`` mean "all cores".

    Returns:
        A worker count >= 1.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValidationError(f"jobs must be >= 0, got {jobs}")
    return int(jobs)


def seed_rng(seed: int) -> np.random.Generator:
    """A per-task generator spawned from its own seed sequence.

    ``default_rng(SeedSequence(seed))`` draws the identical stream as
    ``default_rng(seed)``, so a task seeded this way is bit-identical
    to the serial code it replaces while still giving every worker an
    independently-spawned sequence.
    """
    return np.random.default_rng(np.random.SeedSequence(seed))


def _timed(fn: Callable[[ItemT], ResultT], item: ItemT
           ) -> Tuple[ResultT, float, None]:
    """Run one task and measure its wall time, in seconds."""
    started = time.perf_counter()
    value = fn(item)
    return value, time.perf_counter() - started, None


def _timed_captured(fn: Callable[[ItemT], ResultT], capture: bool,
                    item: ItemT
                    ) -> Tuple[ResultT, float, "obs.MetricsRegistry | None"]:
    """Worker-side task wrapper: time the task and, when the parent
    had telemetry on, capture the worker's registry to ship back.

    Spawned workers re-derive their telemetry gate from the
    environment, which loses programmatic ``enable_telemetry()``
    state and — before the merge existed — silently discarded
    whatever a worker recorded.  Running the task inside
    :func:`repro.obs.registry.telemetry` gives it a fresh registry
    this function can return for the parent to fold in.
    """
    if not capture:
        return _timed(fn, item)
    with obs.telemetry() as worker_registry:
        value, seconds, _ = _timed(fn, item)
    return value, seconds, worker_registry


def parallel_map(fn: Callable[[ItemT], ResultT],
                 items: Iterable[ItemT], *, jobs: int = 1,
                 label: str = "parallel.map") -> List[ResultT]:
    """Order-preserving map over ``items``, optionally in processes.

    Args:
        fn: Pure task function; picklable when ``jobs != 1``.
        items: Task specs, consumed eagerly.
        jobs: Worker processes; 1 (default) runs inline and is
            bit-identical to ``[fn(item) for item in items]``; 0
            means "all cores".
        label: Span name for the telemetry tape.

    Returns:
        Task results, in input order.
    """
    specs = list(items)
    workers = min(resolve_jobs(jobs), max(len(specs), 1))
    capture = obs.telemetry_enabled()
    with obs.span(label):
        if workers == 1:
            triples = [_timed(fn, item) for item in specs]
        else:
            with ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=get_context("spawn")) as pool:
                triples = list(pool.map(
                    partial(_timed_captured, fn, capture), specs))
    if capture:
        parent = obs.get_registry()
        for index, (_, _, worker_registry) in enumerate(triples):
            if worker_registry is not None:
                parent.merge(worker_registry, worker=index)
    if obs.telemetry_enabled():
        obs.counter_add("parallel.tasks", len(triples))
        obs.gauge_set("parallel.jobs", workers)
        for _, seconds, _ in triples:
            obs.observe("parallel.task_seconds", seconds)
    return [value for value, _, _ in triples]
