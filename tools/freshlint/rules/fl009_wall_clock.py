"""FL009 — no wall-clock reads in solver/simulator paths.

The solver and the simulator run on *simulated* time: every timestamp
they handle is either an event time from the generators or a duration
measured for telemetry.  ``time.time()`` (and argless
``datetime.now()``/``today()``) smuggles the host's wall clock into
that world — it jumps under NTP adjustments, breaks replay
determinism, and silently couples test outcomes to the machine's
clock.  Durations belong to ``time.perf_counter()`` /
``time.monotonic()`` (what :mod:`repro.obs` spans use); calendar
timestamps, if ever needed, must be injected by the caller.
"""

from __future__ import annotations

import ast
from typing import Iterator

from freshlint.engine import ModuleContext, Violation
from freshlint.rules.base import Rule

__all__ = ["WallClockRead"]

#: Always banned in clock paths, however it is called.
_BANNED = {
    "time.time": "time.time()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}
#: Banned only when called with no arguments (a tz-aware
#: ``now(timezone.utc)`` is at least explicit about being a wall
#: clock, so it is left to review).
_BANNED_ARGLESS = {
    "datetime.datetime.now": "datetime.now()",
}


class WallClockRead(Rule):
    """Flag wall-clock reads on clock-disciplined paths."""

    code = "FL009"
    name = "no-wall-clock"
    summary = "no time.time()/argless datetime.now() in solver/sim code"

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        if not context.is_clock_path or context.is_test:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            target = context.resolve_call_target(node.func)
            if target is None:
                continue
            spelled = _BANNED.get(target)
            if spelled is None and not node.args and not node.keywords:
                spelled = _BANNED_ARGLESS.get(target)
            if spelled is not None:
                yield self.violation(
                    context, node,
                    f"{spelled} reads the wall clock; use "
                    "time.perf_counter()/time.monotonic() for "
                    "durations or take the timestamp as a parameter")
