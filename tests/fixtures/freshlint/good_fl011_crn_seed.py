"""FL011 fixture: every RNG derives from SeedSequence / seed_rng."""

import numpy as np

from repro.parallel import seed_rng


def make_rng(seed):
    return np.random.default_rng(np.random.SeedSequence(seed))


def make_blessed(seed):
    return seed_rng(seed)


def spawn_children(seed, n):
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


def child_of(rng: np.random.Generator):
    return rng.spawn(1)[0]


def pass_through(rng: np.random.Generator):
    # default_rng(Generator) returns the generator unchanged.
    return np.random.default_rng(rng)
