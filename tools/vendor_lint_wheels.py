"""Vendor the pinned lint toolchain as wheels for hermetic CI.

The lint job normally installs ``.[lint]`` from PyPI under
``constraints/lint.txt``.  That pin makes the *versions* reproducible
but still leaves the job exposed to index outages and yanked
releases.  Running this script on a networked machine downloads the
pinned wheels (and their transitive closure) into ``vendor/wheels/``;
once that directory is committed, CI installs with ``--no-index
--find-links vendor/wheels`` and never touches the network.

The vendor directory is optional by design — the CI step falls back
to the constrained PyPI install when it is absent, so the repository
works both before and after the wheels are committed (and the wheel
payload can be kept out of size-sensitive forks).

Usage::

    python tools/vendor_lint_wheels.py [--dest vendor/wheels]

Stdlib-only; shells out to ``pip download``.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
CONSTRAINTS = REPO_ROOT / "constraints" / "lint.txt"


def pinned_requirements() -> list[str]:
    """The ``name==version`` pins from constraints/lint.txt."""
    pins = []
    for line in CONSTRAINTS.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            pins.append(line)
    if not pins:
        raise SystemExit(f"no pins found in {CONSTRAINTS}")
    return pins


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dest", type=Path,
        default=REPO_ROOT / "vendor" / "wheels",
        help="directory to download wheels into")
    parser.add_argument(
        "--python-version", default="3.12",
        help="target interpreter version for wheel selection "
             "(match the CI lint job)")
    args = parser.parse_args(argv)

    pins = pinned_requirements()
    args.dest.mkdir(parents=True, exist_ok=True)
    command = [
        sys.executable, "-m", "pip", "download",
        "--dest", str(args.dest),
        "--only-binary", ":all:",
        "--python-version", args.python_version,
        *pins,
    ]
    print("$", " ".join(command))
    result = subprocess.run(command)
    if result.returncode != 0:
        return result.returncode
    wheels = sorted(p.name for p in args.dest.glob("*.whl"))
    print(f"vendored {len(wheels)} wheels into {args.dest}:")
    for name in wheels:
        print(f"  {name}")
    print("commit the directory and CI's lint job will install "
          "from it with --no-index.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
