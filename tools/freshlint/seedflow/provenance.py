"""Per-function RNG dataflow: the provenance lattice and walker.

``analyze_function`` walks one function's statements in source order
and tracks, for every local name (and ``self.attr`` store), where its
value *came from* with respect to the CRN seeding discipline:

============  ======================================================
Provenance    Meaning
============  ======================================================
SEED          ``SeedSequence``-derived seed material (``spawn``,
              ``generate_state``, a ``SeedSequence``-annotated param)
CRN_RNG       a Generator whose seed provably flows from SEED
              (``default_rng(ss)``, ``seed_rng(...)``, ``.spawn()``)
RNG           a Generator of unknown pedigree (an ``rng``-named or
              ``Generator``-annotated parameter — the caller vouches)
RAW_RNG       a Generator created here from non-SEED material
POOL          a process-pool object (executor/Pool)
CLOSURE_RNG   a ``functools.partial`` that captured an RNG
UNKNOWN       everything else
============  ======================================================

The walk is deliberately flow-*insensitive across* branches (later
bindings win, joins degrade to UNKNOWN) but records the facts the
project rules need:

* RNG **creation sites** whose seed provenance is not SEED (FL011);
* **draws** — ``DRAW_METHODS`` calls on RNG-ish receivers — with a
  flag for conditional execution (``if``/``while``/``try``-handler/
  ternary/short-circuit depth > 0; plain ``for``/``with`` bodies do
  *not* count — a loop repeats draws, it does not make their order
  input-dependent) (FL013);
* **boundary hazards** — RNG-kind or CLOSURE_RNG values handed to
  ``parallel_map`` or a pool ``submit``/``map``-family method (FL012);
* resolved project **callees** and unresolved attribute-call names,
  for the transitive draw closure.

Callee return provenance is resolved through a memoized recursion
over the :class:`~freshlint.seedflow.project.Project`; cycles cut to
an empty summary (returns UNKNOWN), which only loses precision.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from freshlint.seedflow.project import FunctionInfo, Project

__all__ = [
    "BoundaryCall",
    "DRAW_METHODS",
    "Draw",
    "FunctionSummary",
    "Provenance",
    "RNG_KINDS",
    "RngCreation",
    "analyze_function",
]


class Provenance(Enum):
    """Where a value came from, seen through the CRN discipline."""

    UNKNOWN = "unknown"
    SEED = "seed"
    CRN_RNG = "crn-rng"
    RNG = "rng"
    RAW_RNG = "raw-rng"
    POOL = "pool"
    CLOSURE_RNG = "closure-rng"


#: The provenances that denote a live Generator object.
RNG_KINDS = frozenset({
    Provenance.CRN_RNG, Provenance.RNG, Provenance.RAW_RNG,
})

#: ``Generator`` methods that consume the stream.  Gated on an
#: RNG-ish receiver, so generic names (``choice``, ``f``) stay safe.
DRAW_METHODS = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "gumbel",
    "hypergeometric", "integers", "laplace", "logistic", "lognormal",
    "multinomial", "multivariate_hypergeometric",
    "multivariate_normal", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "normal", "pareto",
    "permutation", "permuted", "poisson", "power", "random",
    "rayleigh", "shuffle", "standard_cauchy", "standard_exponential",
    "standard_gamma", "standard_normal", "standard_t", "triangular",
    "uniform", "vonmises", "wald", "weibull", "zipf",
})

_SEED_APIS = frozenset({"numpy.random.SeedSequence"})
_RNG_FACTORIES = frozenset({
    "numpy.random.default_rng", "numpy.random.Generator",
})
_LEGACY_APIS = frozenset({"numpy.random.RandomState"})
_BITGENS = frozenset({
    "numpy.random.MT19937", "numpy.random.PCG64",
    "numpy.random.PCG64DXSM", "numpy.random.Philox",
    "numpy.random.SFC64",
})
_POOL_APIS = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
})
_PARTIAL_APIS = frozenset({"functools.partial"})
_POOL_METHODS = frozenset({
    "apply", "apply_async", "imap", "imap_unordered", "map",
    "map_async", "starmap", "starmap_async", "submit",
})

_RNG_NAME_RE = re.compile(r"(?:^|_)rngs?$|^gen$|^generator$")
_SEED_NAME_RE = re.compile(r"^seed_seq|seed_sequence|^ss$")
_POOL_NAME_RE = re.compile(r"(?:^|_)(?:pool|executor)s?$")


@dataclass(frozen=True)
class RngCreation:
    """A Generator built from material that is not SEED-derived."""

    api: str
    line: int
    col: int
    seed_provenance: Provenance
    legacy: bool = False


@dataclass(frozen=True)
class Draw:
    """One stream-consuming call on an RNG-ish receiver."""

    method: str
    line: int
    col: int
    conditional: bool


@dataclass(frozen=True)
class BoundaryCall:
    """An RNG-carrying value crossing a process boundary."""

    api: str
    line: int
    col: int
    detail: str


@dataclass
class FunctionSummary:
    """Everything the project rules need to know about one function."""

    qualname: str
    creations: list[RngCreation] = field(default_factory=list)
    draws: list[Draw] = field(default_factory=list)
    boundary_hazards: list[BoundaryCall] = field(default_factory=list)
    calls: list[str] = field(default_factory=list)
    method_calls: set[str] = field(default_factory=set)
    returns: Provenance = Provenance.UNKNOWN


_IN_PROGRESS = object()


def analyze_function(info: "FunctionInfo", project: "Project",
                     memo: dict[str, object] | None = None
                     ) -> FunctionSummary:
    """Summarize one project function (memoized, cycle-safe)."""
    if memo is None:
        memo = {}
    cached = memo.get(info.qualname)
    if cached is _IN_PROGRESS:
        # Recursion cycle: cut with an empty summary (UNKNOWN return).
        return FunctionSummary(qualname=info.qualname)
    if isinstance(cached, FunctionSummary):
        return cached
    memo[info.qualname] = _IN_PROGRESS
    summary = _Walker(info, project, memo).run()
    memo[info.qualname] = summary
    return summary


def _join(a: Provenance, b: Provenance) -> Provenance:
    if a is b:
        return a
    if a in RNG_KINDS and b in RNG_KINDS:
        return Provenance.RNG
    return Provenance.UNKNOWN


_GENERATOR_ANN_RE = re.compile(
    r"^(?:np\.random\.|numpy\.random\.)?Generator$")
_SEEDSEQ_ANN_RE = re.compile(
    r"^(?:np\.random\.|numpy\.random\.)?SeedSequence$")


def _param_provenance(arg: ast.arg) -> Provenance:
    if arg.annotation is not None:
        try:
            text = ast.unparse(arg.annotation).strip("\"'")
        except Exception:  # pragma: no cover - malformed annotation
            text = ""
        # Only an *exact* Generator/SeedSequence annotation vouches;
        # a union like ``int | Generator`` has a non-CRN branch.
        if _SEEDSEQ_ANN_RE.match(text):
            return Provenance.SEED
        if _GENERATOR_ANN_RE.match(text):
            return Provenance.RNG
    if _RNG_NAME_RE.search(arg.arg):
        return Provenance.RNG
    if _SEED_NAME_RE.search(arg.arg):
        return Provenance.SEED
    return Provenance.UNKNOWN


def _receiver_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


class _Walker:
    """Statement-order walk of one function body."""

    def __init__(self, info: "FunctionInfo", project: "Project",
                 memo: dict[str, object]) -> None:
        self.info = info
        self.project = project
        self.memo = memo
        self.context = info.context
        self.summary = FunctionSummary(qualname=info.qualname)
        self.env: dict[str, Provenance] = {}
        self.self_env: dict[str, Provenance] = {}
        self.returns: list[Provenance] = []

    def run(self) -> FunctionSummary:
        self._bind_params()
        self._walk(self.info.node.body, 0)
        result = Provenance.UNKNOWN
        if self.returns:
            result = self.returns[0]
            for prov in self.returns[1:]:
                result = _join(result, prov)
        self.summary.returns = result
        return self.summary

    def _bind_params(self) -> None:
        args = self.info.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            self.env[arg.arg] = _param_provenance(arg)

    # -- statements ---------------------------------------------------

    def _walk(self, stmts: list[ast.stmt], depth: int) -> None:
        for stmt in stmts:
            self._stmt(stmt, depth)

    def _stmt(self, stmt: ast.stmt, depth: int) -> None:
        if isinstance(stmt, ast.Assign):
            self._stmt_assign(stmt, depth)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target,
                             self._eval(stmt.value, depth))
        elif isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value, depth)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, depth)
        elif isinstance(stmt, ast.Return):
            prov = Provenance.UNKNOWN
            if stmt.value is not None:
                prov = self._eval(stmt.value, depth)
            self.returns.append(prov)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, depth)
            self._walk(stmt.body, depth + 1)
            self._walk(stmt.orelse, depth + 1)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_prov = self._eval(stmt.iter, depth)
            element = iter_prov if (iter_prov is Provenance.SEED
                                    or iter_prov in RNG_KINDS) \
                else Provenance.UNKNOWN
            self._assign(stmt.target, element)
            self._walk(stmt.body, depth)
            self._walk(stmt.orelse, depth + 1)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, depth)
            self._walk(stmt.body, depth + 1)
            self._walk(stmt.orelse, depth + 1)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                prov = self._eval(item.context_expr, depth)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, prov)
            self._walk(stmt.body, depth)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body, depth)
            for handler in stmt.handlers:
                self._walk(handler.body, depth + 1)
            self._walk(stmt.orelse, depth + 1)
            self._walk(stmt.finalbody, depth)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested scopes are indexed separately (or not at all)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, depth)
            if stmt.cause is not None:
                self._eval(stmt.cause, depth)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, depth)
            if stmt.msg is not None:
                self._eval(stmt.msg, depth)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        else:
            # match statements and friends: evaluate expressions,
            # treat nested statement bodies as conditional.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, depth)
                elif isinstance(child, ast.stmt):
                    self._stmt(child, depth + 1)
                else:
                    for sub in ast.walk(child):
                        if isinstance(sub, ast.stmt):
                            self._stmt(sub, depth + 1)
                            break

    def _stmt_assign(self, stmt: ast.Assign, depth: int) -> None:
        value = stmt.value
        for target in stmt.targets:
            if isinstance(target, (ast.Tuple, ast.List)) and \
                    isinstance(value, (ast.Tuple, ast.List)) and \
                    len(target.elts) == len(value.elts):
                for sub_target, sub_value in zip(target.elts,
                                                 value.elts):
                    self._assign(sub_target,
                                 self._eval(sub_value, depth))
                return
        prov = self._eval(value, depth)
        for target in stmt.targets:
            self._assign(target, prov)

    def _assign(self, target: ast.expr, prov: Provenance) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = prov
        elif isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self":
            self.self_env[target.attr] = prov
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, prov)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, prov)

    # -- expressions --------------------------------------------------

    def _eval(self, node: ast.expr, depth: int) -> Provenance:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, Provenance.UNKNOWN)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and \
                    node.value.id == "self":
                return self.self_env.get(node.attr,
                                         Provenance.UNKNOWN)
            self._eval(node.value, depth)
            return Provenance.UNKNOWN
        if isinstance(node, ast.Call):
            return self._eval_call(node, depth)
        if isinstance(node, ast.Subscript):
            prov = self._eval(node.value, depth)
            self._eval(node.slice, depth)
            return prov  # a SEED/RNG container element keeps its kind
        if isinstance(node, ast.IfExp):
            self._eval(node.test, depth)
            return _join(self._eval(node.body, depth + 1),
                         self._eval(node.orelse, depth + 1))
        if isinstance(node, ast.BoolOp):
            result = self._eval(node.values[0], depth)
            for value in node.values[1:]:
                result = _join(result, self._eval(value, depth + 1))
            return result
        if isinstance(node, ast.NamedExpr):
            prov = self._eval(node.value, depth)
            self._assign(node.target, prov)
            return prov
        if isinstance(node, ast.Starred):
            return self._eval(node.value, depth)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            result: Provenance | None = None
            for element in node.elts:
                prov = self._eval(element, depth)
                result = prov if result is None else _join(result,
                                                           prov)
            return result or Provenance.UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp, ast.DictComp)):
            guarded = depth
            for comp in node.generators:
                iter_prov = self._eval(comp.iter, depth)
                element = iter_prov if (iter_prov is Provenance.SEED
                                        or iter_prov in RNG_KINDS) \
                    else Provenance.UNKNOWN
                self._assign(comp.target, element)
                for test in comp.ifs:
                    self._eval(test, depth)
                if comp.ifs:
                    guarded = depth + 1
            if isinstance(node, ast.DictComp):
                self._eval(node.key, guarded)
                self._eval(node.value, guarded)
            else:
                self._eval(node.elt, guarded)
            return Provenance.UNKNOWN
        if isinstance(node, ast.Lambda):
            return Provenance.UNKNOWN  # deferred body: not executed here
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, depth)
        return Provenance.UNKNOWN

    def _eval_call(self, call: ast.Call, depth: int) -> Provenance:
        func = call.func
        method: str | None = None
        recv_prov: Provenance | None = None
        recv_name = ""
        if isinstance(func, ast.Attribute):
            method = func.attr
            recv_prov = self._eval(func.value, depth)
            recv_name = _receiver_name(func.value)
        elif not isinstance(func, ast.Name):
            self._eval(func, depth)

        arg_provs = [self._eval(arg, depth) for arg in call.args]
        kw_provs = {kw.arg: self._eval(kw.value, depth)
                    for kw in call.keywords}

        dotted = self.context.resolve_call_target(func)
        tail = dotted.rsplit(".", 1)[-1] if dotted else (method or "")

        if dotted in _SEED_APIS:
            return Provenance.SEED
        if dotted in _BITGENS:
            seed = self._seed_argument(arg_provs, kw_provs)
            if seed is Provenance.SEED:
                return Provenance.SEED  # blessed bit-generator material
            self.summary.creations.append(RngCreation(
                api=tail, line=call.lineno, col=call.col_offset,
                seed_provenance=seed or Provenance.UNKNOWN))
            return Provenance.UNKNOWN
        if dotted in _RNG_FACTORIES:
            seed = self._seed_argument(arg_provs, kw_provs)
            if seed is None:
                return Provenance.RAW_RNG  # argless: FL001's domain
            if seed is Provenance.SEED:
                return Provenance.CRN_RNG
            if seed in RNG_KINDS:
                return seed  # default_rng(rng) passes through
            self.summary.creations.append(RngCreation(
                api=tail, line=call.lineno, col=call.col_offset,
                seed_provenance=seed))
            return Provenance.RAW_RNG
        if dotted in _LEGACY_APIS:
            self.summary.creations.append(RngCreation(
                api=tail, line=call.lineno, col=call.col_offset,
                seed_provenance=self._seed_argument(arg_provs, kw_provs)
                or Provenance.UNKNOWN, legacy=True))
            return Provenance.RAW_RNG
        if dotted in _PARTIAL_APIS:
            captured = list(arg_provs[1:]) + list(kw_provs.values())
            if any(prov in RNG_KINDS or prov is Provenance.CLOSURE_RNG
                   for prov in captured):
                return Provenance.CLOSURE_RNG
            return Provenance.UNKNOWN
        if dotted in _POOL_APIS:
            return Provenance.POOL
        if tail == "seed_rng":
            return Provenance.CRN_RNG  # the blessed CRN constructor
        if tail == "parallel_map":
            self._check_boundary("parallel_map", call, arg_provs,
                                 kw_provs)
            return Provenance.UNKNOWN

        if dotted is not None:
            info = self.project.resolve_call(
                self.context, call, class_name=self.info.class_name)
            if info is not None:
                self.summary.calls.append(info.qualname)
                if info.qualname == self.info.qualname:
                    return Provenance.UNKNOWN  # direct self-recursion
                callee = analyze_function(info, self.project,
                                          self.memo)
                return callee.returns

        if method is not None:
            rngish = (recv_prov in RNG_KINDS
                      or bool(_RNG_NAME_RE.search(recv_name)))
            if method in DRAW_METHODS and rngish:
                self.summary.draws.append(Draw(
                    method=method, line=call.lineno,
                    col=call.col_offset, conditional=depth > 0))
                return Provenance.UNKNOWN
            if method == "spawn":
                if recv_prov is Provenance.SEED:
                    return Provenance.SEED
                if rngish:
                    return Provenance.CRN_RNG
            if method == "generate_state" and \
                    recv_prov is Provenance.SEED:
                return Provenance.SEED
            if method in _POOL_METHODS and \
                    (recv_prov is Provenance.POOL
                     or _POOL_NAME_RE.search(recv_name)):
                self._check_boundary(f"{recv_name}.{method}", call,
                                     arg_provs, kw_provs)
                return Provenance.UNKNOWN
            self.summary.method_calls.add(method)
        return Provenance.UNKNOWN

    @staticmethod
    def _seed_argument(arg_provs: list[Provenance],
                       kw_provs: dict[str | None, Provenance]
                       ) -> Provenance | None:
        """Provenance of the seed argument, or None when absent."""
        if arg_provs:
            return arg_provs[0]
        if "seed" in kw_provs:
            return kw_provs["seed"]
        return None

    def _check_boundary(self, api: str, call: ast.Call,
                        arg_provs: list[Provenance],
                        kw_provs: dict[str | None, Provenance]
                        ) -> None:
        """Record every RNG-carrying argument crossing ``api``."""
        hazards = {Provenance.CLOSURE_RNG} | RNG_KINDS
        labelled = [(f"argument {i + 1}", prov)
                    for i, prov in enumerate(arg_provs)]
        labelled += [(f"keyword {name}", prov)
                     for name, prov in kw_provs.items()]
        for label, prov in labelled:
            if prov in hazards:
                self.summary.boundary_hazards.append(BoundaryCall(
                    api=api, line=call.lineno, col=call.col_offset,
                    detail=f"{label} carries {prov.value}"))
