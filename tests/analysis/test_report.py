"""Tests for the reproduction report generator."""

from __future__ import annotations

import numpy as np

from repro.analysis.report import generate_report, write_report


class TestGenerateReport:
    def test_quick_report_all_sections_pass(self):
        sections = generate_report(quick=True, seed=0)
        assert len(sections) >= 8
        for section in sections:
            assert section.passed, f"{section.title} failed"
            assert section.seconds >= 0.0
            assert section.body

    def test_sections_cover_core_experiments(self):
        sections = generate_report(quick=True, seed=0)
        titles = " | ".join(section.title for section in sections)
        for token in ("Table 1", "Figure 3", "Figure 5", "Figure 7",
                      "Figure 8", "Figure 10", "Figure 11"):
            assert token in titles

    def test_different_seed_still_passes(self):
        """The shape claims must hold for any workload draw, not just
        the default seed."""
        sections = generate_report(quick=True, seed=42)
        assert all(section.passed for section in sections)


class TestWriteReport:
    def test_writes_markdown(self, tmp_path):
        path = tmp_path / "REPORT.md"
        sections = write_report(path, quick=True, seed=0)
        text = path.read_text()
        assert text.startswith("# Reproduction report")
        assert f"{len(sections)}/{len(sections)} sections PASS" in text
        assert "PASS" in text
        assert "```" in text

    def test_contains_table1_numbers(self, tmp_path):
        path = tmp_path / "REPORT.md"
        write_report(path, quick=True, seed=0)
        text = path.read_text()
        assert "1.15" in text
        assert "1.67" in text
