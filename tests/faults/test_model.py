"""Unit tests for the fault models and their composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.faults.model import (FaultPlan, GilbertElliottFaultModel,
                                IIDFaultModel, LatencyFaultModel,
                                OutageWindow, PollOutcome)


class TestPollOutcome:
    def test_failure_and_retryable_flags(self):
        assert not PollOutcome.OK.is_failure
        assert PollOutcome.TIMEOUT.is_failure
        assert PollOutcome.ERROR.is_failure
        assert PollOutcome.UNREACHABLE.is_failure
        assert PollOutcome.TIMEOUT.is_retryable
        assert PollOutcome.ERROR.is_retryable
        # Outages end on their own schedule, not the retry policy's.
        assert not PollOutcome.UNREACHABLE.is_retryable
        assert not PollOutcome.OK.is_retryable


class TestIIDFaultModel:
    def test_rejects_bad_probability_and_ok_failure(self):
        with pytest.raises(ValidationError):
            IIDFaultModel(-0.1)
        with pytest.raises(ValidationError):
            IIDFaultModel(1.5)
        with pytest.raises(ValidationError):
            IIDFaultModel(0.2, failure=PollOutcome.OK)

    def test_failure_rate_matches_probability(self):
        model = IIDFaultModel(0.3)
        rng = np.random.default_rng(0)
        outcomes = [model.outcome(0, 0.0, rng) for _ in range(4000)]
        rate = np.mean([o.is_failure for o in outcomes])
        assert rate == pytest.approx(0.3, abs=0.03)

    def test_edge_probabilities_are_deterministic(self):
        rng = np.random.default_rng(0)
        always = IIDFaultModel(1.0, failure=PollOutcome.TIMEOUT)
        never = IIDFaultModel(0.0)
        assert all(always.outcome(0, 0.0, rng) is PollOutcome.TIMEOUT
                   for _ in range(50))
        assert all(never.outcome(0, 0.0, rng) is PollOutcome.OK
                   for _ in range(50))


class TestGilbertElliott:
    def test_rejects_out_of_range_parameters(self):
        with pytest.raises(ValidationError):
            GilbertElliottFaultModel(1.5, 0.5)
        with pytest.raises(ValidationError):
            GilbertElliottFaultModel(0.5, 0.5, loss_bad=2.0)

    def test_loss_is_bursty_not_iid(self):
        """Failures cluster: consecutive-failure runs are much longer
        than an i.i.d. channel of the same marginal rate produces."""
        model = GilbertElliottFaultModel(0.05, 0.1, loss_good=0.0,
                                         loss_bad=1.0)
        rng = np.random.default_rng(1)
        fails = np.array([model.outcome(0, 0.0, rng).is_failure
                          for _ in range(6000)])
        rate = fails.mean()
        assert 0.05 < rate < 0.6
        # Mean failure-run length ~ 1/p_bad_to_good = 10; an i.i.d.
        # channel at the same rate would give ~1/(1-rate) < 2.5.
        runs, current = [], 0
        for f in fails:
            if f:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert np.mean(runs) > 3.0

    def test_per_element_chains_are_independent(self):
        model = GilbertElliottFaultModel(0.0, 1.0, loss_good=0.0,
                                         loss_bad=1.0)
        rng = np.random.default_rng(2)
        # p_good_to_bad = 0: every element stays good forever,
        # regardless of how many elements share the model.
        for element in range(5):
            assert model.outcome(element, 0.0, rng) is PollOutcome.OK


class TestLatencyModel:
    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValidationError):
            LatencyFaultModel(0.0, 1.0)
        with pytest.raises(ValidationError):
            LatencyFaultModel(1.0, 0.0)

    def test_timeout_rate_matches_exponential_tail(self):
        model = LatencyFaultModel(1.0, 1.0)
        rng = np.random.default_rng(3)
        outcomes = [model.outcome(0, 0.0, rng) for _ in range(4000)]
        rate = np.mean([o is PollOutcome.TIMEOUT for o in outcomes])
        assert rate == pytest.approx(np.exp(-1.0), abs=0.03)


class TestOutageWindow:
    def test_rejects_empty_window(self):
        with pytest.raises(ValidationError):
            OutageWindow(start=2.0, end=2.0, elements=(0,))

    def test_covers_is_half_open_in_time_and_exact_in_elements(self):
        window = OutageWindow(start=1.0, end=3.0, elements=(2, 5))
        assert window.covers(2, 1.0)
        assert window.covers(5, 2.9)
        assert not window.covers(2, 3.0)
        assert not window.covers(2, 0.5)
        assert not window.covers(3, 2.0)


class TestFaultPlan:
    def test_quiet_plan_is_quiet(self):
        assert FaultPlan.quiet().is_quiet
        assert not FaultPlan.iid(0.2).is_quiet
        outage = OutageWindow(start=0.0, end=1.0, elements=(0,))
        assert not FaultPlan(outages=(outage,)).is_quiet

    def test_outages_win_without_consuming_randomness(self):
        outage = OutageWindow(start=0.0, end=10.0, elements=(0,))
        plan = FaultPlan(models=(IIDFaultModel(0.5),),
                         outages=(outage,))
        rng = np.random.default_rng(4)
        before = rng.bit_generator.state
        assert plan.outcome(0, 5.0, rng) is PollOutcome.UNREACHABLE
        assert rng.bit_generator.state == before

    def test_first_failing_model_wins(self):
        plan = FaultPlan(models=(
            IIDFaultModel(1.0, failure=PollOutcome.TIMEOUT),
            IIDFaultModel(1.0, failure=PollOutcome.ERROR)))
        rng = np.random.default_rng(5)
        assert plan.outcome(0, 0.0, rng) is PollOutcome.TIMEOUT

    def test_same_seed_replays_identical_outcome_sequence(self):
        def draw_tape(seed: int) -> list[str]:
            plan = FaultPlan(models=(
                IIDFaultModel(0.3),
                GilbertElliottFaultModel(0.1, 0.2)))
            rng = np.random.default_rng(seed)
            return [plan.outcome(i % 4, 0.1 * i, rng).value
                    for i in range(300)]

        assert draw_tape(6) == draw_tape(6)
        assert draw_tape(6) != draw_tape(7)
