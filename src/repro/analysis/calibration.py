"""Calibrating the paper's workload models to observed logs.

The paper's experiments are parameterized by a Zipf access skew θ and
a gamma change-rate distribution (mean, σ).  To run those experiments
against *your* mirror you need those parameters from *your* logs.
This module fits them:

* :func:`fit_zipf_theta` — least-squares slope of log-frequency vs
  log-rank, the standard Zipf estimator (the paper cites measured
  values up to 1.6 from exactly this kind of fit).
* :func:`fit_gamma_rates` — method-of-moments gamma fit of a
  change-rate sample (e.g. the output of an estimation phase).
* :func:`calibrate_setup` — assemble a complete
  :class:`~repro.workloads.presets.ExperimentSetup` from an access
  log and estimated rates, ready for `build_catalog` and the whole
  experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.workloads.accesses import AccessSet
from repro.workloads.presets import ExperimentSetup

__all__ = ["GammaFit", "fit_zipf_theta", "fit_gamma_rates",
           "calibrate_setup"]


def fit_zipf_theta(access_counts: np.ndarray, *,
                   min_count: int = 1) -> float:
    """Estimate the Zipf skew θ from access counts.

    Sorts elements by popularity and regresses ``log(count)`` on
    ``log(rank)``; under a Zipf(θ) profile the slope is −θ.

    Args:
        access_counts: Accesses per element (any order).
        min_count: Ranks with fewer observations are excluded (tail
            counts of 0/1 are dominated by sampling noise).

    Returns:
        The fitted θ, clipped below at 0.

    Raises:
        ValidationError: If fewer than 3 ranks survive the cutoff.
    """
    counts = np.asarray(access_counts, dtype=float)
    if counts.ndim != 1:
        raise ValidationError("access_counts must be 1-D")
    if (counts < 0).any():
        raise ValidationError("access counts must be nonnegative")
    ordered = np.sort(counts)[::-1]
    kept = ordered[ordered >= max(min_count, 1)]
    if kept.size < 3:
        raise ValidationError(
            f"need at least 3 ranks with >= {min_count} accesses to "
            f"fit, got {kept.size}")
    ranks = np.arange(1, kept.size + 1, dtype=float)
    log_rank = np.log(ranks)
    log_count = np.log(kept)
    slope = (np.cov(log_rank, log_count, bias=True)[0, 1]
             / np.var(log_rank))
    return float(max(-slope, 0.0))


@dataclass(frozen=True)
class GammaFit:
    """Method-of-moments gamma fit of a rate sample.

    Attributes:
        mean: Sample mean (the gamma mean).
        std_dev: Sample standard deviation (the gamma σ).
        shape: Implied gamma shape ``(mean/σ)²``.
        scale: Implied gamma scale ``σ²/mean``.
    """

    mean: float
    std_dev: float

    @property
    def shape(self) -> float:
        """Gamma shape parameter k."""
        return (self.mean / self.std_dev) ** 2

    @property
    def scale(self) -> float:
        """Gamma scale parameter."""
        return self.std_dev ** 2 / self.mean


def fit_gamma_rates(rates: np.ndarray) -> GammaFit:
    """Fit a gamma distribution to observed change rates by moments.

    Args:
        rates: Positive rate sample in changes per period (e.g.
            censored-MLE estimates from a polling phase), at least 2
            values with spread.

    Returns:
        The :class:`GammaFit`.

    Raises:
        ValidationError: On non-positive rates or a degenerate sample.
    """
    rates = np.asarray(rates, dtype=float)
    if rates.ndim != 1 or rates.size < 2:
        raise ValidationError("need a 1-D sample of >= 2 rates")
    if (rates <= 0.0).any():
        raise ValidationError("rates must be strictly positive")
    mean = float(rates.mean())
    std_dev = float(rates.std(ddof=1))
    if std_dev <= 0.0:
        raise ValidationError(
            "rate sample has zero spread; a gamma fit is degenerate")
    return GammaFit(mean=mean, std_dev=std_dev)


def calibrate_setup(accesses: AccessSet, rates: np.ndarray, *,
                    bandwidth: float,
                    min_count: int = 1) -> ExperimentSetup:
    """Build an :class:`ExperimentSetup` from observations.

    Args:
        accesses: A recorded request log.
        rates: Estimated per-element change rates (per period).
        bandwidth: The mirror's sync budget per period.
        min_count: Tail cutoff for the Zipf fit.

    Returns:
        A setup whose N matches the rate vector, whose θ and σ are
        fitted, and whose updates-per-period is ``Σ rates`` — drop it
        into ``build_catalog`` to generate statistically matched
        synthetic workloads for what-if studies.
    """
    rates = np.asarray(rates, dtype=float)
    if rates.ndim != 1 or rates.size < 1:
        raise ValidationError("rates must be a non-empty vector")
    counts = accesses.access_counts(rates.shape[0])
    theta = fit_zipf_theta(counts, min_count=min_count)
    fit = fit_gamma_rates(rates)
    return ExperimentSetup(n_objects=int(rates.shape[0]),
                           updates_per_period=float(rates.sum()),
                           syncs_per_period=float(bandwidth),
                           theta=theta, update_std_dev=fit.std_dev)
