"""Topology-aware replanning tests for the adaptive manager.

Covers the relay-tree additions to the degraded-mode loop: subtree
shard maps, correlated-outage *collapse* (a mostly-dead subtree is
zeroed as one unit), bandwidth derating to the reachable subtrees'
uplinks, and the engine contract that topology runs stay on the
per-period reference loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.faults.breaker import CircuitBreaker
from repro.faults.correlated import CorrelatedFaultModel, NodeOutage
from repro.faults.model import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.faults.topology import Topology
from repro.obs import registry as obs
from repro.runtime.manager import AdaptiveMirrorManager
from repro.workloads.presets import ExperimentSetup, build_catalog

SETUP = ExperimentSetup(n_objects=40, updates_per_period=80.0,
                        syncs_per_period=20.0, theta=1.2,
                        update_std_dev=1.0)


@pytest.fixture
def world():
    return build_catalog(SETUP, alignment="shuffled", seed=4)


def tree(**kwargs) -> Topology:
    defaults = dict(n_relays=2, edges_per_relay=2, seed=7)
    defaults.update(kwargs)
    return Topology.build(SETUP.n_objects, **defaults)


def make_manager(world, topology, **kwargs):
    defaults = dict(request_rate=600.0,
                    rng=np.random.default_rng(0),
                    replan_every=2)
    defaults.update(kwargs)
    return AdaptiveMirrorManager(world, SETUP.syncs_per_period,
                                 topology=topology, **defaults)


def outage_manager(world, topology, node: int, *,
                   start: float = 1.0, end: float = 9.0,
                   cooldown: float = 6.0, **kwargs):
    """A manager facing one scheduled node outage.

    The default cooldown outlasts the run: once opened, the breaker
    stays OPEN at every period end, so the outage streak counts up
    monotonically.  (A shorter cooldown races the flat budget — a
    budget-denied half-open probe leaves the breaker HALF_OPEN at a
    period end and resets the streak.)  Recovery tests pass a
    cooldown short enough to probe after the window.
    """
    plan = FaultPlan(models=(CorrelatedFaultModel(
        topology, scheduled=(NodeOutage(node=node, start=start,
                                        end=end),)),))
    return make_manager(
        world, topology, fault_plan=plan,
        retry_policy=RetryPolicy(max_retries=2),
        breaker=CircuitBreaker(topology.n_shards,
                               failure_threshold=3,
                               cooldown=cooldown),
        **kwargs)


class TestConstruction:
    def test_element_count_must_match(self, world):
        topology = Topology.build(8, n_relays=2, edges_per_relay=2)
        with pytest.raises(ValidationError):
            make_manager(world, topology)

    def test_subtree_outage_fraction_is_validated(self, world):
        for bad in (0.0, 1.5):
            with pytest.raises(ValidationError):
                make_manager(world, tree(),
                             subtree_outage_fraction=bad)

    def test_shard_map_defaults_to_subtree_membership(self, world):
        topology = tree()
        manager = make_manager(world, topology)
        assert np.array_equal(manager._shard_of, topology.shard_of)

    def test_topology_runs_are_never_batchable(self, world):
        flat = make_manager(world, None,
                            fault_plan=FaultPlan.iid(0.1))
        assert flat._batchable()
        routed = make_manager(world, tree(),
                              fault_plan=FaultPlan.iid(0.1))
        assert not routed._batchable()


class TestSubtreeCollapse:
    def test_half_dead_subtree_collapses_whole(self, world):
        """One dead edge is half its subtree: at the default 0.5
        fraction the sibling edge's elements are zeroed too — they
        share the doomed uplink."""
        topology = tree()
        edge = int(topology.element_edge[0])
        manager = outage_manager(world, topology, edge)
        with obs.telemetry() as registry:
            manager.run(6)
        freqs = manager.current_frequencies
        subtree = topology.subtree_of == topology.subtree_of[0]
        assert np.all(freqs[subtree] == 2.0)
        other = ~subtree
        assert not np.all(freqs[other] == 2.0)
        assert registry.counters.get(
            "manager.subtree_collapses", 0) > 0

    def test_high_fraction_keeps_the_sibling_edge_planned(self, world):
        """At fraction 0.75 a half-dead subtree does not collapse:
        only the dead edge's own elements drop to the probe."""
        topology = tree()
        edge = int(topology.element_edge[0])
        manager = outage_manager(world, topology, edge,
                                 subtree_outage_fraction=0.75)
        manager.run(6)
        freqs = manager.current_frequencies
        dead = topology.element_edge == edge
        sibling = ((topology.subtree_of == topology.subtree_of[0])
                   & ~dead)
        assert np.all(freqs[dead] == 2.0)
        assert not np.all(freqs[sibling] == 2.0)


class TestReachableBandwidthDerate:
    def test_relay_outage_derates_to_the_surviving_uplink(self, world):
        """With one of two 12-unit relays down, the degraded plan
        spends at most the surviving uplink, not the nominal B=20."""
        topology = tree(relay_bandwidth=12.0)
        relay = topology.root_children[0]
        manager = outage_manager(world, topology, relay)
        with obs.telemetry() as registry:
            manager.run(6)
        assert registry.gauges.get(
            "manager.reachable_bandwidth") == 12.0
        freqs = manager.current_frequencies
        reachable = ~topology.descendant_elements(relay)
        spend = float(world.sizes[reachable] @ freqs[reachable])
        assert spend <= 12.0 + 1e-9

    def test_blind_manager_never_derates(self, world):
        topology = tree(relay_bandwidth=12.0)
        relay = topology.root_children[0]
        manager = outage_manager(world, topology, relay,
                                 fault_aware=False)
        manager.run(6)
        spend = float(world.sizes @ manager.current_frequencies)
        assert spend == pytest.approx(SETUP.syncs_per_period,
                                      rel=0.02)

    def test_recovery_restores_the_full_budget(self, world):
        topology = tree(relay_bandwidth=12.0)
        relay = topology.root_children[0]
        manager = outage_manager(world, topology, relay,
                                 start=1.0, end=4.0, cooldown=2.5)
        manager.run(5)
        dead = topology.descendant_elements(relay)
        assert np.all(manager.current_frequencies[dead] == 2.0)
        with obs.telemetry() as registry:
            manager.run(10)
        assert registry.gauges.get(
            "manager.reachable_bandwidth") == 20.0
        assert not np.all(manager.current_frequencies[dead] == 2.0)


class TestDeterminism:
    def test_deterministic_given_seed_under_topology(self, world):
        def run(seed: int):
            topology = tree()
            manager = outage_manager(
                world, topology, topology.root_children[0],
                start=1.0, end=5.0, cooldown=2.5,
                rng=np.random.default_rng(seed))
            return [(r.monitored_pf, r.failed_polls, r.retries)
                    for r in manager.run(7)]

        assert run(3) == run(3)
        assert run(3) != run(4)
