"""Bursty (Markov-modulated Poisson) update processes.

Every closed form in :mod:`repro.core` assumes Poisson updates.  Real
sources burst: a page is edited many times in a session, then sits
quiet.  The standard minimal model is the two-state Markov-modulated
Poisson process (MMPP): each element alternates between an OFF state
(no updates) and an ON state (Poisson at an elevated rate), with
exponential sojourn times.  Choosing the ON rate as
``λ·(on + off)/on`` preserves the element's *long-run* rate λ, so a
schedule planned for the Poisson model faces the same total update
volume — only its temporal clustering changes.

The ``burstiness`` knob interpolates from Poisson (0) to extreme
clustering (→ 1): the ON fraction is ``1 − burstiness`` and state
flips happen on the timescale of ``cycle_length``.

Used by the model-misspecification experiment: how much perceived
freshness does the Fixed-Order schedule actually lose when the world
bursts but the planner assumed Poisson?
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sim.events import EventKind, EventStream
from repro.workloads.catalog import Catalog

__all__ = ["BurstyUpdateGenerator"]


class BurstyUpdateGenerator:
    """Two-state MMPP update processes, rate-matched to the catalog.

    Args:
        catalog: Supplies the long-run change rates (per period).
        burstiness: 0 gives (approximately) Poisson behaviour; values
            toward 1 concentrate all updates into ever-shorter ON
            windows.  Must lie in ``[0, 1)``.
        cycle_length: Mean ON+OFF cycle duration in periods, > 0.
        period_length: Clock length of one period.
        rng: Seeded generator.
    """

    def __init__(self, catalog: Catalog, *, burstiness: float,
                 cycle_length: float = 1.0, period_length: float = 1.0,
                 rng: np.random.Generator) -> None:
        if not 0.0 <= burstiness < 1.0:
            raise ValidationError(
                f"burstiness must be in [0, 1), got {burstiness}")
        if cycle_length <= 0.0:
            raise ValidationError(
                f"cycle_length must be > 0, got {cycle_length}")
        if period_length <= 0.0:
            raise ValidationError(
                f"period_length must be > 0, got {period_length}")
        self._rates = catalog.change_rates / period_length
        self._on_fraction = 1.0 - burstiness
        self._mean_on = cycle_length * period_length * self._on_fraction
        self._mean_off = (cycle_length * period_length
                          * (1.0 - self._on_fraction))
        self._rng = rng

    def generate(self, horizon: float) -> EventStream:
        """All update events in ``[0, horizon)``.

        Args:
            horizon: Clock length of the simulated window, > 0.

        Returns:
            A time-sorted UPDATE stream whose per-element long-run
            rate matches the catalog's (in expectation).
        """
        if horizon <= 0.0:
            raise ValidationError(f"horizon must be > 0, got {horizon}")
        n = self._rates.shape[0]
        all_times: list[np.ndarray] = []
        all_elements: list[np.ndarray] = []
        if self._mean_off <= 0.0:
            # Degenerate: always ON at the base rate — plain Poisson.
            counts = self._rng.poisson(self._rates * horizon)
            times = self._rng.uniform(0.0, horizon,
                                      size=int(counts.sum()))
            elements = np.repeat(np.arange(n, dtype=np.int64), counts)
            order = np.argsort(times, kind="stable")
            return EventStream(kind=EventKind.UPDATE,
                               times=times[order],
                               elements=elements[order])

        on_rates = self._rates / self._on_fraction
        for element in range(n):
            if self._rates[element] <= 0.0:
                continue
            times = self._element_times(float(on_rates[element]),
                                        horizon)
            if times.size:
                all_times.append(times)
                all_elements.append(np.full(times.shape, element,
                                            dtype=np.int64))
        if not all_times:
            return EventStream(kind=EventKind.UPDATE, times=np.empty(0),
                               elements=np.empty(0, dtype=np.int64))
        times = np.concatenate(all_times)
        elements = np.concatenate(all_elements)
        order = np.argsort(times, kind="stable")
        return EventStream(kind=EventKind.UPDATE, times=times[order],
                           elements=elements[order])

    def _element_times(self, on_rate: float,
                       horizon: float) -> np.ndarray:
        """Sample one element's MMPP event times over the window."""
        rng = self._rng
        times: list[np.ndarray] = []
        clock = 0.0
        # Start in a state drawn from the stationary distribution.
        in_on = bool(rng.uniform() < self._on_fraction)
        while clock < horizon:
            if in_on:
                duration = rng.exponential(self._mean_on)
                window_end = min(clock + duration, horizon)
                span = window_end - clock
                count = int(rng.poisson(on_rate * span))
                if count:
                    times.append(rng.uniform(clock, window_end,
                                             size=count))
            else:
                duration = rng.exponential(self._mean_off)
            clock += duration
            in_on = not in_on
        if not times:
            return np.empty(0)
        return np.sort(np.concatenate(times))
