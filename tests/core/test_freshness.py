"""Tests for repro.core.freshness."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.freshness import (
    FixedOrderPolicy,
    PoissonSyncPolicy,
    fixed_order_freshness,
    invert_marginal_gain,
    marginal_gain,
)
from repro.errors import ValidationError

positive_rates = st.floats(min_value=1e-3, max_value=50.0)
positive_freqs = st.floats(min_value=1e-3, max_value=50.0)


class TestFixedOrderFreshness:
    def test_known_value_at_equal_rate_and_frequency(self):
        # r = 1: F = 1 - e^{-1}.
        value = fixed_order_freshness(np.array([2.0]), np.array([2.0]))
        assert value == pytest.approx(1.0 - math.exp(-1.0))

    def test_zero_frequency_is_stale(self):
        assert fixed_order_freshness(np.array([1.0]),
                                     np.array([0.0])) == 0.0

    def test_zero_change_rate_is_always_fresh(self):
        assert fixed_order_freshness(np.array([0.0]),
                                     np.array([0.0])) == 1.0
        assert fixed_order_freshness(np.array([0.0]),
                                     np.array([3.0])) == 1.0

    def test_fast_sync_approaches_one(self):
        value = fixed_order_freshness(np.array([1.0]),
                                      np.array([1e6]))
        assert value == pytest.approx(1.0, abs=1e-5)

    def test_slow_sync_approaches_zero(self):
        value = fixed_order_freshness(np.array([1e6]),
                                      np.array([1.0]))
        assert value == pytest.approx(0.0, abs=1e-5)

    def test_scalar_inputs_return_scalar(self):
        value = fixed_order_freshness(1.0, 1.0)
        assert isinstance(value, float)

    def test_broadcasting(self):
        values = fixed_order_freshness(np.array([1.0, 2.0, 4.0]), 2.0)
        assert values.shape == (3,)
        assert (np.diff(values) < 0.0).all()

    @given(positive_rates, positive_freqs)
    @settings(max_examples=100)
    def test_bounded_in_unit_interval(self, lam, f):
        value = fixed_order_freshness(np.array([lam]), np.array([f]))
        assert 0.0 < value <= 1.0

    @given(positive_rates, positive_freqs,
           st.floats(min_value=1.01, max_value=10.0))
    @settings(max_examples=100)
    def test_monotone_increasing_in_frequency(self, lam, f, factor):
        lower = fixed_order_freshness(np.array([lam]), np.array([f]))
        higher = fixed_order_freshness(np.array([lam]),
                                       np.array([f * factor]))
        assert higher > lower

    @given(positive_rates, positive_freqs)
    @settings(max_examples=100)
    def test_depends_only_on_ratio(self, lam, f):
        one = fixed_order_freshness(np.array([lam]), np.array([f]))
        scaled = fixed_order_freshness(np.array([3.0 * lam]),
                                       np.array([3.0 * f]))
        assert one == pytest.approx(scaled, rel=1e-12)

    @given(positive_rates, positive_freqs,
           st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=100)
    def test_strictly_concave_in_frequency(self, lam, f, weight):
        other = 3.0 * f + 0.1
        mid = weight * f + (1.0 - weight) * other
        blend = (weight * fixed_order_freshness(np.array([lam]),
                                                np.array([f]))
                 + (1.0 - weight) * fixed_order_freshness(
                     np.array([lam]), np.array([other])))
        assert fixed_order_freshness(np.array([lam]),
                                     np.array([mid])) >= blend - 1e-12


class TestMarginalGain:
    def test_range(self):
        r = np.array([1e-8, 0.01, 1.0, 10.0, 100.0])
        g = marginal_gain(r)
        assert (g > 0.0).all()
        assert (g <= 1.0).all()
        assert (g[:4] < 1.0).all()  # strictly below 1 at moderate r
        assert (np.diff(g) > 0.0).all()

    def test_zero_at_zero(self):
        assert marginal_gain(np.array([0.0])) == 0.0

    def test_series_matches_closed_form_at_cutoff(self):
        # The series branch and the closed form must agree where they
        # meet.
        r = np.array([9e-5, 1.1e-4])
        g = marginal_gain(r)
        exact = 1.0 - (1.0 + r) * np.exp(-r)
        assert np.allclose(g, exact, rtol=1e-8)

    def test_matches_derivative_of_freshness(self):
        # dF/df at (lam, f) equals g(lam/f)/lam; check against a
        # central finite difference.
        lam, f, h = 2.0, 1.5, 1e-6
        numeric = (fixed_order_freshness(np.array([lam]),
                                         np.array([f + h]))
                   - fixed_order_freshness(np.array([lam]),
                                           np.array([f - h]))) / (2 * h)
        analytic = marginal_gain(np.array([lam / f])) / lam
        assert numeric[0] == pytest.approx(analytic[0], rel=1e-5)

    @given(st.floats(min_value=1e-6, max_value=0.999999))
    @settings(max_examples=200)
    def test_inversion_roundtrip(self, target):
        r = invert_marginal_gain(np.array([target]))
        assert marginal_gain(r) == pytest.approx(target, abs=1e-10)

    def test_invert_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            invert_marginal_gain(np.array([0.0]))
        with pytest.raises(ValidationError):
            invert_marginal_gain(np.array([1.0]))
        with pytest.raises(ValidationError):
            invert_marginal_gain(np.array([-0.5]))

    def test_invert_scalar(self):
        r = invert_marginal_gain(0.5)
        assert isinstance(r, float)

    def test_invert_vectorized_consistency(self):
        targets = np.array([0.01, 0.2, 0.5, 0.9, 0.999])
        vector = invert_marginal_gain(targets)
        singles = [invert_marginal_gain(np.array([t]))[0]
                   for t in targets]
        assert np.allclose(vector, singles, rtol=1e-10)


class TestFixedOrderPolicy:
    def test_derivative_at_zero_frequency_is_reciprocal_rate(self):
        policy = FixedOrderPolicy()
        d = policy.derivative(np.array([4.0]), np.array([0.0]))
        assert d == pytest.approx(0.25)

    def test_derivative_zero_for_static_element(self):
        policy = FixedOrderPolicy()
        assert policy.derivative(np.array([0.0]), np.array([1.0])) == 0.0

    def test_derivative_decreasing_in_frequency(self):
        policy = FixedOrderPolicy()
        freqs = np.array([0.5, 1.0, 2.0, 4.0])
        d = policy.derivative(np.full(4, 2.0), freqs)
        assert (np.diff(d) < 0.0).all()

    @given(positive_rates, st.floats(min_value=1e-4, max_value=0.99))
    @settings(max_examples=100)
    def test_frequency_for_marginal_roundtrip(self, lam, fraction):
        policy = FixedOrderPolicy()
        # A reachable marginal target: m in (0, 1/lam).
        marginal = fraction / lam
        f = policy.frequency_for_marginal(np.array([lam]),
                                          np.array([marginal]))
        recovered = policy.derivative(np.array([lam]), f)
        assert recovered == pytest.approx(marginal, rel=1e-8)


class TestPoissonSyncPolicy:
    def test_closed_form(self):
        policy = PoissonSyncPolicy()
        value = policy.freshness(np.array([2.0]), np.array([2.0]))
        assert value == pytest.approx(0.5)

    def test_static_element_fresh(self):
        policy = PoissonSyncPolicy()
        assert policy.freshness(np.array([0.0]), np.array([0.0])) == 1.0

    def test_derivative_matches_finite_difference(self):
        policy = PoissonSyncPolicy()
        lam, f, h = 3.0, 1.0, 1e-6
        numeric = (policy.freshness(np.array([lam]), np.array([f + h]))
                   - policy.freshness(np.array([lam]),
                                      np.array([f - h]))) / (2 * h)
        assert numeric[0] == pytest.approx(
            policy.derivative(np.array([lam]), np.array([f]))[0],
            rel=1e-5)

    @given(positive_rates, st.floats(min_value=1e-4, max_value=0.99))
    @settings(max_examples=100)
    def test_frequency_for_marginal_roundtrip(self, lam, fraction):
        policy = PoissonSyncPolicy()
        marginal = fraction / lam
        f = policy.frequency_for_marginal(np.array([lam]),
                                          np.array([marginal]))
        recovered = policy.derivative(np.array([lam]), f)
        assert recovered == pytest.approx(marginal, rel=1e-8)

    @given(positive_rates, positive_freqs)
    @settings(max_examples=100)
    def test_fixed_order_dominates_poisson_sync(self, lam, f):
        # Cho & Garcia-Molina: evenly spaced syncs beat memoryless
        # syncs at the same frequency.
        fixed = FixedOrderPolicy().freshness(np.array([lam]),
                                             np.array([f]))
        poisson = PoissonSyncPolicy().freshness(np.array([lam]),
                                                np.array([f]))
        assert fixed >= poisson - 1e-12
