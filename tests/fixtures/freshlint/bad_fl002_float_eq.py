"""Seeded FL002 violations: exact equality against nonzero floats."""


def is_converged(objective, residual):
    if objective == 0.97:          # FL002
        return True
    if residual != 1e-10:          # FL002
        return False
    return -0.5 == objective       # FL002 (negative literal)
