"""Command-line interface: run any reproduced experiment.

Usage::

    python -m repro table1
    python -m repro figure3 --quick
    python -m repro figure7
    repro-freshen figure5 --seed 3
    repro-freshen table1 --quick --telemetry out/
    repro-freshen table1 --quick --sink statsd://127.0.0.1:8125
    repro-freshen obs summary --tape out/telemetry.jsonl
    repro-freshen obs freshness --tape out/telemetry.jsonl
    repro-freshen obs diff baseline.jsonl out/telemetry.jsonl
    repro-freshen chaos --scenario iid20
    repro-freshen adapt --scenario outage --quick

``--quick`` shrinks grids/sizes so every experiment finishes in a few
seconds; without it the paper-scale defaults run.  ``--telemetry
[DIR]`` runs the experiment with the :mod:`repro.obs` layer enabled
and writes ``telemetry.jsonl`` (the event tape) plus
``telemetry.prom`` (Prometheus text format) into DIR, then prints the
summary table; the ``obs`` subcommand re-renders a saved tape.
``--jobs N`` fans seed-replicated experiments out over N worker
processes (``0`` = all cores) with results bit-identical to the
default serial run — see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.analysis import experiments, sensitivity
from repro.analysis.plots import ascii_plot
from repro.analysis.series import SweepResult
from repro.analysis.svg import write_svg
from repro.analysis.tables import format_sweep, format_table
from repro.workloads.presets import ExperimentSetup

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.sink import Sink

__all__ = ["main", "build_parser"]

_QUICK_BIG = ExperimentSetup(n_objects=20_000,
                             updates_per_period=40_000.0,
                             syncs_per_period=10_000.0, theta=1.0,
                             update_std_dev=2.0)
_QUICK_MEDIUM = ExperimentSetup(n_objects=4_000,
                                updates_per_period=8_000.0,
                                syncs_per_period=2_000.0, theta=1.0,
                                update_std_dev=2.0)


def _emit_sweep(sweep: SweepResult, plot: bool,
                svg_dir: str | None = None) -> None:
    print(format_sweep(sweep))
    if plot:
        print()
        print(ascii_plot(sweep))
    if svg_dir is not None:
        from pathlib import Path

        directory = Path(svg_dir)
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / f"{sweep.name}.svg"
        write_svg(sweep, target)
        print(f"(wrote {target})")
    print()


def _run_table1(args: argparse.Namespace) -> None:
    results = experiments.table1()
    rates = results["change_rates"]
    rows = [["(a) change freq"] + [f"{value:g}" for value in rates]]
    for profile in ("P1", "P2", "P3"):
        rows.append([f"sync freq ({profile})"]
                    + [f"{value:.2f}" for value in results[profile]])
    headers = ["row"] + [f"e{index + 1}" for index in range(rates.shape[0])]
    print("Table 1 — optimal sync frequencies for the toy example")
    print(format_table(headers, rows))


def _run_figure1(args: argparse.Namespace) -> None:
    _emit_sweep(experiments.figure1(), args.plot, args.svg)


def _run_figure2(args: argparse.Namespace) -> None:
    for sweep in experiments.figure2(seed=args.seed).values():
        _emit_sweep(sweep, args.plot, args.svg)


def _run_figure3(args: argparse.Namespace) -> None:
    n_seeds = 1 if args.quick else 3
    for sweep in experiments.figure3(n_seeds=n_seeds,
                                     base_seed=args.seed,
                                     jobs=args.jobs).values():
        _emit_sweep(sweep, args.plot, args.svg)


def _run_figure5(args: argparse.Namespace) -> None:
    counts = (np.array([10, 50, 100, 200]) if args.quick else None)
    for sweep in experiments.figure5(partition_counts=counts,
                                     seed=args.seed,
                                     jobs=args.jobs).values():
        _emit_sweep(sweep, args.plot, args.svg)


def _run_figure6(args: argparse.Namespace) -> None:
    _emit_sweep(experiments.figure6(seed=args.seed), args.plot, args.svg)


def _run_figure7(args: argparse.Namespace) -> None:
    setup = _QUICK_BIG if args.quick else None
    kwargs = {"seed": args.seed}
    if setup is not None:
        kwargs["setup"] = setup
    _emit_sweep(experiments.figure7(**kwargs), args.plot, args.svg)


def _run_figure8(args: argparse.Namespace) -> None:
    setup = _QUICK_MEDIUM if args.quick else None
    _emit_sweep(experiments.figure8(setup=setup, seed=args.seed),
                args.plot)


def _run_figure9(args: argparse.Namespace) -> None:
    setup = _QUICK_MEDIUM if args.quick else None
    sweep = experiments.figure9(setup=setup, seed=args.seed)
    # Series have distinct x grids (times), so print each separately.
    for series in sweep.series:
        print(f"{sweep.name} — {series.label}")
        rows = list(zip(series.x.tolist(), series.y.tolist()))
        print(format_table(["time (s)", "perceived freshness"], rows))
        print()
    if args.plot:
        print(ascii_plot(sweep))


def _run_figure10(args: argparse.Namespace) -> None:
    results = experiments.figure10(seed=args.seed)
    for key in ("frequency", "bandwidth"):
        sweep = results[key]
        print(f"{sweep.name}: totals per series")
        rows = [(series.label, float(series.y.sum()))
                for series in sweep.series]
        print(format_table(["series", f"total {sweep.y_label}"], rows))
        if args.plot:
            print(ascii_plot(sweep))
        print()
    print(format_table(
        ["schedule", "perceived freshness"],
        [("uniform-size world optimum (paper: 0.312)",
          results["pf_uniform_world"]),
         ("size-aware optimum (paper: 0.586)",
          results["pf_size_aware"]),
         ("size-blind schedule in sized world",
          results["pf_blind_in_sized_world"])]))


def _run_figure11(args: argparse.Namespace) -> None:
    counts = np.array([10, 50, 100, 200]) if args.quick else None
    _emit_sweep(experiments.figure11(partition_counts=counts,
                                     seed=args.seed), args.plot, args.svg)


def _run_imperfect(args: argparse.Namespace) -> None:
    n_seeds = 1 if args.quick else 3
    _emit_sweep(experiments.imperfect_knowledge(n_seeds=n_seeds,
                                                base_seed=args.seed),
                args.plot)


def _run_mirror_selection(args: argparse.Namespace) -> None:
    _emit_sweep(experiments.mirror_selection(seed=args.seed), args.plot, args.svg)


def _run_policy_ablation(args: argparse.Namespace) -> None:
    _emit_sweep(experiments.policy_ablation(seed=args.seed), args.plot, args.svg)


def _run_bandwidth_sensitivity(args: argparse.Namespace) -> None:
    _emit_sweep(sensitivity.bandwidth_sensitivity(seed=args.seed),
                args.plot)


def _run_dispersion_sensitivity(args: argparse.Namespace) -> None:
    _emit_sweep(sensitivity.dispersion_sensitivity(seed=args.seed),
                args.plot)


def _run_scale_sensitivity(args: argparse.Namespace) -> None:
    counts = np.array([500, 2000, 8000]) if args.quick else None
    _emit_sweep(sensitivity.scale_sensitivity(n_objects=counts,
                                              seed=args.seed), args.plot, args.svg)


def _run_representative_ablation(args: argparse.Namespace) -> None:
    _emit_sweep(sensitivity.representative_ablation(seed=args.seed),
                args.plot)


def _run_burstiness(args: argparse.Namespace) -> None:
    periods = 30 if args.quick else 60
    _emit_sweep(sensitivity.burstiness_robustness(n_periods=periods,
                                                  seed=args.seed,
                                                  jobs=args.jobs),
                args.plot)


def _run_crawler(args: argparse.Namespace) -> None:
    rounds = 30 if args.quick else 60
    sweep = sensitivity.crawler_comparison(n_rounds=rounds,
                                           seed=args.seed)
    rows = list(sweep.notes["scores"].items())
    print("crawler-comparison (perceived freshness)")
    print(format_table(["policy", "perceived freshness"], rows))


def _run_report(args: argparse.Namespace) -> None:
    from repro.analysis.report import write_report

    path = "REPORT.md"
    sections = write_report(path, quick=args.quick, seed=args.seed)
    passed = sum(section.passed for section in sections)
    print(f"wrote {path}: {passed}/{len(sections)} sections PASS")
    for section in sections:
        verdict = "PASS" if section.passed else "FAIL"
        print(f"  [{verdict}] {section.title} ({section.seconds:.1f}s)")


def _run_baseline_comparison(args: argparse.Namespace) -> None:
    _emit_sweep(sensitivity.baseline_comparison(seed=args.seed),
                args.plot)


def _run_freshness_age(args: argparse.Namespace) -> None:
    _emit_sweep(sensitivity.freshness_age_tradeoff(seed=args.seed),
                args.plot)


def _run_adaptive(args: argparse.Namespace) -> None:
    periods = 8 if args.quick else 15
    _emit_sweep(sensitivity.adaptive_convergence(n_periods=periods,
                                                 seed=args.seed),
                args.plot)


def _chaos_scenario_task(name: str, *, n_periods: int, warmup: int,
                         seed: int):
    """One full chaos scenario (module-level so workers can pickle
    it; the three arms run serially inside the worker)."""
    from repro.analysis.chaos import run_chaos

    return run_chaos(name, n_periods=n_periods, warmup=warmup,
                     seed=seed, jobs=1)


def _run_chaos(args: argparse.Namespace) -> None:
    import json
    from functools import partial

    from repro.analysis.chaos import (
        chaos_report_to_dict,
        format_chaos_report,
        run_chaos,
    )
    from repro.faults.scenarios import CHAOS_SCENARIOS
    from repro.parallel import parallel_map

    names = (list(CHAOS_SCENARIOS) if args.scenario == "all"
             else [args.scenario])
    n_periods = 24 if args.quick else args.periods
    warmup = min(4 if args.quick else 10, n_periods - 1)
    every = 2 if args.quick else 5
    if len(names) > 1:
        # Scenarios are independent, so ``--scenario all`` fans out
        # whole scenarios (coarser tasks than the three arms inside
        # one scenario, and there are more of them).
        reports = parallel_map(
            partial(_chaos_scenario_task, n_periods=n_periods,
                    warmup=warmup, seed=args.seed),
            names, jobs=args.jobs, label="parallel.chaos_scenarios")
    else:
        reports = [run_chaos(names[0], n_periods=n_periods,
                             warmup=warmup, seed=args.seed,
                             jobs=args.jobs)]
    for report in reports:
        print(format_chaos_report(report, every=every))
        print()
    if getattr(args, "report_json", None):
        path = Path(args.report_json)
        path.write_text(
            json.dumps([chaos_report_to_dict(report)
                        for report in reports], indent=2) + "\n",
            encoding="utf-8")
        print(f"(wrote {path})")


def _adapt_scenario_task(scenario_name: str | None, *, seed: int,
                         periods: int):
    """One adaptive-loop run (module-level so workers can pickle it).

    Returns:
        ``(title, reports)`` for the CLI table.
    """
    from repro.analysis.chaos import CHAOS_SETUP
    from repro.faults.breaker import CircuitBreaker
    from repro.faults.scenarios import CHAOS_SCENARIOS
    from repro.runtime.manager import AdaptiveMirrorManager
    from repro.workloads.presets import build_catalog

    catalog = build_catalog(CHAOS_SETUP, seed=seed)
    kwargs = {}
    title = "adaptive loop (fault-free)"
    if scenario_name is not None:
        scenario = CHAOS_SCENARIOS[scenario_name]
        kwargs["fault_plan"] = scenario.plan(catalog.n_elements,
                                             float(periods))
        kwargs["retry_policy"] = scenario.retry_policy_for_run()
        topology = scenario.topology(catalog.n_elements)
        if topology is not None:
            kwargs["topology"] = topology
        if scenario.breaker_threshold is not None:
            kwargs["breaker"] = CircuitBreaker(
                scenario.n_shards(catalog.n_elements),
                failure_threshold=scenario.breaker_threshold,
                cooldown=scenario.breaker_cooldown)
            kwargs["shard_of"] = scenario.shard_of(catalog.n_elements)
        title = f"adaptive loop under chaos scenario {scenario_name!r}"
    manager = AdaptiveMirrorManager(
        catalog, CHAOS_SETUP.syncs_per_period,
        request_rate=12.0 * CHAOS_SETUP.n_objects,
        rng=np.random.default_rng(seed),
        replan_every=3, **kwargs)
    return title, manager.run(periods)


def _run_adapt(args: argparse.Namespace) -> None:
    from functools import partial

    from repro.faults.scenarios import CHAOS_SCENARIOS
    from repro.parallel import parallel_map

    scenarios: list[str | None]
    if args.scenario == "all":
        scenarios = [None, *CHAOS_SCENARIOS]
    else:
        scenarios = [args.scenario]
    periods = 12 if args.quick else args.periods
    tables = parallel_map(
        partial(_adapt_scenario_task, seed=args.seed,
                periods=periods),
        scenarios, jobs=args.jobs, label="parallel.adapt")
    for title, reports in tables:
        print(title)
        rows = [(r.period, "yes" if r.replanned else "",
                 f"{r.believed_pf:.4f}", f"{r.achieved_pf:.4f}",
                 f"{r.monitored_pf:.4f}", r.failed_polls, r.retries)
                for r in reports]
        print(format_table(
            ["period", "replanned", "believed", "achieved",
             "monitored", "failed", "retries"], rows))
        print()


_COMMANDS: dict[str, tuple[Callable[[argparse.Namespace], None], str]] = {
    "table1": (_run_table1, "Toy-example optimal sync frequencies"),
    "figure1": (_run_figure1, "Solution locus f(lambda) per p"),
    "figure2": (_run_figure2, "Alignment-option workload shapes"),
    "figure3": (_run_figure3, "PF vs theta: PF vs GF technique"),
    "figure5": (_run_figure5, "PF vs partitions, four partitioners"),
    "figure6": (_run_figure6, "Partitioner sensitivity to theta"),
    "figure7": (_run_figure7, "The big (Table 3) case"),
    "figure8": (_run_figure8, "k-means refinement improvement"),
    "figure9": (_run_figure9, "PF vs wall time with clustering"),
    "figure10": (_run_figure10, "Object-size-aware optimal schedules"),
    "figure11": (_run_figure11, "FBA vs FFA allocation"),
    "imperfect-knowledge": (_run_imperfect,
                            "Robustness to noisy change rates"),
    "mirror-selection": (_run_mirror_selection,
                         "Profile-driven mirror selection"),
    "policy-ablation": (_run_policy_ablation,
                        "Fixed-order vs Poisson sync policies"),
    "bandwidth-sensitivity": (_run_bandwidth_sensitivity,
                              "PF advantage across bandwidth ratios"),
    "dispersion-sensitivity": (_run_dispersion_sensitivity,
                               "PF across update-rate dispersion"),
    "scale-sensitivity": (_run_scale_sensitivity,
                          "PF invariance across database size"),
    "representative-ablation": (_run_representative_ablation,
                                "Mean vs median vs weighted reps"),
    "adaptive": (_run_adaptive,
                 "Observe/estimate/replan runtime convergence"),
    "baseline-comparison": (_run_baseline_comparison,
                            "PF/GF vs uniform/proportional policies"),
    "freshness-age": (_run_freshness_age,
                      "Perceived freshness vs perceived age"),
    "crawler-comparison": (_run_crawler,
                           "PF vs sampling crawler vs random polls"),
    "burstiness": (_run_burstiness,
                   "Poisson-planned schedules on bursty sources"),
    "adapt": (_run_adapt,
              "Adaptive-loop period table (optionally under chaos)"),
    "chaos": (_run_chaos,
              "Fault scenarios: blind vs degraded-mode replanning"),
    "report": (_run_report,
               "Run every experiment and write REPORT.md"),
}


def _run_obs(args: argparse.Namespace) -> int:
    from repro.obs import export

    if args.action == "diff":
        return _run_obs_diff(args)
    try:
        registry = export.read_jsonl(args.tape)
    except FileNotFoundError:
        print(f"repro obs: no tape at {args.tape!r} — run an experiment "
              "with --telemetry DIR first", file=sys.stderr)
        return 1
    if args.action == "prom":
        print(export.prometheus_text(registry), end="")
    elif args.action == "freshness":
        print(export.freshness_text(registry, now=args.now), end="")
    else:
        print(export.summary_text(registry))
    return 0


def _run_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs import diff as obs_diff

    try:
        baseline = obs_diff.load_metrics(args.baseline)
        candidate = obs_diff.load_metrics(args.candidate)
    except (FileNotFoundError, ValueError) as error:
        print(f"repro obs diff: {error}", file=sys.stderr)
        return 2
    rows = obs_diff.diff_metrics(baseline, candidate,
                                 threshold=args.threshold)
    print(obs_diff.format_diff(rows, threshold=args.threshold),
          end="")
    regressed = any(row.regression for row in rows)
    if regressed and args.warn_only:
        print("(warn-only: not failing the run)")
    return 1 if regressed and not args.warn_only else 0


def _run_with_telemetry(runner: Callable[[argparse.Namespace], None],
                        args: argparse.Namespace,
                        sink: "Sink | None" = None) -> None:
    from repro.obs import export, registry as obs_registry

    directory = (Path(args.telemetry)
                 if args.telemetry is not None else None)
    if directory is not None:
        directory.mkdir(parents=True, exist_ok=True)
    with obs_registry.telemetry() as registry:
        if sink is not None:
            registry.sinks.append(sink)
        try:
            runner(args)
        finally:
            if sink is not None:
                sink.emit_registry(registry)
                sink.close()
                if sink.dropped or sink.send_errors:
                    print(f"(sink {args.sink}: {sink.sent} items "
                          f"sent, {sink.dropped} dropped, "
                          f"{sink.send_errors} transport errors)",
                          file=sys.stderr)
        if directory is not None:
            tape = directory / "telemetry.jsonl"
            prom = directory / "telemetry.prom"
            export.write_jsonl(registry, tape)
            prom.write_text(export.prometheus_text(registry),
                            encoding="utf-8")
            print()
            print(export.summary_text(registry))
            print(f"(wrote {tape} and {prom})")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser.

    Returns:
        The configured :class:`argparse.ArgumentParser`.
    """
    parser = argparse.ArgumentParser(
        prog="repro-freshen",
        description="Reproduce the experiments of 'Scalable "
                    "Application-Aware Data Freshening' (ICDE 2003).")
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, (_, help_text) in _COMMANDS.items():
        extra: dict = {}
        if name == "chaos":
            # The scenario table is generated from the registry, so
            # --help can never drift from the ChaosScenario entries.
            from repro.faults.scenarios import CHAOS_SCENARIOS

            width = max(len(key) for key in CHAOS_SCENARIOS)
            rows = "\n".join(
                f"  {key.ljust(width)}  {scenario.description}"
                for key, scenario in sorted(CHAOS_SCENARIOS.items()))
            extra = {
                "epilog": "scenarios:\n" + rows,
                "formatter_class":
                    argparse.RawDescriptionHelpFormatter,
            }
        sub = subparsers.add_parser(name, help=help_text, **extra)
        sub.add_argument("--seed", type=int, default=0,
                         help="workload seed (default 0)")
        sub.add_argument("--quick", action="store_true",
                         help="shrink grids/sizes for a fast run")
        sub.add_argument("--plot", action="store_true",
                         help="also render an ASCII chart")
        sub.add_argument("--svg", metavar="DIR", default=None,
                         help="also write an SVG chart into DIR")
        sub.add_argument("--telemetry", metavar="DIR", nargs="?",
                         const=".", default=None,
                         help="enable telemetry; write telemetry.jsonl"
                              " and telemetry.prom into DIR (default"
                              " current directory)")
        sub.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for experiments that "
                              "fan out (0 = all cores; default 1 = "
                              "serial, bit-identical)")
        sub.add_argument("--sink", metavar="URL", default=None,
                         help="stream telemetry to a live collector "
                              "(statsd://host:port or "
                              "otlp://host[:port][/path]); implies "
                              "telemetry on, never blocks or fails "
                              "the run")
        if name in ("chaos", "adapt"):
            from repro.faults.scenarios import CHAOS_SCENARIOS

            choices = sorted(CHAOS_SCENARIOS)
            if name == "chaos":
                sub.add_argument(
                    "--scenario", choices=[*choices, "all"],
                    default="iid20",
                    help="fault scenario to run (default iid20; see "
                         "the scenario table below)")
                sub.add_argument(
                    "--periods", type=int, default=60,
                    help="periods per arm (default 60)")
                sub.add_argument(
                    "--report-json", metavar="PATH", default=None,
                    help="also write the ChaosReport series and "
                         "summary stats as JSON to PATH")
            else:
                sub.add_argument(
                    "--scenario", choices=[*choices, "all"],
                    default=None,
                    help="optional fault scenario for the loop "
                         "(default: fault-free; 'all' runs the "
                         "fault-free loop plus every scenario)")
                sub.add_argument(
                    "--periods", type=int, default=30,
                    help="periods to run (default 30)")
    obs_sub = subparsers.add_parser(
        "obs", help="Re-render a saved telemetry tape or diff two "
                    "telemetry artifacts")
    obs_actions = obs_sub.add_subparsers(dest="action", required=True)
    for action, help_text in (
            ("summary", "render the human summary table"),
            ("prom", "render the Prometheus text export"),
            ("freshness", "render the per-element staleness table")):
        action_sub = obs_actions.add_parser(action, help=help_text)
        action_sub.add_argument("--tape", metavar="PATH",
                                default="telemetry.jsonl",
                                help="JSONL tape written by "
                                     "--telemetry (default "
                                     "telemetry.jsonl)")
        if action == "freshness":
            action_sub.add_argument(
                "--now", type=float, default=None,
                help="evaluate staleness at this simulated-clock "
                     "time (default: the ledger's latest event)")
    diff_sub = obs_actions.add_parser(
        "diff", help="diff two tapes or two BENCH_sim.json files; "
                     "exit 1 on regression")
    diff_sub.add_argument("baseline",
                          help="reference artifact (JSONL tape or "
                               "BENCH_sim.json)")
    diff_sub.add_argument("candidate",
                          help="artifact under test (same format)")
    diff_sub.add_argument("--threshold", type=float, default=0.1,
                          metavar="FRACTION",
                          help="relative tolerance before a "
                               "directional change counts as a "
                               "regression (default 0.1 = 10%%)")
    diff_sub.add_argument("--warn-only", action="store_true",
                          help="print regressions but exit 0")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.

    Args:
        argv: Argument vector (defaults to ``sys.argv[1:]``).

    Returns:
        Process exit code.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "obs":
        return _run_obs(args)
    runner, _ = _COMMANDS[args.command]
    sink = None
    if getattr(args, "sink", None) is not None:
        from repro.obs.sink import parse_sink_url

        try:
            sink = parse_sink_url(args.sink)
        except ValueError as error:
            print(f"repro --sink: {error}", file=sys.stderr)
            return 2
    if args.telemetry is not None or sink is not None:
        _run_with_telemetry(runner, args, sink)
    else:
        runner(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
