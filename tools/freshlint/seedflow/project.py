"""Whole-program model: modules, bindings, call resolution, pairs.

A :class:`Project` is the parse-once index the seedflow rules work
against.  It knows, for every file handed to the analysis:

* the module's dotted name (derived from the innermost chain of
  ``__init__.py`` packages containing it; loose files get their stem);
* every top-level function and every method, under its qualified name
  ``pkg.mod.func`` / ``pkg.mod.Class.method``;
* how to resolve a call expression to a project function - through
  the module's import aliases, ``self.``/``cls.`` receivers, class
  constructors, and (as a deliberate over-approximation for draw
  summaries) a by-method-name fallback for calls on receivers whose
  class is statically unknown;
* the FL013 pair registry: ``# seedflow: pair=<target>`` annotations
  attached to kernel functions, naming their reference counterpart.

The pair annotation sits on the line directly above the ``def`` (or
above its first decorator), or trails the ``def`` line itself::

    # seedflow: pair=repro.sim.simulation.Simulation.run
    def replay_fastpath(...):

``<target>`` is a qualified name; a bare name refers to the same
module (handy for self-contained fixtures).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from freshlint.engine import (
    LintConfig,
    ModuleContext,
    Violation,
    iter_python_files,
    parse_module,
)

__all__ = [
    "FunctionInfo",
    "PairedFunctions",
    "Project",
    "build_project",
]

_PAIR_RE = re.compile(
    r"#\s*seedflow:\s*pair\s*=\s*(?P<target>[A-Za-z_][\w.]*)")

#: How far above a ``def`` (decorators included) a pair annotation
#: may sit and still attach to it.
_PAIR_REACH = 3


@dataclass
class FunctionInfo:
    """One function or method, with its defining module context."""

    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    context: ModuleContext
    module: str
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name


@dataclass(frozen=True)
class PairedFunctions:
    """An FL013 pair: the annotated kernel and its reference path."""

    kernel: str
    reference: str
    annotation_line: int


@dataclass
class Project:
    """The parsed file set plus its binding and pair indexes."""

    config: LintConfig
    root: Path | None
    modules: dict[str, ModuleContext] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    by_method_name: dict[str, list[FunctionInfo]] = \
        field(default_factory=dict)
    pairs: list[PairedFunctions] = field(default_factory=list)
    parse_errors: list[Violation] = field(default_factory=list)
    _module_of: dict[int, str] = field(default_factory=dict)

    def module_name(self, context: ModuleContext) -> str:
        """The dotted module name a context was indexed under."""
        return self._module_of.get(id(context),
                                   Path(context.path).stem)

    def resolve_dotted(self, context: ModuleContext,
                       func: ast.expr) -> str | None:
        """Dotted origin of a call target through import aliases."""
        return context.resolve_call_target(func)

    def function_for_dotted(self, dotted: str) -> FunctionInfo | None:
        """Project function bound to a resolved dotted name, if any.

        Tries the name as-is, as a class constructor (``__init__``),
        and - because a package may be analyzed from inside ``src/``
        while callers spell the installed name - by unique suffix
        match on the qualified-name index.
        """
        info = self.functions.get(dotted)
        if info is not None:
            return info
        init = self.functions.get(f"{dotted}.__init__")
        if init is not None:
            return init
        tail = [info for qualname, info in self.functions.items()
                if qualname.endswith(f".{dotted}")]
        if len(tail) == 1:
            return tail[0]
        return None

    def resolve_call(self, context: ModuleContext, call: ast.Call,
                     class_name: str | None = None
                     ) -> FunctionInfo | None:
        """Resolve one call to a project function, if possible.

        ``class_name`` scopes ``self.method()`` / ``cls.method()``
        receivers to the enclosing class.
        """
        dotted = self.resolve_dotted(context, call.func)
        if dotted is not None:
            parts = dotted.split(".")
            if class_name is not None and len(parts) == 2 and \
                    parts[0] in ("self", "cls"):
                scoped = f"{self.module_name(context)}." \
                         f"{class_name}.{parts[1]}"
                info = self.functions.get(scoped)
                if info is not None:
                    return info
            if parts[0] not in ("self", "cls"):
                qualified = f"{self.module_name(context)}.{dotted}"
                info = (self.functions.get(qualified)
                        or self.functions.get(f"{qualified}.__init__"))
                if info is not None:
                    return info
                info = self.function_for_dotted(dotted)
                if info is not None:
                    return info
        return None

    def methods_named(self, name: str) -> list[FunctionInfo]:
        """Every project method with this bare name (see module doc)."""
        return self.by_method_name.get(name, [])


def _package_root(path: Path) -> Path | None:
    """Topmost package directory containing ``path`` (None if loose)."""
    directory = path.parent
    if not (directory / "__init__.py").exists():
        return None
    while (directory.parent / "__init__.py").exists():
        directory = directory.parent
    return directory


def _module_name(path: Path) -> str:
    """Dotted module name (package-derived, or the stem when loose)."""
    root = _package_root(path)
    if root is None:
        return path.stem
    relative = path.resolve().relative_to(root.parent.resolve())
    parts = list(relative.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _index_functions(project: Project, module: str,
                     context: ModuleContext) -> None:
    """Register the module's functions and methods by qualname."""

    def register(node: ast.FunctionDef | ast.AsyncFunctionDef,
                 class_name: str | None) -> None:
        scope = f"{module}.{class_name}" if class_name else module
        info = FunctionInfo(qualname=f"{scope}.{node.name}",
                            node=node, context=context, module=module,
                            class_name=class_name)
        project.functions.setdefault(info.qualname, info)
        if class_name is not None:
            project.by_method_name.setdefault(node.name, []).append(info)

    for node in context.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            register(node, None)
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    register(member, node.name)
    register(_module_wrapper(context.tree), None)


def _module_wrapper(tree: ast.Module) -> ast.FunctionDef:
    """Wrap a module's top-level statements as a ``<module>`` pseudo-
    function so the provenance walker also sees module-level code
    (e.g. a global ``rng = default_rng(0)``).  Never compiled — only
    its ``body`` is walked."""
    body = [node for node in tree.body
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef,
                                     ast.ClassDef))]
    wrapper = ast.FunctionDef(
        name="<module>",
        args=ast.arguments(posonlyargs=[], args=[], kwonlyargs=[],
                           kw_defaults=[], defaults=[]),
        body=body or [ast.Pass()],
        decorator_list=[], returns=None)
    wrapper.lineno = 1
    wrapper.col_offset = 0
    return wrapper


def _function_start_line(node: ast.FunctionDef | ast.AsyncFunctionDef
                         ) -> int:
    """The line a ``def`` (or its first decorator) starts on."""
    if node.decorator_list:
        return min(d.lineno for d in node.decorator_list)
    return node.lineno


def _collect_pairs(project: Project, module: str,
                   context: ModuleContext) -> None:
    """Attach ``# seedflow: pair=...`` annotations to functions."""
    annotations: list[tuple[int, str]] = []
    for lineno, line in enumerate(context.lines, start=1):
        match = _PAIR_RE.search(line)
        if match is not None:
            annotations.append((lineno, match.group("target")))
    if not annotations:
        return
    starts = sorted(
        ((_function_start_line(info.node), info)
         for info in project.functions.values()
         if info.context is context and info.name != "<module>"),
        key=lambda pair: pair[0])
    for lineno, target in annotations:
        owner: FunctionInfo | None = None
        for start, info in starts:
            header_end = (info.node.body[0].lineno if info.node.body
                          else start + 1)
            if lineno <= start <= lineno + _PAIR_REACH:
                owner = info  # annotation above the def/decorators
                break
            if start <= lineno < header_end:
                owner = info  # annotation trailing the def header
                break
        if owner is None:
            continue
        reference = target if "." in target else f"{module}.{target}"
        project.pairs.append(PairedFunctions(
            kernel=owner.qualname, reference=reference,
            annotation_line=lineno))


def build_project(paths: Iterable[str | Path],
                  config: LintConfig | None = None, *,
                  root: Path | None = None,
                  sources: Mapping[str, str] | None = None) -> Project:
    """Parse every Python file under ``paths`` into one Project.

    Args:
        paths: Files or directories to analyze together.
        config: Scope knobs (shared with the per-file engine).
        root: Repository root for relative-path glob matching.
        sources: Optional ``{str(path): source}`` overrides, for
            analyzing rewritten text without touching the disk.

    Returns:
        The indexed :class:`Project`; unparsable files surface on
        ``parse_errors`` as FL999 findings.
    """
    config = config or LintConfig()
    project = Project(config=config, root=root)
    for path in iter_python_files(paths):
        override = (sources or {}).get(str(path))
        context = parse_module(path, config, root=root, source=override)
        if isinstance(context, Violation):
            project.parse_errors.append(context)
            continue
        module = _module_name(Path(path))
        project.modules[module] = context
        project._module_of[id(context)] = module
        _index_functions(project, module, context)
    for module, context in project.modules.items():
        _collect_pairs(project, module, context)
    return project
