"""FL013 fixture: paired kernel diverges from its reference."""


# seedflow: pair=reference_replay
def kernel_replay(tape, rng):
    total = 0.0
    noise = rng.random(len(tape))  # unconditional: matches reference
    for item in tape:
        if item > 0:
            total += rng.random()  # conditional draw: diverges
    total += rng.normal()  # reference never draws normal()
    return total + noise.sum()


def reference_replay(tape, rng):
    values = rng.random(len(tape))
    return float(values.sum())
