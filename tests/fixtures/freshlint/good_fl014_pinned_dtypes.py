"""FL014 fixture: disciplined kernel dtypes and bit comparisons."""

import numpy as np


def build_table():
    weights = np.array([1, 2, 3], dtype=np.float64)
    ids = np.array([1, 2, 3], dtype=np.int64)
    return weights, ids


def streams_match(a, b):
    return np.array_equal(a.view(np.uint64), b.view(np.uint64))
