"""Automatic partition-count tuning (paper §4.1.2's stated goal).

"For large cases, the goal is to use the smallest number of
partitions to achieve a good approximate answer."  The paper finds
its sweet spots by hand (50 partitions + 10 iterations at Table-3
scale); this module automates the search:

:func:`auto_tune_partitions` doubles k from a small start, planning
and scoring at each step, and stops when the relative PF gain of the
last doubling falls below ``gain_tolerance`` or a wall-clock planning
budget is exhausted.  Because heuristic quality is monotone in k only
*statistically*, the tuner keeps the best plan seen rather than
assuming the last is best.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.allocation import AllocationPolicy
from repro.core.freshener import FresheningPlan, PartitionedFreshener
from repro.core.partitioning import PartitioningStrategy
from repro.errors import ValidationError
from repro.workloads.catalog import Catalog

__all__ = ["TuningResult", "auto_tune_partitions"]


@dataclass(frozen=True)
class TuningResult:
    """Outcome of the partition-count search.

    Attributes:
        n_partitions: The chosen k.
        plan: The best plan found.
        evaluations: ``(k, perceived_freshness, seconds)`` per step,
            in search order.
        stopped_by: ``"converged"`` (marginal gain below tolerance),
            ``"time"`` (planning budget exhausted), or ``"exhausted"``
            (k reached the catalog size).
    """

    n_partitions: int
    plan: FresheningPlan
    evaluations: tuple[tuple[int, float, float], ...]
    stopped_by: str


def auto_tune_partitions(catalog: Catalog, bandwidth: float, *,
                         strategy: PartitioningStrategy | str =
                         PartitioningStrategy.PF,
                         cluster_iterations: int = 0,
                         allocation: AllocationPolicy | str =
                         AllocationPolicy.FIXED_BANDWIDTH,
                         start: int = 16,
                         gain_tolerance: float = 0.005,
                         time_budget: float | None = None,
                         ) -> TuningResult:
    """Find the smallest useful partition count by doubling.

    Args:
        catalog: Workload description.
        bandwidth: Sync bandwidth budget per period.
        strategy: Partitioning criterion.
        cluster_iterations: k-means refinement per evaluation.
        allocation: Intra-partition allocation policy.
        start: First k tried (clipped to the catalog size), >= 1.
        gain_tolerance: Stop when a doubling improves PF by less than
            this *relative* amount.
        time_budget: Optional cap in seconds on total planning time;
            the search stops after the step that exceeds it.

    Returns:
        The :class:`TuningResult` carrying the best plan seen.
    """
    if start < 1:
        raise ValidationError(f"start must be >= 1, got {start}")
    if gain_tolerance <= 0.0:
        raise ValidationError(
            f"gain_tolerance must be > 0, got {gain_tolerance}")
    if time_budget is not None and time_budget <= 0.0:
        raise ValidationError(
            f"time_budget must be > 0, got {time_budget}")

    n = catalog.n_elements
    evaluations: list[tuple[int, float, float]] = []
    best_plan: FresheningPlan | None = None
    best_k = 0
    previous_pf = -np.inf
    k = min(start, n)
    stopped_by = "exhausted"
    search_start = time.perf_counter()

    while True:
        step_start = time.perf_counter()
        planner = PartitionedFreshener(
            k, strategy=strategy,
            cluster_iterations=cluster_iterations,
            allocation=allocation)
        plan = planner.plan(catalog, bandwidth)
        elapsed = time.perf_counter() - step_start
        pf = plan.perceived_freshness
        evaluations.append((k, pf, elapsed))
        if best_plan is None or pf > best_plan.perceived_freshness:
            best_plan = plan
            best_k = k

        gain = (pf - previous_pf) / max(abs(previous_pf), 1e-12)
        if np.isfinite(previous_pf) and gain < gain_tolerance:
            stopped_by = "converged"
            break
        previous_pf = pf
        if k >= n:
            stopped_by = "exhausted"
            break
        if (time_budget is not None
                and time.perf_counter() - search_start >= time_budget):
            stopped_by = "time"
            break
        k = min(2 * k, n)

    assert best_plan is not None
    return TuningResult(n_partitions=best_k, plan=best_plan,
                        evaluations=tuple(evaluations),
                        stopped_by=stopped_by)
