"""Vectorized replay of the simulation event tape.

:func:`replay_fastpath` consumes the *same* merged event tape the
per-event reference loop in :meth:`repro.sim.simulation.Simulation.run`
walks, and produces a :class:`~repro.sim.evaluator.SimulationResult`
that is **bit-identical** — not merely statistically equivalent — to
the reference loop's.  The random draws all happen upstream (schedule
phases, update stream, request stream), so the fault-free kernel is
pure replay: it consumes no RNG and only has to reproduce the
reference loop's floating-point operation *order*, element by element.

:func:`replay_fastpath_faulted` extends the same machinery to
*stateless per-attempt loss* — a :class:`~repro.faults.model.FaultPlan`
whose :meth:`~repro.faults.model.FaultPlan.iid_profile` is not None
(one i.i.d. model, no outages; the dispatching `Simulation.run` also
requires no breaker).  Such plans consume exactly one uniform draw
per attempt plus one jitter draw per retry, so the whole fault stream
can be pre-drawn in one vectorized pass and resolved into per-sync
attempt counts and success flags (:func:`resolve_iid_faults`); the
successful syncs are then folded through the fault-free copy-state
machine unchanged.  Stateful plans — Gilbert–Elliott chains, latency
draws (variable bitstream consumption), outage windows, breakers —
stay on the reference loop; :meth:`Simulation.run` dispatches.

How the loop is vectorized
--------------------------

The tape is regrouped per element with a stable sort, which preserves
each element's global event order (updates before syncs before
accesses at equal timestamps, courtesy of the merge's lexsort).  The
per-element monitor state machine is then reconstructed with segment
operations:

* the fresh/stale flag before each event comes from the last
  update/sync strictly before it (a segmented running maximum over
  state-change positions);
* stale-run start times (``stale_since``) carry forward from each
  run-opening update by the same trick;
* fresh-time and age-integral increments are computed for every event
  at once and folded per element with :func:`numpy.bincount`.

Bit-identity notes (all verified by the equivalence suite):

* ``np.bincount`` accumulates its weights as an exact sequential
  left-fold per bin in input order — unlike ``np.sum`` or
  ``np.add.reduceat``, which use pairwise summation and would break
  bit-identity with the loop's ``+=``.
* The reference loop squares *scalars* (``(time - since) ** 2`` on
  ``np.float64`` goes through libm ``pow``), while the monitor's
  ``close()`` squares *arrays* (``** 2`` lowers to ``x*x``).  These
  differ in the last bit for ~0.1% of inputs, so the kernel uses
  ``np.float_power`` (bit-equal to scalar ``pow``) for per-event
  trapezoids and array ``** 2`` for the horizon flush.
* Adding the ``0.0`` increments the loop never performs is safe here:
  no accumulator can hold ``-0.0``.
* ``Generator.random(n)`` produces the same values *and* the same
  post-call state as ``n`` successive scalar ``random()`` calls, and
  ``Generator.uniform(low, high)`` consumes exactly one draw and
  equals ``low + (high - low) * random()`` bit-for-bit — which is
  what lets :func:`resolve_iid_faults` pre-draw an oversized pool,
  rewind the bit generator, and re-advance it by the exact number of
  draws the reference channel would have consumed.

The one sequential piece of the faulted path is the per-period
bandwidth ledger: how many draws a sync consumes depends on where
earlier syncs left the pool cursor and the ledger, so the cursor walk
is a tight O(n_syncs) scalar scan over precomputed attempt tables —
everything per-event and per-attempt around it (outcome draws, retry
columns, trace assembly, accounting folds, the tape replay itself)
is vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.contracts import (
    check_attempt_budget,
    check_sync_conservation,
    contracts_enabled,
)
from repro.errors import SimulationError
from repro.faults.model import PollOutcome
from repro.faults.retry import RetryPolicy
from repro.obs import registry as obs
from repro.sim.events import EventKind
from repro.sim.evaluator import SimulationResult
from repro.workloads.catalog import Catalog

__all__ = ["replay_fastpath", "replay_fastpath_faulted",
           "replay_window_tapes", "resolve_iid_faults"]


def _segment_starts(elements_sorted: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """First-event flag and per-event segment-start position.

    Args:
        elements_sorted: Element ids after the stable per-element sort.

    Returns:
        ``(new_segment, segment_start_of)`` — a boolean mask of
        segment-opening events and, per event, the global position of
        its segment's first event.
    """
    n_events = elements_sorted.shape[0]
    new_segment = np.empty(n_events, dtype=bool)
    new_segment[0] = True
    np.not_equal(elements_sorted[1:], elements_sorted[:-1],
                 out=new_segment[1:])
    start_positions = np.flatnonzero(new_segment)
    segment_ids = np.cumsum(new_segment) - 1
    return new_segment, start_positions[segment_ids]


def _shift_within_segment(values: np.ndarray, new_segment: np.ndarray,
                          fill: float) -> np.ndarray:
    """Previous event's value within each segment (``fill`` at starts)."""
    shifted = np.empty_like(values)
    shifted[0] = fill
    shifted[1:] = values[:-1]
    shifted[new_segment] = fill
    return shifted


def _last_position_at_or_before(candidate_positions: np.ndarray,
                                segment_start_of: np.ndarray
                                ) -> np.ndarray:
    """Segmented running maximum of marked positions (−1 = none yet).

    ``candidate_positions`` holds each event's own global position
    where the event is a mark and −1 elsewhere; the result holds, per
    event, the latest marked position at or before it *within its
    segment*.
    """
    running = np.maximum.accumulate(candidate_positions)
    return np.where(running >= segment_start_of, running, -1)


@dataclass
class _TapeReplay:
    """Everything the copy-state machine measures from one tape.

    Per-element arrays have one entry per element; the ``*_global``
    flag arrays have one entry per tape event in *tape* order (None
    for an empty tape).  Shared by the fault-free, faulted and
    window-batched assembly paths.
    """

    element_freshness: np.ndarray
    element_age: np.ndarray
    poll_counts: np.ndarray
    changed_poll_counts: np.ndarray
    access_counts: np.ndarray
    n_updates: int
    n_syncs: int
    n_accesses: int
    useful_syncs: int
    fresh_accesses: int
    bandwidth_used: float
    fresh_before_global: np.ndarray | None
    run_start_global: np.ndarray | None
    becomes_fresh_global: np.ndarray | None
    changed_sync_global: np.ndarray | None


def _replay_tape(n_elements: int, sizes: np.ndarray,
                 times: np.ndarray, elements: np.ndarray,
                 kinds: np.ndarray, *, horizon: float) -> _TapeReplay:
    """Replay one merged event tape through the segment kernel.

    Args:
        n_elements: Number of mirrored elements (tape element ids may
            be tiled copies, as in the window batch path).
        sizes: Per-element transfer sizes, in size units; shape
            ``(n_elements,)``.
        times: Merged event times, globally time-ordered, in clock
            units.
        elements: Element id per merged event.
        kinds: :class:`~repro.sim.events.EventKind` per merged event.
        horizon: Total simulated clock time per element, in clock
            units.

    Returns:
        The :class:`_TapeReplay` measurements, bit-identical to the
        reference loop's for the same tape.
    """
    n_events = int(times.shape[0])
    update_kind = int(EventKind.UPDATE)
    sync_kind = int(EventKind.SYNC)

    if n_events:
        order = np.argsort(elements, kind="stable")
        element_of = elements[order]
        time_of = times[order]
        kind_of = kinds[order]
        positions = np.arange(n_events, dtype=np.int64)

        new_segment, segment_start_of = _segment_starts(element_of)
        segment_start_positions = np.flatnonzero(new_segment)
        segment_end_positions = np.append(
            segment_start_positions[1:] - 1, n_events - 1)
        present = element_of[segment_start_positions]

        previous_time = _shift_within_segment(time_of, new_segment, 0.0)
        if (time_of < previous_time).any():
            raise SimulationError("event tape is not time-ordered")
        elapsed = time_of - previous_time

        is_update = kind_of == update_kind
        is_sync = kind_of == sync_kind
        is_access = ~is_update & ~is_sync

        # --- monitor state before each event -------------------------
        # The fresh flag before event k is decided by the last update
        # or sync strictly before k in its segment (fresh initially).
        state_change_positions = np.where(is_update | is_sync,
                                          positions, -1)
        last_state_change = _last_position_at_or_before(
            state_change_positions, segment_start_of)
        previous_state_change = np.empty_like(last_state_change)
        previous_state_change[0] = -1
        previous_state_change[1:] = last_state_change[:-1]
        previous_state_change = np.where(
            previous_state_change >= segment_start_of,
            previous_state_change, -1)
        fresh_before = ((previous_state_change < 0)
                        | (kind_of[np.maximum(previous_state_change, 0)]
                           == sync_kind))

        # The first unseen update opens a stale run and pins
        # stale_since; later updates extend it without resetting.
        run_start = is_update & fresh_before
        run_start_positions = np.where(run_start, positions, -1)
        # Inclusive-at-k is safe: a run-starting event is itself fresh
        # and never reads `since`.
        since_position = _last_position_at_or_before(
            run_start_positions, segment_start_of)
        stale_since = time_of[np.maximum(since_position, 0)]

        # --- per-event increments, folded per element ----------------
        # The reference loop squares np.float64 *scalars* (libm pow);
        # np.float_power is the array op that matches it bit-for-bit,
        # where array ** 2 (x*x) would not.
        end_offset = time_of - stale_since
        start_offset = previous_time - stale_since
        age_increment = 0.5 * (np.float_power(end_offset, 2.0)
                               - np.float_power(start_offset, 2.0))
        fresh_time = np.bincount(
            element_of, weights=np.where(fresh_before, elapsed, 0.0),
            minlength=n_elements)
        age_integral = np.bincount(
            element_of,
            weights=np.where(fresh_before, 0.0, age_increment),
            minlength=n_elements)

        # --- final state per element, for the horizon flush ----------
        last_time = np.zeros(n_elements)
        last_time[present] = time_of[segment_end_positions]
        final_state_change = last_state_change[segment_end_positions]
        fresh_final = np.ones(n_elements, dtype=bool)
        fresh_final[present] = (
            (final_state_change < 0)
            | (kind_of[np.maximum(final_state_change, 0)] == sync_kind))
        final_since_position = since_position[segment_end_positions]
        stale_since_final = np.zeros(n_elements)
        stale_since_final[present] = np.where(
            final_since_position >= 0,
            time_of[np.maximum(final_since_position, 0)], 0.0)

        # --- mirror bookkeeping: polls, changed polls, accesses ------
        # Version arithmetic is integer-exact: the source version of
        # an element at any event equals its update count so far, and
        # a poll finds a change iff that count grew since its previous
        # poll (the copy starts at version 0 = zero updates).
        updates_so_far = np.cumsum(is_update)
        updates_before = ((updates_so_far - is_update)
                          - (updates_so_far[segment_start_of]
                             - is_update[segment_start_of]))
        sync_positions = np.flatnonzero(is_sync)
        sync_elements = element_of[sync_positions]
        sync_versions = updates_before[sync_positions]
        previous_versions = np.zeros_like(sync_versions)
        if sync_versions.shape[0]:
            previous_versions[1:] = sync_versions[:-1]
            first_poll = np.empty(sync_versions.shape[0], dtype=bool)
            first_poll[0] = True
            np.not_equal(sync_elements[1:], sync_elements[:-1],
                         out=first_poll[1:])
            previous_versions[first_poll] = 0
        changed = sync_versions > previous_versions

        poll_counts = np.bincount(
            sync_elements, minlength=n_elements).astype(np.int64)
        changed_poll_counts = np.bincount(
            sync_elements[changed],
            minlength=n_elements).astype(np.int64)
        useful_syncs = int(np.count_nonzero(changed))
        n_syncs = int(sync_positions.shape[0])
        n_updates = int(np.count_nonzero(is_update))

        access_positions = np.flatnonzero(is_access)
        access_elements = element_of[access_positions]
        # An access sees fresh data iff the copy version equals the
        # source version, which is exactly the monitor's flag.
        access_fresh = fresh_before[access_positions]
        n_accesses = int(access_positions.shape[0])
        fresh_accesses = int(np.count_nonzero(access_fresh))
        access_counts = np.bincount(
            access_elements, minlength=n_elements).astype(np.int64)

        # Bandwidth is a sequential float fold over syncs in *global*
        # time order (the mirror accumulates across elements as the
        # tape plays); a single-bin bincount reproduces the fold.
        global_sync = kinds == sync_kind
        sync_sizes = sizes[elements[global_sync]]
        bandwidth_used = float(np.bincount(
            np.zeros(sync_sizes.shape[0], dtype=np.intp),
            weights=sync_sizes, minlength=1)[0])

        # Scatter the sorted-order flags back to tape order for the
        # telemetry series and the window-batch split.
        fresh_before_global = np.empty(n_events, dtype=bool)
        fresh_before_global[order] = fresh_before
        run_start_global = np.empty(n_events, dtype=bool)
        run_start_global[order] = run_start
        becomes_fresh_global = np.empty(n_events, dtype=bool)
        becomes_fresh_global[order] = is_sync & ~fresh_before
        changed_sync_global = np.zeros(n_events, dtype=bool)
        changed_sync_global[order[sync_positions[changed]]] = True
    else:  # an empty tape: every copy stays fresh to the horizon
        fresh_time = np.zeros(n_elements)
        age_integral = np.zeros(n_elements)
        last_time = np.zeros(n_elements)
        fresh_final = np.ones(n_elements, dtype=bool)
        stale_since_final = np.zeros(n_elements)
        poll_counts = np.zeros(n_elements, dtype=np.int64)
        changed_poll_counts = np.zeros(n_elements, dtype=np.int64)
        access_counts = np.zeros(n_elements, dtype=np.int64)
        useful_syncs = n_syncs = n_updates = 0
        n_accesses = fresh_accesses = 0
        bandwidth_used = 0.0
        fresh_before_global = None
        run_start_global = None
        becomes_fresh_global = None
        changed_sync_global = None

    # --- horizon flush: mirrors FreshnessMonitor.close() exactly ----
    # (array ** 2 here on purpose — close() squares arrays).
    remaining = horizon - last_time
    if (remaining < -1e-9).any():
        raise SimulationError("events were recorded beyond the horizon")
    fresh_time += np.maximum(remaining, 0.0) * fresh_final
    stale = ~fresh_final & (remaining > 0.0)
    if stale.any():
        since = stale_since_final[stale]
        start = last_time[stale]
        age_integral[stale] += 0.5 * (
            (horizon - since) ** 2 - (start - since) ** 2)

    return _TapeReplay(
        element_freshness=fresh_time / horizon,
        element_age=age_integral / horizon,
        poll_counts=poll_counts,
        changed_poll_counts=changed_poll_counts,
        access_counts=access_counts,
        n_updates=n_updates,
        n_syncs=n_syncs,
        n_accesses=n_accesses,
        useful_syncs=useful_syncs,
        fresh_accesses=fresh_accesses,
        bandwidth_used=bandwidth_used,
        fresh_before_global=fresh_before_global,
        run_start_global=run_start_global,
        becomes_fresh_global=becomes_fresh_global,
        changed_sync_global=changed_sync_global,
    )


# seedflow: pair=repro.sim.simulation.Simulation.run
def replay_fastpath(catalog: Catalog, frequencies: np.ndarray,
                    times: np.ndarray, elements: np.ndarray,
                    kinds: np.ndarray, *, horizon: float,
                    period_length: float, n_periods: float,
                    ledger_time_offset: float = 0.0
                    ) -> SimulationResult:
    """Replay a merged fault-free event tape without the Python loop.

    Args:
        catalog: The simulated workload.
        frequencies: The schedule's per-element sync frequencies, in
            syncs per period.
        times: Merged event times, globally time-ordered.
        elements: Element id per merged event.
        kinds: :class:`~repro.sim.events.EventKind` per merged event.
        horizon: Total simulated clock time.
        period_length: Clock length of one sync period.
        n_periods: Periods simulated (may be fractional).
        ledger_time_offset: Added to event times when feeding the
            freshness ledger, in clock units (whole periods) — the
            quiet-path analogue of the faulted kernel's
            ``fault_time_offset``, so per-period manager runs stamp
            the ledger on the global clock.

    Returns:
        A :class:`SimulationResult` bit-identical to the reference
        loop's for the same tape.
    """
    sizes = np.asarray(catalog.sizes, dtype=float)
    replay = _replay_tape(catalog.n_elements, sizes, times, elements,
                          kinds, horizon=horizon)
    p = catalog.access_probabilities
    perceived_by_accesses = (
        replay.fresh_accesses / replay.n_accesses
        if replay.n_accesses
        else float(p @ replay.element_freshness))

    if obs.telemetry_enabled():
        _emit_period_series(
            times, elements, kinds, sizes,
            replay.fresh_before_global, replay.run_start_global,
            replay.becomes_fresh_global,
            catalog.n_elements, period_length=period_length,
            n_periods=n_periods, planned=float(sizes @ frequencies))
        _emit_monitor_close(replay.element_freshness,
                            replay.element_age, replay.n_accesses,
                            replay.fresh_accesses, horizon)
        _emit_ledger(times, elements, kinds,
                     replay.run_start_global,
                     time_offset=ledger_time_offset)
        obs.counter_add("sim.runs")
        obs.counter_add("sim.fastpath_runs")
        obs.counter_add("sim.syncs", replay.n_syncs)
        obs.counter_add("sim.useful_syncs", replay.useful_syncs)
        obs.counter_add("sim.updates", replay.n_updates)
        obs.counter_add("sim.accesses", replay.n_accesses)
        obs.gauge_set("sim.bandwidth_used", replay.bandwidth_used)
        obs.gauge_set("sim.monitored_perceived_freshness",
                      float(perceived_by_accesses))
        obs.gauge_set("sim.monitored_general_freshness",
                      float(replay.element_freshness.mean()))

    return SimulationResult(
        catalog=catalog,
        frequencies=frequencies,
        horizon=horizon,
        period_length=period_length,
        n_updates=replay.n_updates,
        n_syncs=replay.n_syncs,
        n_accesses=replay.n_accesses,
        useful_syncs=replay.useful_syncs,
        bandwidth_used=replay.bandwidth_used,
        monitored_perceived_freshness=float(perceived_by_accesses),
        monitored_time_perceived=float(p @ replay.element_freshness),
        monitored_general_freshness=float(
            replay.element_freshness.mean()),
        element_time_freshness=replay.element_freshness,
        element_time_age=replay.element_age,
        monitored_perceived_age=float(p @ replay.element_age),
        access_counts=replay.access_counts,
        poll_counts=replay.poll_counts,
        changed_poll_counts=replay.changed_poll_counts,
        attempted_polls=replay.n_syncs,
        attempted_bandwidth=replay.bandwidth_used,
    )


@dataclass
class FaultResolution:
    """Per-sync outcome of the vectorized i.i.d. fault resolution.

    Arrays have one entry per *scheduled* sync in tape order.

    Attributes:
        attempts: Attempts made per sync (0 = budget-denied outright).
        success: Whether the sync's final attempt succeeded.
        denied: Whether the sync was denied before its first attempt.
        offsets: Each sync's first draw position in the pre-drawn
            pool (meaningful only where ``attempts > 0``).
        consumed: RNG draws consumed per sync (``2·attempts − 1``
            with a retry policy in force, ``attempts`` capped at 1
            without; 0 for denied syncs).
        denied_retries: Retries refused by the period budget, total.
        trace: The reference channel's per-attempt trace —
            ``(attempt_time, element, outcome_value)`` — or None when
            not recorded.
    """

    attempts: np.ndarray
    success: np.ndarray
    denied: np.ndarray
    offsets: np.ndarray
    consumed: np.ndarray
    denied_retries: int
    trace: list[tuple[float, int, str]] | None


# seedflow: pair=repro.faults.channel.SyncChannel.sync
def resolve_iid_faults(sync_times: np.ndarray,
                       sync_elements: np.ndarray,
                       sizes: np.ndarray, *,
                       failure_probability: float,
                       failure_outcome: PollOutcome,
                       retry_policy: RetryPolicy | None,
                       bandwidth_budget: float | None,
                       period_length: float,
                       rng: np.random.Generator,
                       record_trace: bool = False
                       ) -> FaultResolution:
    """Resolve every scheduled sync's fault outcome in one pass.

    Pre-draws an oversized uniform pool from ``rng`` (one vectorized
    call), classifies every possible attempt start position into
    "first success at attempt k / no success", then walks the syncs
    once to place each sync's draw cursor and charge its attempts
    against the per-period bandwidth ledger — the only inherently
    sequential part, a tight O(n_syncs) scalar scan.  Finally the bit
    generator is rewound and re-advanced by exactly the number of
    draws the reference :class:`~repro.faults.channel.SyncChannel`
    would have consumed, so downstream draws see an identical stream.

    Args:
        sync_times: Scheduled sync times *on the fault clock* (local
            time plus any fault offset), in clock units, nondecreasing.
        sync_elements: Element index per scheduled sync.
        sizes: Per-element transfer sizes, in size units.
        failure_probability: Per-attempt failure probability in
            ``[0, 1]`` (dimensionless).
        failure_outcome: Outcome reported on a failed attempt (must
            be retryable; the dispatcher guarantees this).
        retry_policy: Backoff policy, or None to disable retries.
        bandwidth_budget: Per-period attempt budget B in size units
            per period, or None to disable the ledger.
        period_length: Clock length of one budget period, > 0.
        rng: The fault generator (``fault_rng`` or the shared
            workload generator), advanced exactly as the reference
            channel would.
        record_trace: When True, build the reference-identical
            per-attempt trace (costs a Python loop over attempts).

    Returns:
        The per-sync :class:`FaultResolution`.
    """
    m = int(sync_times.shape[0])
    max_attempts = (1 if retry_policy is None
                    else retry_policy.max_retries + 1)
    width = 2 * max_attempts - 1

    if m == 0:
        empty = np.zeros(0, dtype=np.int64)
        return FaultResolution(
            attempts=empty, success=np.zeros(0, dtype=bool),
            denied=np.zeros(0, dtype=bool), offsets=empty.copy(),
            consumed=empty.copy(), denied_retries=0,
            trace=[] if record_trace else None)

    state = rng.bit_generator.state
    pool = rng.random(m * width + width)
    pool_span = m * width
    # ok_cols[t, k]: would the (k+1)-th attempt of a sync whose first
    # draw sits at pool position t succeed?  Attempt draws are spaced
    # two apart because each retry interleaves one jitter draw.
    fail = pool < failure_probability
    ok_cols = np.empty((pool_span + 1, max_attempts), dtype=bool)
    for k in range(max_attempts):
        ok_cols[:, k] = ~fail[2 * k: 2 * k + pool_span + 1]
    any_ok = ok_cols.any(axis=1)
    # Attempts the retry policy would allow from each position: stop
    # at the first success, else exhaust all max_attempts columns.
    desired = np.where(any_ok, ok_cols.argmax(axis=1) + 1,
                       max_attempts)

    # --- the ledger walk (the one sequential piece) ------------------
    desired_list = desired.tolist()
    any_ok_list = any_ok.tolist()
    size_list = sizes[sync_elements].tolist()
    period_list = (sync_times / period_length).astype(np.int64).tolist()
    out_attempts = [0] * m
    out_success = [False] * m
    out_offsets = [0] * m
    denied_retries = 0
    cursor = 0
    current_period = 0
    spent = 0.0
    budget = bandwidth_budget
    for i in range(m):
        period = period_list[i]
        if period > current_period:
            current_period = period
            spent = 0.0
        size = size_list[i]
        if budget is not None and spent + size > budget:
            continue  # denied outright: zero attempts, zero draws
        goal = desired_list[cursor]
        out_offsets[i] = cursor
        if budget is None:
            attempts = goal
        else:
            attempts = 1
            spent += size
            while attempts < goal:
                if spent + size > budget:
                    denied_retries += 1
                    break
                attempts += 1
                spent += size
        out_attempts[i] = attempts
        out_success[i] = any_ok_list[cursor] and attempts == goal
        cursor += 2 * attempts - 1

    attempts_arr = np.asarray(out_attempts, dtype=np.int64)
    success_arr = np.asarray(out_success, dtype=bool)
    offsets_arr = np.asarray(out_offsets, dtype=np.int64)
    made = attempts_arr > 0
    consumed_arr = np.where(made, 2 * attempts_arr - 1, 0)

    # Rewind the oversized pool draw, then advance by exactly what the
    # reference channel consumed (array and scalar draws advance the
    # PCG64 state identically).
    rng.bit_generator.state = state
    if cursor:
        # Data-dependent on purpose: re-advances the rewound stream
        # by exactly the reference channel's consumption, so this
        # branch *restores* draw parity rather than breaking it.
        rng.random(cursor)  # freshlint: disable=FL013

    trace: list[tuple[float, int, str]] | None = None
    if record_trace:
        trace = _build_trace(
            sync_times, sync_elements, attempts_arr, success_arr,
            offsets_arr, pool, failure_outcome=failure_outcome,
            retry_policy=retry_policy)

    return FaultResolution(
        attempts=attempts_arr, success=success_arr,
        denied=~made, offsets=offsets_arr, consumed=consumed_arr,
        denied_retries=denied_retries, trace=trace)


def _build_trace(sync_times: np.ndarray, sync_elements: np.ndarray,
                 attempts: np.ndarray, success: np.ndarray,
                 offsets: np.ndarray, pool: np.ndarray, *,
                 failure_outcome: PollOutcome,
                 retry_policy: RetryPolicy | None
                 ) -> list[tuple[float, int, str]]:
    """Reconstruct the reference channel's per-attempt trace.

    Retry timestamps replay the decorrelated-jitter chain: each delay
    is ``min(base + (max(3·prev, base) − base) · u, max_delay)`` with
    ``u`` the jitter draw interleaved between the attempt draws —
    bit-equal to ``rng.uniform(base, anchor)`` in the reference.
    """
    trace: list[tuple[float, int, str]] = []
    ok_value = PollOutcome.OK.value
    fail_value = failure_outcome.value
    base = retry_policy.base_delay if retry_policy is not None else 0.0
    cap = retry_policy.max_delay if retry_policy is not None else 0.0
    pool_list = pool.tolist()
    times_list = sync_times.tolist()
    elements_list = sync_elements.tolist()
    attempts_list = attempts.tolist()
    success_list = success.tolist()
    offsets_list = offsets.tolist()
    for i in range(len(times_list)):
        n_attempts = attempts_list[i]
        if n_attempts == 0:
            continue
        element = int(elements_list[i])
        time = times_list[i]
        offset = offsets_list[i]
        delay = 0.0
        for k in range(n_attempts):
            last = k == n_attempts - 1
            value = (ok_value if last and success_list[i]
                     else fail_value)
            trace.append((time, element, value))
            if not last:
                jitter = pool_list[offset + 2 * k + 1]
                anchor = max(3.0 * delay, base)
                delay = min(base + (anchor - base) * jitter, cap)
                time += delay
    return trace


# seedflow: pair=repro.sim.simulation.Simulation.run
def replay_fastpath_faulted(catalog: Catalog, frequencies: np.ndarray,
                            times: np.ndarray, elements: np.ndarray,
                            kinds: np.ndarray, *, horizon: float,
                            period_length: float, n_periods: float,
                            failure_probability: float,
                            failure_outcome: PollOutcome,
                            rng: np.random.Generator,
                            retry_policy: RetryPolicy | None = None,
                            bandwidth_budget: float | None = None,
                            fault_time_offset: float = 0.0,
                            record_fault_trace: bool = False
                            ) -> SimulationResult:
    """Replay a tape under stateless i.i.d. per-attempt loss.

    Resolves every scheduled sync's fate with
    :func:`resolve_iid_faults`, then replays the surviving tape —
    all updates and accesses plus the *successful* syncs — through
    the fault-free segment kernel.  Bit-identical to the reference
    loop with a :class:`~repro.faults.channel.SyncChannel`, including
    attempt/failure accounting, the fault trace and the telemetry
    period series.

    Args:
        catalog: The simulated workload.
        frequencies: Per-element sync frequencies, in syncs/period.
        times: Merged event times, globally time-ordered.
        elements: Element id per merged event.
        kinds: :class:`~repro.sim.events.EventKind` per merged event.
        horizon: Total simulated clock time.
        period_length: Clock length of one sync period.
        n_periods: Periods simulated (may be fractional).
        failure_probability: Per-attempt loss probability in [0, 1].
        failure_outcome: Outcome reported on a failed attempt.
        rng: The fault generator (shared or dedicated).
        retry_policy: Backoff policy, or None to disable retries.
        bandwidth_budget: Per-period attempt budget B in size units,
            or None to disable the ledger.
        fault_time_offset: Added to event times on the fault clock,
            in clock units (whole periods).
        record_fault_trace: Whether to carry the per-attempt trace.

    Returns:
        A :class:`SimulationResult` bit-identical to the reference
        loop's for the same tape and fault stream.
    """
    n_elements = catalog.n_elements
    sizes = np.asarray(catalog.sizes, dtype=float)
    sync_kind = int(EventKind.SYNC)
    sync_positions = np.flatnonzero(kinds == sync_kind)
    sync_elements = elements[sync_positions]
    sync_local_times = times[sync_positions]

    resolution = resolve_iid_faults(
        sync_local_times + fault_time_offset, sync_elements, sizes,
        failure_probability=failure_probability,
        failure_outcome=failure_outcome, retry_policy=retry_policy,
        bandwidth_budget=bandwidth_budget,
        period_length=period_length, rng=rng,
        record_trace=record_fault_trace)

    keep = np.ones(times.shape[0], dtype=bool)
    keep[sync_positions[~resolution.success]] = False
    replay = _replay_tape(n_elements, sizes, times[keep],
                          elements[keep], kinds[keep],
                          horizon=horizon)

    accounting = _FaultAccounting.from_resolution(
        resolution, sync_elements, sizes, n_elements)
    p = catalog.access_probabilities
    perceived_by_accesses = (
        replay.fresh_accesses / replay.n_accesses
        if replay.n_accesses
        else float(p @ replay.element_freshness))

    if obs.telemetry_enabled():
        _emit_fault_counters(accounting, failure_outcome)
        n_buckets = max(int(np.ceil(n_periods)) - 1, 0) + 1
        sync_buckets = (sync_local_times
                        / period_length).astype(np.int64)
        failed_per_period = np.bincount(
            sync_buckets,
            weights=(resolution.attempts - resolution.success),
            minlength=n_buckets).astype(np.int64)
        retries_per_period = np.bincount(
            sync_buckets,
            weights=(resolution.attempts
                     - (resolution.attempts > 0)),
            minlength=n_buckets).astype(np.int64)
        _emit_period_series(
            times[keep], elements[keep], kinds[keep], sizes,
            replay.fresh_before_global, replay.run_start_global,
            replay.becomes_fresh_global,
            n_elements, period_length=period_length,
            n_periods=n_periods, planned=float(sizes @ frequencies),
            failed_per_period=failed_per_period,
            retries_per_period=retries_per_period)
        _emit_monitor_close(replay.element_freshness,
                            replay.element_age, replay.n_accesses,
                            replay.fresh_accesses, horizon)
        _emit_ledger(times[keep], elements[keep], kinds[keep],
                     replay.run_start_global,
                     time_offset=fault_time_offset)
        obs.counter_add("sim.runs")
        obs.counter_add("sim.fastpath_faulted_runs")
        obs.counter_add("sim.syncs", replay.n_syncs)
        obs.counter_add("sim.useful_syncs", replay.useful_syncs)
        obs.counter_add("sim.updates", replay.n_updates)
        obs.counter_add("sim.accesses", replay.n_accesses)
        obs.gauge_set("sim.bandwidth_used", replay.bandwidth_used)
        obs.gauge_set("sim.monitored_perceived_freshness",
                      float(perceived_by_accesses))
        obs.gauge_set("sim.monitored_general_freshness",
                      float(replay.element_freshness.mean()))
        obs.gauge_set("sim.attempted_bandwidth",
                      accounting.attempted_bandwidth)
        obs.gauge_set(
            "sim.poll_failure_fraction",
            (accounting.failed_polls / accounting.attempted_polls
             if accounting.attempted_polls else 0.0))

    return SimulationResult(
        catalog=catalog,
        frequencies=frequencies,
        horizon=horizon,
        period_length=period_length,
        n_updates=replay.n_updates,
        n_syncs=replay.n_syncs,
        n_accesses=replay.n_accesses,
        useful_syncs=replay.useful_syncs,
        bandwidth_used=replay.bandwidth_used,
        monitored_perceived_freshness=float(perceived_by_accesses),
        monitored_time_perceived=float(p @ replay.element_freshness),
        monitored_general_freshness=float(
            replay.element_freshness.mean()),
        element_time_freshness=replay.element_freshness,
        element_time_age=replay.element_age,
        monitored_perceived_age=float(p @ replay.element_age),
        access_counts=replay.access_counts,
        poll_counts=replay.poll_counts,
        changed_poll_counts=replay.changed_poll_counts,
        attempted_polls=accounting.attempted_polls,
        failed_polls=accounting.failed_polls,
        unreachable_polls=0,
        retries=accounting.retries,
        breaker_skips=0,
        denied_polls=accounting.denied_polls,
        attempted_bandwidth=accounting.attempted_bandwidth,
        attempted_poll_counts=accounting.attempted_poll_counts,
        failed_poll_counts=accounting.failed_poll_counts,
        unreachable_poll_counts=np.zeros(n_elements, dtype=np.int64),
        unreachable_elements=None,
        fault_trace=(tuple(resolution.trace)
                     if record_fault_trace
                     and resolution.trace is not None else None),
    )


@dataclass
class _FaultAccounting:
    """Channel-equivalent attempt/failure accounting for one tape."""

    attempted_polls: int
    failed_polls: int
    retries: int
    denied_polls: int
    denied_retries: int
    failed_syncs: int
    attempted_bandwidth: float
    attempted_poll_counts: np.ndarray
    failed_poll_counts: np.ndarray

    @classmethod
    def from_resolution(cls, resolution: FaultResolution,
                        sync_elements: np.ndarray, sizes: np.ndarray,
                        n_elements: int) -> "_FaultAccounting":
        attempts = resolution.attempts
        attempted_polls = int(attempts.sum())
        n_success = int(np.count_nonzero(resolution.success))
        made = int(np.count_nonzero(attempts))
        denied_polls = int(np.count_nonzero(resolution.denied))
        # Every attempt burns its element's size; reproduce the
        # channel's sequential += with a flat per-attempt fold.
        attempt_sizes = np.repeat(sizes[sync_elements], attempts)
        attempted_bandwidth = float(np.bincount(
            np.zeros(attempt_sizes.shape[0], dtype=np.intp),
            weights=attempt_sizes, minlength=1)[0])
        attempted_poll_counts = np.bincount(
            sync_elements, weights=attempts,
            minlength=n_elements).astype(np.int64)
        failed_poll_counts = np.bincount(
            sync_elements, weights=attempts - resolution.success,
            minlength=n_elements).astype(np.int64)
        return cls(
            attempted_polls=attempted_polls,
            failed_polls=attempted_polls - n_success,
            retries=attempted_polls - made,
            denied_polls=denied_polls,
            denied_retries=resolution.denied_retries,
            failed_syncs=made - n_success,
            attempted_bandwidth=attempted_bandwidth,
            attempted_poll_counts=attempted_poll_counts,
            failed_poll_counts=failed_poll_counts,
        )


def _emit_fault_counters(accounting: _FaultAccounting,
                         failure_outcome: PollOutcome) -> None:
    """Emit the ``faults.*`` counter totals the channel would have.

    The reference channel bumps each counter once per attempt; the
    aggregated adds land on the same totals.  Zero totals are skipped
    so counters that never fired stay absent, as in the reference.
    """
    if accounting.failed_polls:
        obs.counter_add(f"faults.{failure_outcome.value}",
                        accounting.failed_polls)
    if accounting.retries:
        obs.counter_add("faults.retries", accounting.retries)
    if accounting.denied_polls:
        obs.counter_add("faults.denied_polls",
                        accounting.denied_polls)
    if accounting.denied_retries:
        obs.counter_add("faults.denied_retries",
                        accounting.denied_retries)
    if accounting.failed_syncs:
        obs.counter_add("faults.failed_syncs",
                        accounting.failed_syncs)


def _emit_monitor_close(element_freshness: np.ndarray,
                        element_age: np.ndarray, n_accesses: int,
                        fresh_accesses: int, horizon: float) -> None:
    """Emit the monitor's close-time gauges and event."""
    obs.gauge_set("monitor.mean_time_freshness",
                  float(element_freshness.mean()))
    obs.gauge_set("monitor.mean_time_age",
                  float(element_age.mean()))
    obs.event("monitor.close", horizon=horizon,
              accesses=n_accesses,
              fresh_accesses=fresh_accesses,
              fresh_fraction=(fresh_accesses / n_accesses
                              if n_accesses else 1.0))


def _fold_ledger_bulk(fold, elements: np.ndarray,
                      times: np.ndarray) -> None:
    """Fold one kind of ledger event per element through the cap.

    Replicates :func:`repro.obs.registry.element_label` in bulk —
    indices at or past the cap share the ``"overflow"`` bucket — then
    reduces each bucket to (latest time, event count) before making
    at most ``cap + 1`` scalar ``fold`` calls.  Because ledger folds
    are order-independent (max timestamps, summed counts), this lands
    on the exact ledger the reference loop's per-event scalar calls
    build.
    """
    if elements.shape[0] == 0:
        return
    elements = elements.astype(np.int64, copy=False)
    cap = obs.max_element_labels()
    buckets = np.minimum(elements, cap) if cap > 0 else elements
    n_buckets = int(buckets.max()) + 1
    counts = np.bincount(buckets, minlength=n_buckets)
    latest = np.full(n_buckets, -np.inf)
    np.maximum.at(latest, buckets, times)
    for index in np.flatnonzero(counts):
        label: int | str = ("overflow" if cap > 0 and index >= cap
                            else int(index))
        fold(label, float(latest[index]), int(counts[index]))


def _emit_ledger(times: np.ndarray, elements: np.ndarray,
                 kinds: np.ndarray,
                 run_start_global: np.ndarray | None, *,
                 time_offset: float = 0.0) -> None:
    """Feed the freshness ledger from a (kept) replay tape.

    Mirrors the reference loop's per-event hooks: every sync still on
    the tape is a *successful* refresh (the faulted paths drop failed
    syncs before replay), and every run-opening update
    (``run_start``) opens a stale run.  Times shift by
    ``time_offset`` onto the global fault clock, matching the
    ``time + fault_time_offset`` stamps the reference loop records.
    """
    if times.shape[0] == 0 or run_start_global is None:
        return
    ledger = obs.get_registry().ledger
    sync_mask = kinds == int(EventKind.SYNC)
    _fold_ledger_bulk(ledger.record_refresh, elements[sync_mask],
                      times[sync_mask] + time_offset)
    _fold_ledger_bulk(ledger.record_stale,
                      elements[run_start_global],
                      times[run_start_global] + time_offset)


def _emit_period_series(times: np.ndarray, elements: np.ndarray,
                        kinds: np.ndarray, sizes: np.ndarray,
                        fresh_before_global: np.ndarray | None,
                        run_start_global: np.ndarray | None,
                        becomes_fresh_global: np.ndarray | None,
                        n_elements: int, *,
                        period_length: float, n_periods: float,
                        planned: float,
                        failed_per_period: np.ndarray | None = None,
                        retries_per_period: np.ndarray | None = None
                        ) -> None:
    """Emit the per-period ``"sim.period"`` telemetry series.

    Reproduces the reference loop's :class:`_PeriodTracker` output:
    one event per completed (or final partial) period with the same
    integer counts, the same sequentially folded bandwidth, and the
    mirror's instantaneous mean freshness at each period boundary.
    ``failed_per_period`` / ``retries_per_period`` carry the faulted
    path's per-period attempt accounting (zeros when absent).
    """
    last_period = max(int(np.ceil(n_periods)) - 1, 0)
    n_buckets = last_period + 1
    n_events = int(times.shape[0])

    if n_events:
        assert (fresh_before_global is not None
                and run_start_global is not None
                and becomes_fresh_global is not None)
        period_index = (times / period_length).astype(np.int64)
        update_kind = int(EventKind.UPDATE)
        sync_kind = int(EventKind.SYNC)
        global_update = kinds == update_kind
        global_sync = kinds == sync_kind
        global_access = ~global_update & ~global_sync

        def per_period(mask: np.ndarray) -> np.ndarray:
            return np.bincount(period_index[mask], minlength=n_buckets)

        syncs_per_period = per_period(global_sync)
        updates_per_period = per_period(global_update)
        accesses_per_period = per_period(global_access)
        fresh_accesses_per_period = per_period(
            global_access & fresh_before_global)
        bandwidth_per_period = np.bincount(
            period_index[global_sync],
            weights=sizes[elements[global_sync]], minlength=n_buckets)

        # Instantaneous fresh-copy count after each event: −1 when a
        # run-opening update stales a copy, +1 when a sync refreshes
        # a stale one.
        delta = np.zeros(n_events, dtype=np.int64)
        delta[run_start_global] = -1
        delta[becomes_fresh_global] = 1
        fresh_count = n_elements + np.cumsum(delta)
        boundary = np.searchsorted(period_index,
                                   np.arange(n_buckets), side="right") - 1
        mean_freshness = np.where(
            boundary >= 0,
            fresh_count[np.maximum(boundary, 0)], n_elements
        ) / n_elements
    else:
        zeros = np.zeros(n_buckets, dtype=np.int64)
        syncs_per_period = updates_per_period = zeros
        accesses_per_period = fresh_accesses_per_period = zeros
        bandwidth_per_period = np.zeros(n_buckets)
        mean_freshness = np.ones(n_buckets)

    if failed_per_period is None:
        failed_per_period = np.zeros(n_buckets, dtype=np.int64)
    if retries_per_period is None:
        retries_per_period = np.zeros(n_buckets, dtype=np.int64)

    for period in range(n_buckets):
        accesses = int(accesses_per_period[period])
        fresh = int(fresh_accesses_per_period[period])
        bandwidth = float(bandwidth_per_period[period])
        utilization = bandwidth / planned if planned else 0.0
        obs.event(
            "sim.period",
            period=obs.element_label(period),
            syncs=int(syncs_per_period[period]),
            bandwidth=bandwidth,
            budget_utilization=utilization,
            updates=int(updates_per_period[period]),
            accesses=accesses,
            fresh_fraction=(fresh / accesses if accesses else 1.0),
            mean_freshness=float(mean_freshness[period]),
            failed_polls=int(failed_per_period[period]),
            retries=int(retries_per_period[period]),
        )
        obs.counter_add("sim.periods")
        obs.gauge_set("sim.budget_utilization", utilization)


def replay_window_tapes(catalog: Catalog, frequencies: np.ndarray,
                        tapes: list[tuple[np.ndarray, np.ndarray,
                                          np.ndarray]], *,
                        period_length: float,
                        first_global_period: int,
                        fault_args: dict | None = None
                        ) -> tuple[list[SimulationResult], list[int]]:
    """Replay several consecutive one-period tapes in one kernel call.

    The window-batched adaptive manager generates one event tape per
    period (preserving the per-period draw order, so common-random-
    number seeds line up with per-period runs), then hands the whole
    replan window here.  Each period's elements are *tiled* — period
    ``j`` maps element ``e`` to segment id ``e + j·n`` — so one
    segmented replay over ``W·n`` virtual elements reproduces ``W``
    independent single-period replays, bit for bit: every per-element
    fold sees exactly the events, in exactly the order, the
    per-period kernel would have seen.

    Args:
        catalog: The simulated workload (all periods share it).
        frequencies: Per-element sync frequencies, in syncs/period
            (constant within a replan window by construction).
        tapes: One ``(times, elements, kinds)`` merged tape per
            period, with *local* times in ``[0, period_length)``.
        period_length: Clock length of one sync period.
        first_global_period: 1-based global index of the window's
            first period; period ``j`` of the window runs on the
            fault clock at offset
            ``(first_global_period + j − 1) · period_length``.
        fault_args: The dispatch arguments from
            :meth:`repro.sim.simulation.Simulation.fault_kernel_args`
            (failure probability/outcome, retry policy, budget,
            rng), or None for a fault-free window.  The fault rng
            must be *dedicated* (not shared with the workload rng):
            per-period runs interleave workload and fault draws on a
            shared stream, while a batched window draws all tapes
            before any faults — only a separate fault generator keeps
            both orders bit-identical.

    Returns:
        ``(results, consumed)`` — one :class:`SimulationResult` per
        period, bit-identical to running each period separately, and
        the number of fault-rng draws consumed per period (all zeros
        when fault-free), which the manager uses to rewind the fault
        stream when a mid-window replan trigger forces a rollback.
    """
    n_elements = catalog.n_elements
    n_windows = len(tapes)
    sizes = np.asarray(catalog.sizes, dtype=float)
    planned = float(sizes @ frequencies)
    sync_kind = int(EventKind.SYNC)
    update_kind = int(EventKind.UPDATE)

    counts = np.array([tape[0].shape[0] for tape in tapes],
                      dtype=np.int64)
    bounds = np.concatenate([np.zeros(1, dtype=np.int64),
                             np.cumsum(counts)])
    times = np.concatenate([tape[0] for tape in tapes])
    elements_local = np.concatenate([tape[1] for tape in tapes])
    kinds = np.concatenate([tape[2] for tape in tapes])
    tile_of_event = np.repeat(np.arange(n_windows, dtype=np.int64),
                              counts)
    elements_tiled = elements_local + tile_of_event * n_elements
    tiled_sizes = np.tile(sizes, n_windows)

    sync_positions = np.flatnonzero(kinds == sync_kind)
    sync_elements = elements_local[sync_positions]
    sync_tiles = tile_of_event[sync_positions]
    sync_bounds = np.searchsorted(sync_tiles,
                                  np.arange(n_windows + 1))

    resolution: FaultResolution | None = None
    consumed = [0] * n_windows
    keep = np.ones(times.shape[0], dtype=bool)
    if fault_args is not None:
        fault_offsets = ((first_global_period - 1 + sync_tiles)
                         * period_length)
        resolution = resolve_iid_faults(
            times[sync_positions] + fault_offsets, sync_elements,
            sizes,
            failure_probability=fault_args["failure_probability"],
            failure_outcome=fault_args["failure_outcome"],
            retry_policy=fault_args["retry_policy"],
            bandwidth_budget=fault_args["bandwidth_budget"],
            period_length=period_length, rng=fault_args["rng"],
            record_trace=False)
        keep[sync_positions[~resolution.success]] = False
        consumed = np.bincount(
            sync_tiles, weights=resolution.consumed,
            minlength=n_windows).astype(np.int64).tolist()

    times_f = times[keep]
    elements_f = elements_local[keep]
    kinds_f = kinds[keep]
    replay = _replay_tape(n_windows * n_elements, tiled_sizes,
                          times_f, elements_tiled[keep], kinds_f,
                          horizon=period_length)
    filtered_bounds = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(keep)])[bounds]

    empty_flags = np.zeros(0, dtype=bool)
    fresh_flags = (replay.fresh_before_global
                   if replay.fresh_before_global is not None
                   else empty_flags)
    run_start_flags = (replay.run_start_global
                       if replay.run_start_global is not None
                       else empty_flags)
    becomes_fresh_flags = (replay.becomes_fresh_global
                           if replay.becomes_fresh_global is not None
                           else empty_flags)
    changed_flags = (replay.changed_sync_global
                     if replay.changed_sync_global is not None
                     else empty_flags)

    telemetry_on = obs.telemetry_enabled()
    access_probabilities = catalog.access_probabilities
    do_contracts = contracts_enabled()
    granularity = float(sizes[frequencies > 0.0].sum())

    results: list[SimulationResult] = []
    for j in range(n_windows):
        event_slice = slice(int(filtered_bounds[j]),
                            int(filtered_bounds[j + 1]))
        element_slice = slice(j * n_elements, (j + 1) * n_elements)
        kinds_j = kinds_f[event_slice]
        elements_j = elements_f[event_slice]
        times_j = times_f[event_slice]
        is_update_j = kinds_j == update_kind
        is_sync_j = kinds_j == sync_kind
        is_access_j = ~is_update_j & ~is_sync_j
        n_updates_j = int(np.count_nonzero(is_update_j))
        n_syncs_j = int(np.count_nonzero(is_sync_j))
        n_accesses_j = int(np.count_nonzero(is_access_j))
        fresh_j = fresh_flags[event_slice]
        fresh_accesses_j = int(np.count_nonzero(
            is_access_j & fresh_j))
        useful_j = int(np.count_nonzero(changed_flags[event_slice]))
        sync_sizes_j = sizes[elements_j[is_sync_j]]
        bandwidth_j = float(np.bincount(
            np.zeros(sync_sizes_j.shape[0], dtype=np.intp),
            weights=sync_sizes_j, minlength=1)[0])

        freshness_j = replay.element_freshness[element_slice].copy()
        age_j = replay.element_age[element_slice].copy()
        perceived_by_accesses_j = (
            fresh_accesses_j / n_accesses_j if n_accesses_j
            else float(access_probabilities @ freshness_j))

        accounting: _FaultAccounting | None = None
        failed_per_period = None
        retries_per_period = None
        if resolution is not None:
            s0, s1 = int(sync_bounds[j]), int(sync_bounds[j + 1])
            attempts_j = resolution.attempts[s0:s1]
            window_resolution = FaultResolution(
                attempts=attempts_j,
                success=resolution.success[s0:s1],
                denied=resolution.denied[s0:s1],
                offsets=resolution.offsets[s0:s1],
                consumed=resolution.consumed[s0:s1],
                denied_retries=0, trace=None)
            accounting = _FaultAccounting.from_resolution(
                window_resolution, sync_elements[s0:s1], sizes,
                n_elements)
            if telemetry_on:
                failed_per_period = np.asarray([int(
                    (attempts_j - window_resolution.success).sum())],
                    dtype=np.int64)
                retries_per_period = np.asarray(
                    [int((attempts_j - (attempts_j > 0)).sum())],
                    dtype=np.int64)

        if telemetry_on:
            _emit_period_series(
                times_j, elements_j, kinds_j, sizes,
                fresh_j, run_start_flags[event_slice],
                becomes_fresh_flags[event_slice],
                n_elements, period_length=period_length,
                n_periods=1.0, planned=planned,
                failed_per_period=failed_per_period,
                retries_per_period=retries_per_period)
            _emit_monitor_close(freshness_j, age_j, n_accesses_j,
                                fresh_accesses_j, period_length)
            _emit_ledger(times_j, elements_j, kinds_j,
                         run_start_flags[event_slice],
                         time_offset=((first_global_period - 1 + j)
                                      * period_length))
            obs.counter_add("sim.runs")
            obs.counter_add("sim.fastpath_faulted_runs"
                            if resolution is not None
                            else "sim.fastpath_runs")
            obs.counter_add("sim.syncs", n_syncs_j)
            obs.counter_add("sim.useful_syncs", useful_j)
            obs.counter_add("sim.updates", n_updates_j)
            obs.counter_add("sim.accesses", n_accesses_j)
            obs.gauge_set("sim.bandwidth_used", bandwidth_j)
            obs.gauge_set("sim.monitored_perceived_freshness",
                          float(perceived_by_accesses_j))
            obs.gauge_set("sim.monitored_general_freshness",
                          float(freshness_j.mean()))
            if accounting is not None:
                obs.gauge_set("sim.attempted_bandwidth",
                              accounting.attempted_bandwidth)
                obs.gauge_set(
                    "sim.poll_failure_fraction",
                    (accounting.failed_polls
                     / accounting.attempted_polls
                     if accounting.attempted_polls else 0.0))

        if do_contracts:
            check_sync_conservation(
                bandwidth_j, planned, 1.0, granularity,
                where="replay_window_tapes")
            if accounting is not None and \
                    fault_args is not None and \
                    fault_args["bandwidth_budget"] is not None:
                check_attempt_budget(
                    accounting.attempted_bandwidth,
                    fault_args["bandwidth_budget"], 1.0, granularity,
                    where="replay_window_tapes")

        results.append(SimulationResult(
            catalog=catalog,
            frequencies=frequencies,
            horizon=period_length,
            period_length=period_length,
            n_updates=n_updates_j,
            n_syncs=n_syncs_j,
            n_accesses=n_accesses_j,
            useful_syncs=useful_j,
            bandwidth_used=bandwidth_j,
            monitored_perceived_freshness=float(
                perceived_by_accesses_j),
            monitored_time_perceived=float(
                access_probabilities @ freshness_j),
            monitored_general_freshness=float(freshness_j.mean()),
            element_time_freshness=freshness_j,
            element_time_age=age_j,
            monitored_perceived_age=float(
                access_probabilities @ age_j),
            access_counts=replay.access_counts[element_slice].copy(),
            poll_counts=replay.poll_counts[element_slice].copy(),
            changed_poll_counts=replay.changed_poll_counts[
                element_slice].copy(),
            attempted_polls=(accounting.attempted_polls
                             if accounting is not None else n_syncs_j),
            failed_polls=(accounting.failed_polls
                          if accounting is not None else 0),
            unreachable_polls=0,
            retries=(accounting.retries
                     if accounting is not None else 0),
            breaker_skips=0,
            denied_polls=(accounting.denied_polls
                          if accounting is not None else 0),
            attempted_bandwidth=(accounting.attempted_bandwidth
                                 if accounting is not None
                                 else bandwidth_j),
            attempted_poll_counts=(accounting.attempted_poll_counts
                                   if accounting is not None
                                   else None),
            failed_poll_counts=(accounting.failed_poll_counts
                                if accounting is not None else None),
            unreachable_poll_counts=(
                np.zeros(n_elements, dtype=np.int64)
                if accounting is not None else None),
            unreachable_elements=None,
            fault_trace=None,
        ))

    if telemetry_on and resolution is not None:
        accounting_total = _FaultAccounting.from_resolution(
            resolution, sync_elements, sizes, n_elements)
        _emit_fault_counters(accounting_total,
                             fault_args["failure_outcome"]
                             if fault_args is not None
                             else PollOutcome.ERROR)

    return results, consumed
