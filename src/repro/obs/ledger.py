"""freshsink ledger: per-element refresh/staleness metadata.

The ROADMAP's serving-system north star wants the
``cache_refreshed_at``-style refresh log production mirrors keep: for
every mirrored element, when was it last refreshed, and — if an
update has landed at the source since — how long has it been stale?
:class:`FreshnessLedger` is that surface, fed by the simulator's
refresh events (a successful sync refreshes, an update that catches a
fresh copy opens a stale run) on the *simulated* clock.

Cardinality is bounded the same way the event tape's per-index labels
are: emitters route element ids through
:func:`repro.obs.registry.element_label`, so a catalog-scale run
holds at most ``cap + 1`` ledger entries, the indices past the cap
sharing the single ``"overflow"`` entry.

Because the overflow entry aggregates many elements — and because the
vectorized kernels fold per *element* while the reference loop folds
per *event in time order* — every ledger fold is order-independent:
timestamps combine with ``max`` and event counts with ``+``.  That is
what lets the fastpath bit-identity suite extend to ledger parity,
and what makes the cross-worker merge in
:meth:`repro.obs.registry.MetricsRegistry.merge` deterministic
whatever order worker registries fold in.

An entry is *stale* exactly when its latest run-opening update is
later than its latest refresh; its staleness at time ``now`` is
``now − stale_since``.  The module is stdlib-only, like the rest of
:mod:`repro.obs`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple, Union

__all__ = ["FreshnessLedger", "LedgerEntry"]

#: Ledger keys are capped element indices: an ``int`` below the
#: cardinality cap or the literal string ``"overflow"`` at/above it.
LedgerLabel = Union[int, str]


class LedgerEntry:
    """Refresh/staleness state of one (capped) element label.

    Attributes:
        refreshed_at: Latest successful-sync time on the simulated
            clock, in clock units (None until the first refresh).
        stale_since: Latest time an update opened a stale run, in
            clock units (None until the first one).
        refreshes: Total successful syncs folded in.
        stales: Total run-opening updates folded in.
    """

    __slots__ = ("refreshed_at", "stale_since", "refreshes", "stales")

    def __init__(self) -> None:
        self.refreshed_at: float | None = None
        self.stale_since: float | None = None
        self.refreshes = 0
        self.stales = 0

    def fold_refresh(self, time: float, count: int = 1) -> None:
        """Fold ``count`` refreshes whose latest is at ``time``."""
        time = float(time)
        if self.refreshed_at is None or time > self.refreshed_at:
            self.refreshed_at = time
        self.refreshes += int(count)

    def fold_stale(self, time: float, count: int = 1) -> None:
        """Fold ``count`` run-opening updates, latest at ``time``."""
        time = float(time)
        if self.stale_since is None or time > self.stale_since:
            self.stale_since = time
        self.stales += int(count)

    def merge(self, other: "LedgerEntry") -> None:
        """Fold another entry in (max timestamps, summed counts)."""
        if other.refreshed_at is not None:
            self.fold_refresh(other.refreshed_at, 0)
        if other.stale_since is not None:
            self.fold_stale(other.stale_since, 0)
        self.refreshes += other.refreshes
        self.stales += other.stales

    @property
    def is_stale(self) -> bool:
        """Whether the latest known state is stale."""
        if self.stale_since is None:
            return False
        return (self.refreshed_at is None
                or self.stale_since > self.refreshed_at)

    def staleness(self, now: float) -> float:
        """Seconds of simulated clock the entry has been stale at
        ``now`` (0 while fresh)."""
        if not self.is_stale:
            return 0.0
        assert self.stale_since is not None
        return max(float(now) - self.stale_since, 0.0)

    def _key(self) -> Tuple[float | None, float | None, int, int]:
        return (self.refreshed_at, self.stale_since,
                self.refreshes, self.stales)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LedgerEntry):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"LedgerEntry(refreshed_at={self.refreshed_at!r}, "
                f"stale_since={self.stale_since!r}, "
                f"refreshes={self.refreshes}, stales={self.stales})")


class FreshnessLedger:
    """Bounded per-element refresh log (the ``cache_refreshed_at``
    surface).

    Keys are already-capped labels — callers route raw element
    indices through :func:`repro.obs.registry.element_label` (the
    facade does; the vectorized kernels replicate the cap before
    their per-bucket fold), so the entry count is bounded by the
    cardinality cap plus the overflow bucket.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: Dict[LedgerLabel, LedgerEntry] = {}

    def _entry(self, label: LedgerLabel) -> LedgerEntry:
        entry = self.entries.get(label)
        if entry is None:
            entry = LedgerEntry()
            self.entries[label] = entry
        return entry

    def record_refresh(self, label: LedgerLabel, time: float,
                       count: int = 1) -> None:
        """Fold ``count`` successful syncs of ``label``, latest at
        ``time`` (simulated clock units)."""
        self._entry(label).fold_refresh(time, count)

    def record_stale(self, label: LedgerLabel, time: float,
                     count: int = 1) -> None:
        """Fold ``count`` run-opening updates of ``label``, latest at
        ``time`` (simulated clock units)."""
        self._entry(label).fold_stale(time, count)

    def merge(self, other: "FreshnessLedger") -> None:
        """Fold another ledger in, label by label.

        Order-independent by construction (max timestamps, summed
        counts), so merging worker ledgers in any order yields the
        same result.
        """
        for label, entry in other.entries.items():
            self._entry(label).merge(entry)

    def last_event_time(self) -> float | None:
        """The latest timestamp folded into any entry (None if
        empty) — the default "now" for staleness rendering."""
        latest: float | None = None
        for entry in self.entries.values():
            for stamp in (entry.refreshed_at, entry.stale_since):
                if stamp is not None and (latest is None
                                          or stamp > latest):
                    latest = stamp
        return latest

    def staleness_snapshot(self, now: float | None = None
                           ) -> List[Tuple[LedgerLabel, float]]:
        """Per-label staleness at ``now``, sorted by label.

        Args:
            now: Evaluation time on the simulated clock; defaults to
                :meth:`last_event_time`.

        Returns:
            ``(label, seconds_stale)`` pairs, integer labels first in
            index order, the ``"overflow"`` bucket last.
        """
        if now is None:
            now = self.last_event_time()
        if now is None:
            return []
        return [(label, self.entries[label].staleness(now))
                for label in self._sorted_labels()]

    def _sorted_labels(self) -> List[LedgerLabel]:
        def order(label: LedgerLabel) -> Tuple[int, int]:
            if isinstance(label, int):
                return (0, label)
            return (1, 0)
        return sorted(self.entries, key=order)

    def as_records(self) -> List[Dict[str, Any]]:
        """One JSON-serializable dict per entry, in label order."""
        records: List[Dict[str, Any]] = []
        for label in self._sorted_labels():
            entry = self.entries[label]
            records.append({
                "element": label,
                "refreshed_at": entry.refreshed_at,
                "stale_since": entry.stale_since,
                "refreshes": entry.refreshes,
                "stales": entry.stales,
            })
        return records

    @classmethod
    def from_records(cls, records: Iterable[Dict[str, Any]]
                     ) -> "FreshnessLedger":
        """Rebuild a ledger from :meth:`as_records` output."""
        ledger = cls()
        for record in records:
            raw = record["element"]
            label: LedgerLabel = (raw if isinstance(raw, str)
                                  else int(raw))
            entry = ledger._entry(label)
            if record.get("refreshed_at") is not None:
                entry.refreshed_at = float(record["refreshed_at"])
            if record.get("stale_since") is not None:
                entry.stale_since = float(record["stale_since"])
            entry.refreshes = int(record.get("refreshes", 0))
            entry.stales = int(record.get("stales", 0))
        return ledger

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FreshnessLedger):
            return NotImplemented
        return self.entries == other.entries

    def __repr__(self) -> str:
        return f"FreshnessLedger({len(self.entries)} entries)"
