"""Alignment of change rates (and sizes) with the access profile.

The paper studies three relationships between how often objects
change and how often users access them (§2.2.2, Figure 2):

* **aligned** — the hottest objects change the most (day-traders
  chasing volatile stocks),
* **reverse** — the hottest objects change the least (popular static
  pages),
* **shuffled** — no relationship; change rates are randomly permuted
  against the profile.

Access probabilities are always laid out hottest-first (index 0 is
the most popular element), so aligning means sorting the companion
attribute descending and reversing means sorting it ascending.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.errors import ValidationError

__all__ = ["Alignment", "align_values"]


class Alignment(str, Enum):
    """How a per-element attribute relates to access popularity."""

    ALIGNED = "aligned"
    REVERSE = "reverse"
    SHUFFLED = "shuffled"

    @classmethod
    def coerce(cls, value: "Alignment | str") -> "Alignment":
        """Accept either an :class:`Alignment` or its string name."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            options = ", ".join(member.value for member in cls)
            raise ValidationError(
                f"unknown alignment {value!r}; expected one of: {options}"
            ) from exc


def align_values(values: np.ndarray, alignment: Alignment | str, *,
                 rng: np.random.Generator | None = None) -> np.ndarray:
    """Arrange ``values`` against a hottest-first access ordering.

    Args:
        values: Per-element attribute samples (change rates or sizes).
        alignment: Desired relationship with popularity.
        rng: Required for :attr:`Alignment.SHUFFLED`; ignored
            otherwise.

    Returns:
        A new array: sorted descending for ``aligned`` (element 0 —
        the hottest — gets the largest value), ascending for
        ``reverse``, and randomly permuted for ``shuffled``.

    Raises:
        ValidationError: If shuffling is requested without a generator.
    """
    alignment = Alignment.coerce(alignment)
    values = np.asarray(values, dtype=float)
    if alignment is Alignment.ALIGNED:
        return np.sort(values)[::-1].copy()
    if alignment is Alignment.REVERSE:
        return np.sort(values).copy()
    if rng is None:
        raise ValidationError("shuffled alignment requires an rng")
    return rng.permutation(values)
