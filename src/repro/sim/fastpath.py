"""Vectorized fault-free replay of the simulation event tape.

:func:`replay_fastpath` consumes the *same* merged event tape the
per-event reference loop in :meth:`repro.sim.simulation.Simulation.run`
walks, and produces a :class:`~repro.sim.evaluator.SimulationResult`
that is **bit-identical** — not merely statistically equivalent — to
the reference loop's.  The random draws all happen upstream (schedule
phases, update stream, request stream), so the kernel is pure replay:
it consumes no RNG and only has to reproduce the reference loop's
floating-point operation *order*, element by element.

How the loop is vectorized
--------------------------

The tape is regrouped per element with a stable sort, which preserves
each element's global event order (updates before syncs before
accesses at equal timestamps, courtesy of the merge's lexsort).  The
per-element monitor state machine is then reconstructed with segment
operations:

* the fresh/stale flag before each event comes from the last
  update/sync strictly before it (a segmented running maximum over
  state-change positions);
* stale-run start times (``stale_since``) carry forward from each
  run-opening update by the same trick;
* fresh-time and age-integral increments are computed for every event
  at once and folded per element with :func:`numpy.bincount`.

Bit-identity notes (all verified by the equivalence suite):

* ``np.bincount`` accumulates its weights as an exact sequential
  left-fold per bin in input order — unlike ``np.sum`` or
  ``np.add.reduceat``, which use pairwise summation and would break
  bit-identity with the loop's ``+=``.
* The reference loop squares *scalars* (``(time - since) ** 2`` on
  ``np.float64`` goes through libm ``pow``), while the monitor's
  ``close()`` squares *arrays* (``** 2`` lowers to ``x*x``).  These
  differ in the last bit for ~0.1% of inputs, so the kernel uses
  ``np.float_power`` (bit-equal to scalar ``pow``) for per-event
  trapezoids and array ``** 2`` for the horizon flush.
* Adding the ``0.0`` increments the loop never performs is safe here:
  no accumulator can hold ``-0.0``.

The fault-injection path (a non-quiet
:class:`~repro.faults.model.FaultPlan`) is stateful in ways that do
not vectorize — retry ledgers, breakers, per-period budgets — and
stays on the reference loop; :meth:`Simulation.run` dispatches.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.obs import registry as obs
from repro.sim.events import EventKind
from repro.sim.evaluator import SimulationResult
from repro.workloads.catalog import Catalog

__all__ = ["replay_fastpath"]


def _segment_starts(elements_sorted: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """First-event flag and per-event segment-start position.

    Args:
        elements_sorted: Element ids after the stable per-element sort.

    Returns:
        ``(new_segment, segment_start_of)`` — a boolean mask of
        segment-opening events and, per event, the global position of
        its segment's first event.
    """
    n_events = elements_sorted.shape[0]
    new_segment = np.empty(n_events, dtype=bool)
    new_segment[0] = True
    np.not_equal(elements_sorted[1:], elements_sorted[:-1],
                 out=new_segment[1:])
    start_positions = np.flatnonzero(new_segment)
    segment_ids = np.cumsum(new_segment) - 1
    return new_segment, start_positions[segment_ids]


def _shift_within_segment(values: np.ndarray, new_segment: np.ndarray,
                          fill: float) -> np.ndarray:
    """Previous event's value within each segment (``fill`` at starts)."""
    shifted = np.empty_like(values)
    shifted[0] = fill
    shifted[1:] = values[:-1]
    shifted[new_segment] = fill
    return shifted


def _last_position_at_or_before(candidate_positions: np.ndarray,
                                segment_start_of: np.ndarray
                                ) -> np.ndarray:
    """Segmented running maximum of marked positions (−1 = none yet).

    ``candidate_positions`` holds each event's own global position
    where the event is a mark and −1 elsewhere; the result holds, per
    event, the latest marked position at or before it *within its
    segment*.
    """
    running = np.maximum.accumulate(candidate_positions)
    return np.where(running >= segment_start_of, running, -1)


def replay_fastpath(catalog: Catalog, frequencies: np.ndarray,
                    times: np.ndarray, elements: np.ndarray,
                    kinds: np.ndarray, *, horizon: float,
                    period_length: float, n_periods: float
                    ) -> SimulationResult:
    """Replay a merged fault-free event tape without the Python loop.

    Args:
        catalog: The simulated workload.
        frequencies: The schedule's per-element sync frequencies, in
            syncs per period.
        times: Merged event times, globally time-ordered.
        elements: Element id per merged event.
        kinds: :class:`~repro.sim.events.EventKind` per merged event.
        horizon: Total simulated clock time.
        period_length: Clock length of one sync period.
        n_periods: Periods simulated (may be fractional).

    Returns:
        A :class:`SimulationResult` bit-identical to the reference
        loop's for the same tape.
    """
    n_elements = catalog.n_elements
    n_events = int(times.shape[0])
    sizes = np.asarray(catalog.sizes, dtype=float)

    update_kind = int(EventKind.UPDATE)
    sync_kind = int(EventKind.SYNC)

    if n_events:
        order = np.argsort(elements, kind="stable")
        element_of = elements[order]
        time_of = times[order]
        kind_of = kinds[order]
        positions = np.arange(n_events, dtype=np.int64)

        new_segment, segment_start_of = _segment_starts(element_of)
        segment_start_positions = np.flatnonzero(new_segment)
        segment_end_positions = np.append(
            segment_start_positions[1:] - 1, n_events - 1)
        present = element_of[segment_start_positions]

        previous_time = _shift_within_segment(time_of, new_segment, 0.0)
        if (time_of < previous_time).any():
            raise SimulationError("event tape is not time-ordered")
        elapsed = time_of - previous_time

        is_update = kind_of == update_kind
        is_sync = kind_of == sync_kind
        is_access = ~is_update & ~is_sync

        # --- monitor state before each event -------------------------
        # The fresh flag before event k is decided by the last update
        # or sync strictly before k in its segment (fresh initially).
        state_change_positions = np.where(is_update | is_sync,
                                          positions, -1)
        last_state_change = _last_position_at_or_before(
            state_change_positions, segment_start_of)
        previous_state_change = np.empty_like(last_state_change)
        previous_state_change[0] = -1
        previous_state_change[1:] = last_state_change[:-1]
        previous_state_change = np.where(
            previous_state_change >= segment_start_of,
            previous_state_change, -1)
        fresh_before = ((previous_state_change < 0)
                        | (kind_of[np.maximum(previous_state_change, 0)]
                           == sync_kind))

        # The first unseen update opens a stale run and pins
        # stale_since; later updates extend it without resetting.
        run_start = is_update & fresh_before
        run_start_positions = np.where(run_start, positions, -1)
        # Inclusive-at-k is safe: a run-starting event is itself fresh
        # and never reads `since`.
        since_position = _last_position_at_or_before(
            run_start_positions, segment_start_of)
        stale_since = time_of[np.maximum(since_position, 0)]

        # --- per-event increments, folded per element ----------------
        # The reference loop squares np.float64 *scalars* (libm pow);
        # np.float_power is the array op that matches it bit-for-bit,
        # where array ** 2 (x*x) would not.
        end_offset = time_of - stale_since
        start_offset = previous_time - stale_since
        age_increment = 0.5 * (np.float_power(end_offset, 2.0)
                               - np.float_power(start_offset, 2.0))
        fresh_time = np.bincount(
            element_of, weights=np.where(fresh_before, elapsed, 0.0),
            minlength=n_elements)
        age_integral = np.bincount(
            element_of,
            weights=np.where(fresh_before, 0.0, age_increment),
            minlength=n_elements)

        # --- final state per element, for the horizon flush ----------
        last_time = np.zeros(n_elements)
        last_time[present] = time_of[segment_end_positions]
        final_state_change = last_state_change[segment_end_positions]
        fresh_final = np.ones(n_elements, dtype=bool)
        fresh_final[present] = (
            (final_state_change < 0)
            | (kind_of[np.maximum(final_state_change, 0)] == sync_kind))
        final_since_position = since_position[segment_end_positions]
        stale_since_final = np.zeros(n_elements)
        stale_since_final[present] = np.where(
            final_since_position >= 0,
            time_of[np.maximum(final_since_position, 0)], 0.0)

        # --- mirror bookkeeping: polls, changed polls, accesses ------
        # Version arithmetic is integer-exact: the source version of
        # an element at any event equals its update count so far, and
        # a poll finds a change iff that count grew since its previous
        # poll (the copy starts at version 0 = zero updates).
        updates_so_far = np.cumsum(is_update)
        updates_before = ((updates_so_far - is_update)
                          - (updates_so_far[segment_start_of]
                             - is_update[segment_start_of]))
        sync_positions = np.flatnonzero(is_sync)
        sync_elements = element_of[sync_positions]
        sync_versions = updates_before[sync_positions]
        previous_versions = np.zeros_like(sync_versions)
        if sync_versions.shape[0]:
            previous_versions[1:] = sync_versions[:-1]
            first_poll = np.empty(sync_versions.shape[0], dtype=bool)
            first_poll[0] = True
            np.not_equal(sync_elements[1:], sync_elements[:-1],
                         out=first_poll[1:])
            previous_versions[first_poll] = 0
        changed = sync_versions > previous_versions

        poll_counts = np.bincount(
            sync_elements, minlength=n_elements).astype(np.int64)
        changed_poll_counts = np.bincount(
            sync_elements[changed],
            minlength=n_elements).astype(np.int64)
        useful_syncs = int(np.count_nonzero(changed))
        n_syncs = int(sync_positions.shape[0])
        n_updates = int(np.count_nonzero(is_update))

        access_positions = np.flatnonzero(is_access)
        access_elements = element_of[access_positions]
        # An access sees fresh data iff the copy version equals the
        # source version, which is exactly the monitor's flag.
        access_fresh = fresh_before[access_positions]
        n_accesses = int(access_positions.shape[0])
        fresh_accesses = int(np.count_nonzero(access_fresh))
        access_counts = np.bincount(
            access_elements, minlength=n_elements).astype(np.int64)

        # Bandwidth is a sequential float fold over syncs in *global*
        # time order (the mirror accumulates across elements as the
        # tape plays); a single-bin bincount reproduces the fold.
        global_sync = kinds == sync_kind
        sync_sizes = sizes[elements[global_sync]]
        bandwidth_used = float(np.bincount(
            np.zeros(sync_sizes.shape[0], dtype=np.intp),
            weights=sync_sizes, minlength=1)[0])
    else:  # an empty tape: every copy stays fresh to the horizon
        fresh_time = np.zeros(n_elements)
        age_integral = np.zeros(n_elements)
        last_time = np.zeros(n_elements)
        fresh_final = np.ones(n_elements, dtype=bool)
        stale_since_final = np.zeros(n_elements)
        poll_counts = np.zeros(n_elements, dtype=np.int64)
        changed_poll_counts = np.zeros(n_elements, dtype=np.int64)
        access_counts = np.zeros(n_elements, dtype=np.int64)
        useful_syncs = n_syncs = n_updates = 0
        n_accesses = fresh_accesses = 0
        bandwidth_used = 0.0

    # --- horizon flush: mirrors FreshnessMonitor.close() exactly ----
    # (array ** 2 here on purpose — close() squares arrays).
    remaining = horizon - last_time
    if (remaining < -1e-9).any():
        raise SimulationError("events were recorded beyond the horizon")
    fresh_time += np.maximum(remaining, 0.0) * fresh_final
    stale = ~fresh_final & (remaining > 0.0)
    if stale.any():
        since = stale_since_final[stale]
        start = last_time[stale]
        age_integral[stale] += 0.5 * (
            (horizon - since) ** 2 - (start - since) ** 2)

    element_freshness = fresh_time / horizon
    element_age = age_integral / horizon
    p = catalog.access_probabilities
    perceived_by_accesses = (fresh_accesses / n_accesses
                             if n_accesses
                             else float(p @ element_freshness))

    if obs.telemetry_enabled():
        _emit_period_series(
            times, elements, kinds, sizes,
            order if n_events else None,
            fresh_before if n_events else None,
            run_start if n_events else None,
            is_sync if n_events else None,
            n_elements, period_length=period_length,
            n_periods=n_periods, planned=float(sizes @ frequencies))
        obs.gauge_set("monitor.mean_time_freshness",
                      float(element_freshness.mean()))
        obs.gauge_set("monitor.mean_time_age",
                      float(element_age.mean()))
        obs.event("monitor.close", horizon=horizon,
                  accesses=n_accesses, fresh_accesses=fresh_accesses,
                  fresh_fraction=(fresh_accesses / n_accesses
                                  if n_accesses else 1.0))
        obs.counter_add("sim.runs")
        obs.counter_add("sim.fastpath_runs")
        obs.counter_add("sim.syncs", n_syncs)
        obs.counter_add("sim.useful_syncs", useful_syncs)
        obs.counter_add("sim.updates", n_updates)
        obs.counter_add("sim.accesses", n_accesses)
        obs.gauge_set("sim.bandwidth_used", bandwidth_used)
        obs.gauge_set("sim.monitored_perceived_freshness",
                      float(perceived_by_accesses))
        obs.gauge_set("sim.monitored_general_freshness",
                      float(element_freshness.mean()))

    return SimulationResult(
        catalog=catalog,
        frequencies=frequencies,
        horizon=horizon,
        period_length=period_length,
        n_updates=n_updates,
        n_syncs=n_syncs,
        n_accesses=n_accesses,
        useful_syncs=useful_syncs,
        bandwidth_used=bandwidth_used,
        monitored_perceived_freshness=float(perceived_by_accesses),
        monitored_time_perceived=float(p @ element_freshness),
        monitored_general_freshness=float(element_freshness.mean()),
        element_time_freshness=element_freshness,
        element_time_age=element_age,
        monitored_perceived_age=float(p @ element_age),
        access_counts=access_counts,
        poll_counts=poll_counts,
        changed_poll_counts=changed_poll_counts,
        attempted_polls=n_syncs,
        attempted_bandwidth=bandwidth_used,
    )


def _emit_period_series(times: np.ndarray, elements: np.ndarray,
                        kinds: np.ndarray, sizes: np.ndarray,
                        order: np.ndarray | None,
                        fresh_before: np.ndarray | None,
                        run_start: np.ndarray | None,
                        is_sync: np.ndarray | None,
                        n_elements: int, *, period_length: float,
                        n_periods: float, planned: float) -> None:
    """Emit the per-period ``"sim.period"`` telemetry series.

    Reproduces the reference loop's :class:`_PeriodTracker` output:
    one event per completed (or final partial) period with the same
    integer counts, the same sequentially folded bandwidth, and the
    mirror's instantaneous mean freshness at each period boundary.
    """
    last_period = max(int(np.ceil(n_periods)) - 1, 0)
    n_buckets = last_period + 1
    n_events = int(times.shape[0])

    if n_events:
        assert (order is not None and fresh_before is not None
                and run_start is not None and is_sync is not None)
        period_index = (times / period_length).astype(np.int64)
        update_kind = int(EventKind.UPDATE)
        sync_kind = int(EventKind.SYNC)
        global_update = kinds == update_kind
        global_sync = kinds == sync_kind
        global_access = ~global_update & ~global_sync

        def per_period(mask: np.ndarray) -> np.ndarray:
            return np.bincount(period_index[mask], minlength=n_buckets)

        # Scatter the per-element flags back to global tape order.
        fresh_before_global = np.empty(n_events, dtype=bool)
        fresh_before_global[order] = fresh_before
        run_start_global = np.empty(n_events, dtype=bool)
        run_start_global[order] = run_start

        syncs_per_period = per_period(global_sync)
        updates_per_period = per_period(global_update)
        accesses_per_period = per_period(global_access)
        fresh_accesses_per_period = per_period(
            global_access & fresh_before_global)
        bandwidth_per_period = np.bincount(
            period_index[global_sync],
            weights=sizes[elements[global_sync]], minlength=n_buckets)

        # Instantaneous fresh-copy count after each event: −1 when a
        # run-opening update stales a copy, +1 when a sync refreshes
        # a stale one.
        delta = np.zeros(n_events, dtype=np.int64)
        becomes_fresh = np.empty(n_events, dtype=bool)
        becomes_fresh[order] = is_sync & ~fresh_before
        delta[run_start_global] = -1
        delta[becomes_fresh] = 1
        fresh_count = n_elements + np.cumsum(delta)
        boundary = np.searchsorted(period_index,
                                   np.arange(n_buckets), side="right") - 1
        mean_freshness = np.where(
            boundary >= 0,
            fresh_count[np.maximum(boundary, 0)], n_elements
        ) / n_elements
    else:
        zeros = np.zeros(n_buckets, dtype=np.int64)
        syncs_per_period = updates_per_period = zeros
        accesses_per_period = fresh_accesses_per_period = zeros
        bandwidth_per_period = np.zeros(n_buckets)
        mean_freshness = np.ones(n_buckets)

    for period in range(n_buckets):
        accesses = int(accesses_per_period[period])
        fresh = int(fresh_accesses_per_period[period])
        bandwidth = float(bandwidth_per_period[period])
        utilization = bandwidth / planned if planned else 0.0
        obs.event(
            "sim.period",
            period=period,
            syncs=int(syncs_per_period[period]),
            bandwidth=bandwidth,
            budget_utilization=utilization,
            updates=int(updates_per_period[period]),
            accesses=accesses,
            fresh_fraction=(fresh / accesses if accesses else 1.0),
            mean_freshness=float(mean_freshness[period]),
            failed_polls=0,
            retries=0,
        )
        obs.counter_add("sim.periods")
        obs.gauge_set("sim.budget_utilization", utilization)
