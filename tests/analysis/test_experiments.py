"""Tests for the experiment runners (tiny-scale invariants).

Every runner is exercised at a shrunken scale; the assertions check
the *shapes* the paper reports — who wins, where the curves touch —
rather than absolute values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import experiments
from repro.workloads.presets import ExperimentSetup

TINY = ExperimentSetup(n_objects=60, updates_per_period=120.0,
                       syncs_per_period=30.0, theta=1.0,
                       update_std_dev=1.0)
TINY_SIZED = ExperimentSetup(n_objects=80, updates_per_period=160.0,
                             syncs_per_period=40.0, theta=1.0,
                             update_std_dev=2.0)


class TestTable1:
    def test_matches_paper(self):
        results = experiments.table1()
        assert np.round(results["P1"], 2).tolist() == [
            1.15, 1.36, 1.35, 1.14, 0.00]
        assert np.round(results["P2"], 2).tolist() == [
            0.33, 0.67, 1.00, 1.33, 1.67]
        assert results["P3"] == pytest.approx(
            [1.685, 1.83, 1.49, 0.0, 0.0], abs=0.01)

    def test_all_budgets_spent(self):
        results = experiments.table1()
        for profile in ("P1", "P2", "P3"):
            assert results[profile].sum() == pytest.approx(5.0, rel=1e-8)


class TestFigure1:
    def test_higher_p_gets_more_bandwidth_everywhere_active(self):
        sweep = experiments.figure1()
        low = sweep.get("p=0.0333")
        high = sweep.get("p=0.1333")
        active = (low.y > 0.0) & (high.y > 0.0)
        assert (high.y[active] >= low.y[active]).all()

    def test_cutoff_rate_scales_with_p(self):
        """Each curve hits zero at λ = p/μ."""
        sweep = experiments.figure1()
        mu = sweep.notes["multiplier"]
        for p in (1.0 / 30.0, 1.0 / 15.0, 2.0 / 15.0):
            series = sweep.get(f"p={p:.4f}")
            cutoff = p / mu
            beyond = series.x > cutoff * 1.02
            within = series.x < cutoff * 0.98
            assert (series.y[beyond] == 0.0).all()
            assert (series.y[within] > 0.0).all()

    def test_rejects_bad_multiplier(self):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            experiments.figure1(multiplier=0.0)


class TestFigure2:
    def test_alignment_shapes(self):
        results = experiments.figure2(setup=TINY, seed=0)
        aligned = results["aligned"].get("change frequency")
        reverse = results["reverse"].get("change frequency")
        assert (np.diff(aligned.y) <= 0.0).all()
        assert (np.diff(reverse.y) >= 0.0).all()

    def test_access_curve_always_descending(self):
        results = experiments.figure2(setup=TINY, seed=0)
        for sweep in results.values():
            access = sweep.get("access frequency")
            assert (np.diff(access.y) <= 1e-12).all()


class TestFigure3:
    @pytest.fixture(scope="class")
    def results(self):
        return experiments.figure3(setup=TINY,
                                   thetas=np.array([0.0, 0.8, 1.6]),
                                   n_seeds=2)

    def test_pf_never_below_gf(self, results):
        for sweep in results.values():
            pf = sweep.get("PF_TECHNIQUE").y
            gf = sweep.get("GF_TECHNIQUE").y
            assert (pf >= gf - 1e-9).all()

    def test_equal_at_theta_zero(self, results):
        for sweep in results.values():
            pf = sweep.get("PF_TECHNIQUE").y[0]
            gf = sweep.get("GF_TECHNIQUE").y[0]
            assert pf == pytest.approx(gf, abs=1e-9)

    def test_pf_increases_with_skew(self, results):
        for sweep in results.values():
            pf = sweep.get("PF_TECHNIQUE").y
            assert pf[-1] > pf[0]

    def test_aligned_gf_collapses(self, results):
        aligned = results["aligned"]
        gf = aligned.get("GF_TECHNIQUE").y
        assert gf[-1] < 0.2 * gf[0] + 0.05


class TestFigure5:
    @pytest.fixture(scope="class")
    def results(self):
        return experiments.figure5(
            setup=TINY, partition_counts=np.array([3, 10, 30, 60]),
            seed=0)

    def test_heuristics_below_best_case(self, results):
        for sweep in results.values():
            best = sweep.get("best_case").y
            for label in sweep.labels:
                if label == "best_case":
                    continue
                assert (sweep.get(label).y <= best + 1e-8).all()

    def test_full_partitioning_reaches_best_case(self, results):
        for sweep in results.values():
            best = sweep.get("best_case").y[-1]
            pf = sweep.get("PF_PARTITIONING").y[-1]
            assert pf == pytest.approx(best, abs=1e-6)

    def test_lambda_partitioning_trails_under_shuffle(self, results):
        shuffled = results["shuffled"]
        lam = shuffled.get("LAMBDA_PARTITIONING").y
        pf = shuffled.get("PF_PARTITIONING").y
        # At modest k the lambda sort is clearly worse.
        assert pf[1] > lam[1]


class TestFigure6:
    def test_all_techniques_rise_with_skew(self):
        sweep = experiments.figure6(setup=TINY,
                                    thetas=np.array([0.4, 1.0, 1.6]),
                                    n_partitions=10, seed=0)
        for label in sweep.labels:
            y = sweep.get(label).y
            assert y[-1] > y[0]


class TestFigure7:
    def test_runs_at_reduced_scale(self):
        sweep = experiments.figure7(
            setup=TINY_SIZED,
            partition_counts=np.array([5, 20, 40]), seed=0)
        best = sweep.get("best_case").y
        pf = sweep.get("PF_PARTITIONING").y
        assert (pf <= best + 1e-8).all()
        assert pf[-1] >= pf[0] - 1e-6


class TestFigure8:
    def test_clustering_never_hurts_much(self):
        sweep = experiments.figure8(
            setup=TINY_SIZED, partition_counts=np.array([4, 10]),
            iteration_counts=(0, 3), seed=0)
        zero = sweep.get("0 iterations").y
        three = sweep.get("3 iterations").y
        assert (three >= zero - 0.02).all()

    def test_clustering_helps_at_coarse_k(self):
        # Large enough for the refinement signal to rise above the
        # k-means-optimizes-inertia-not-PF noise floor.
        setup = ExperimentSetup(n_objects=1000,
                                updates_per_period=2000.0,
                                syncs_per_period=500.0, theta=1.0,
                                update_std_dev=2.0)
        sweep = experiments.figure8(
            setup=setup, partition_counts=np.array([10]),
            iteration_counts=(0, 5), seed=0)
        assert sweep.get("5 iterations").y[0] > \
            sweep.get("0 iterations").y[0]


class TestFigure9:
    def test_structure(self):
        sweep = experiments.figure9(
            setup=TINY_SIZED,
            cluster_line_counts=np.array([4, 10]),
            iteration_path_counts=(6,), iteration_counts=(0, 2),
            seed=0, solver="exact")
        assert "CLUSTER_LINE" in sweep.labels
        assert "6 CLUSTERS" in sweep.labels
        line = sweep.get("CLUSTER_LINE")
        assert (line.x > 0.0).all()  # measured times


class TestFigure10:
    @pytest.fixture(scope="class")
    def results(self):
        return experiments.figure10(n_objects=100, bandwidth=50.0,
                                    seed=0)

    def test_pareto_gets_more_syncs_for_same_bandwidth(self, results):
        freq = results["frequency"]
        uniform = freq.get("Uniform Size Distribution").y.sum()
        pareto = freq.get("Pareto_Shape (a) = 1.1").y.sum()
        assert pareto > uniform

    def test_bandwidth_totals_equal(self, results):
        bw = results["bandwidth"]
        totals = [series.y.sum() for series in bw.series]
        assert totals[0] == pytest.approx(totals[1], rel=1e-6)

    def test_size_aware_beats_blind_in_sized_world(self, results):
        assert results["pf_size_aware"] >= \
            results["pf_blind_in_sized_world"] - 1e-9

    def test_sized_world_beats_uniform_world(self, results):
        """The paper's 0.312 vs 0.586 direction."""
        assert results["pf_size_aware"] > results["pf_uniform_world"]

    def test_high_change_objects_unsynced(self, results):
        """'All sync resources go to pages with the lowest change rates'."""
        freq = results["frequency"].get("Uniform Size Distribution").y
        # Objects are ordered by descending change rate: the head of
        # the array (fastest changers) gets nothing.
        assert freq[0] == 0.0
        assert freq[-1] > 0.0


class TestFigure11:
    def test_fba_dominates_ffa(self):
        sweep = experiments.figure11(
            setup=TINY_SIZED, partition_counts=np.array([4, 10, 25]),
            seed=0)
        fba = sweep.get("FIXED BANDWIDTH (FBA)").y
        ffa = sweep.get("FIXED FREQUENCY (FFA)").y
        assert (fba >= ffa - 1e-6).all()


class TestExtensions:
    def test_imperfect_knowledge_degrades_gracefully(self):
        sweep = experiments.imperfect_knowledge(
            setup=TINY, noise_levels=np.array([0.0, 1.0]), n_seeds=2)
        noisy = sweep.get("noisy rates").y
        clean = sweep.get("perfect knowledge").y
        assert noisy[0] == pytest.approx(clean[0], abs=1e-9)
        assert (noisy <= clean + 1e-9).all()
        # §6 claim: still well above zero under heavy noise.
        assert noisy[-1] > 0.5 * clean[-1]

    def test_mirror_selection_greedy_beats_random(self):
        sweep = experiments.mirror_selection(
            setup=TINY, capacities=np.array([15, 30, 60]), seed=0)
        greedy = sweep.get("greedy by interest").y
        random = sweep.get("random selection").y
        assert (greedy >= random - 1e-9).all()

    def test_mirror_selection_full_capacity_matches_optimal(self):
        sweep = experiments.mirror_selection(
            setup=TINY, capacities=np.array([60]), seed=0)
        greedy = sweep.get("greedy by interest").y[0]
        random = sweep.get("random selection").y[0]
        assert greedy == pytest.approx(random, abs=1e-9)

    def test_policy_ablation_fixed_order_wins(self):
        sweep = experiments.policy_ablation(
            setup=TINY, thetas=np.array([0.0, 1.0]), seed=0)
        fixed = sweep.get("fixed-order").y
        poisson = sweep.get("poisson-sync").y
        assert (fixed >= poisson - 1e-9).all()
