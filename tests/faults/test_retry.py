"""Unit tests for the retry policy and injected-effects executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.faults.retry import (RetryBudgetExhaustedError, RetryPolicy,
                                execute_with_retry)


class FakeClock:
    """A virtual monotonic clock advanced by the injected sleeper."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list[float] = []

    def sleep(self, delay: float) -> None:
        self.sleeps.append(delay)
        self.now += delay

    def __call__(self) -> float:
        return self.now


class TestRetryPolicy:
    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValidationError):
            RetryPolicy(base_delay=0.0)
        with pytest.raises(ValidationError):
            RetryPolicy(base_delay=0.5, max_delay=0.1)

    def test_delays_stay_inside_the_clamp(self):
        policy = RetryPolicy(max_retries=50, base_delay=0.01,
                             max_delay=0.2)
        delays = policy.delays(np.random.default_rng(0))
        assert len(delays) == 50
        assert all(0.01 <= d <= 0.2 for d in delays)

    def test_same_seed_same_jitter(self):
        policy = RetryPolicy(max_retries=10)
        a = policy.delays(np.random.default_rng(1))
        b = policy.delays(np.random.default_rng(1))
        assert a == b

    def test_decorrelated_jitter_grows_from_previous(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=100.0)
        rng = np.random.default_rng(2)
        # The anchor is 3x the previous delay, so the draw can never
        # exceed it.
        assert policy.next_delay(5.0, rng) <= 15.0


class TestExecuteWithRetry:
    def test_returns_first_success_without_sleeping(self):
        clock = FakeClock()
        result = execute_with_retry(
            lambda: 42, policy=RetryPolicy(),
            rng=np.random.default_rng(0), sleep=clock.sleep,
            clock=clock)
        assert result == 42
        assert clock.sleeps == []

    def test_retries_until_success_advancing_virtual_time(self):
        clock = FakeClock()
        calls = {"n": 0}

        def flaky() -> str:
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        result = execute_with_retry(
            flaky, policy=RetryPolicy(max_retries=3),
            rng=np.random.default_rng(3), sleep=clock.sleep,
            clock=clock)
        assert result == "ok"
        assert calls["n"] == 3
        assert len(clock.sleeps) == 2
        assert clock.now == pytest.approx(sum(clock.sleeps))

    def test_exhaustion_raises_with_cause_and_attempt_count(self):
        clock = FakeClock()

        def always_fails() -> None:
            raise OSError("down")

        with pytest.raises(RetryBudgetExhaustedError) as excinfo:
            execute_with_retry(
                always_fails, policy=RetryPolicy(max_retries=2),
                rng=np.random.default_rng(4), sleep=clock.sleep,
                clock=clock)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_non_retryable_exceptions_propagate_immediately(self):
        clock = FakeClock()

        def typed_failure() -> None:
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            execute_with_retry(
                typed_failure, policy=RetryPolicy(max_retries=5),
                rng=np.random.default_rng(5), sleep=clock.sleep,
                clock=clock, retryable=(OSError,))
        assert clock.sleeps == []

    def test_deadline_cuts_the_retry_budget_short(self):
        clock = FakeClock()

        def always_fails() -> None:
            raise OSError("down")

        with pytest.raises(RetryBudgetExhaustedError):
            execute_with_retry(
                always_fails,
                policy=RetryPolicy(max_retries=50, base_delay=1.0,
                                   max_delay=1.0),
                rng=np.random.default_rng(6), sleep=clock.sleep,
                clock=clock, deadline=3.0)
        # With 1s deterministic delays and a 3s deadline, far fewer
        # than 50 retries ran.
        assert len(clock.sleeps) <= 3
