"""Seeded FL003 violations: __all__ drifted from the re-exports."""

from math import sqrt
from os.path import join

__all__ = [
    "sqrt",
    "sqrt",        # FL003: duplicate entry
    "phantom",     # FL003: never bound
    # FL003: "join" is re-exported but missing here
]
