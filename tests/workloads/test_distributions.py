"""Tests for repro.workloads.distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.workloads.distributions import (
    gamma_change_rates,
    pareto_mean,
    pareto_sizes,
    zipf_probabilities,
)


class TestZipf:
    def test_sums_to_one(self):
        assert zipf_probabilities(100, 1.0).sum() == pytest.approx(1.0)

    def test_theta_zero_is_uniform(self):
        p = zipf_probabilities(10, 0.0)
        assert np.allclose(p, 0.1)

    def test_hottest_first_ordering(self):
        p = zipf_probabilities(50, 0.8)
        assert (np.diff(p) <= 0.0).all()
        assert p[0] == p.max()

    def test_skew_increases_head_mass(self):
        mild = zipf_probabilities(100, 0.5)
        steep = zipf_probabilities(100, 1.6)
        assert steep[0] > mild[0]
        assert steep[-1] < mild[-1]

    def test_exact_ratios(self):
        p = zipf_probabilities(3, 1.0)
        # p_i proportional to 1/i: ratios 1 : 1/2 : 1/3.
        assert p[0] / p[1] == pytest.approx(2.0)
        assert p[0] / p[2] == pytest.approx(3.0)

    def test_single_element(self):
        assert zipf_probabilities(1, 1.2) == pytest.approx([1.0])

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValidationError):
            zipf_probabilities(5, -0.1)

    @given(st.integers(min_value=1, max_value=500),
           st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=50)
    def test_always_a_distribution(self, n, theta):
        p = zipf_probabilities(n, theta)
        assert p.shape == (n,)
        assert (p > 0.0).all()
        assert p.sum() == pytest.approx(1.0)


class TestGammaRates:
    def test_matches_requested_moments(self, rng):
        rates = gamma_change_rates(200_000, mean=2.0, std_dev=1.0, rng=rng)
        assert rates.mean() == pytest.approx(2.0, rel=0.02)
        assert rates.std() == pytest.approx(1.0, rel=0.02)

    def test_strictly_positive(self, rng):
        rates = gamma_change_rates(10_000, mean=2.0, std_dev=2.0, rng=rng)
        assert (rates > 0.0).all()

    def test_reproducible_from_seed(self):
        first = gamma_change_rates(100, mean=2.0, std_dev=1.0,
                                   rng=np.random.default_rng(7))
        second = gamma_change_rates(100, mean=2.0, std_dev=1.0,
                                    rng=np.random.default_rng(7))
        assert np.array_equal(first, second)

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ValidationError):
            gamma_change_rates(0, mean=2.0, std_dev=1.0, rng=rng)
        with pytest.raises(ValidationError):
            gamma_change_rates(5, mean=0.0, std_dev=1.0, rng=rng)
        with pytest.raises(ValidationError):
            gamma_change_rates(5, mean=2.0, std_dev=0.0, rng=rng)


class TestParetoSizes:
    def test_mean_close_to_requested(self, rng):
        # Shape 3 has finite variance, so the sample mean settles.
        sizes = pareto_sizes(200_000, shape=3.0, mean=1.0, rng=rng)
        assert sizes.mean() == pytest.approx(1.0, rel=0.05)

    def test_minimum_is_the_scale(self, rng):
        shape, mean = 1.1, 1.0
        sizes = pareto_sizes(50_000, shape=shape, mean=mean, rng=rng)
        scale = mean * (shape - 1.0) / shape
        assert sizes.min() >= scale
        assert sizes.min() == pytest.approx(scale, rel=0.01)

    def test_heavy_tail_present(self, rng):
        sizes = pareto_sizes(50_000, shape=1.1, mean=1.0, rng=rng)
        # With shape 1.1 the max dwarfs the median.
        assert sizes.max() > 20.0 * np.median(sizes)

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ValidationError):
            pareto_sizes(0, shape=1.1, mean=1.0, rng=rng)
        with pytest.raises(ValidationError):
            pareto_sizes(5, shape=1.0, mean=1.0, rng=rng)
        with pytest.raises(ValidationError):
            pareto_sizes(5, shape=1.1, mean=0.0, rng=rng)


class TestParetoMean:
    def test_known_value(self):
        assert pareto_mean(2.0, 1.0) == pytest.approx(2.0)

    def test_consistent_with_sampler_scale(self):
        shape, mean = 1.5, 3.0
        scale = mean * (shape - 1.0) / shape
        assert pareto_mean(shape, scale) == pytest.approx(mean)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            pareto_mean(1.0, 1.0)
        with pytest.raises(ValidationError):
            pareto_mean(2.0, 0.0)
